"""The event-indexed occupancy read model shared by the movement backends.

Every authorization decision consults the location & movements database —
current location, occupants of a location, entries consumed within a window
(Definition 7).  Replaying the movement history on each of those reads makes
the hot path O(n) in the trace length; :class:`OccupancyService` instead
maintains a single incremental projection that both movement-database
backends update on every :meth:`~repro.storage.movement_db.MovementDatabase.record`:

* the **current occupancy map** (subject → location, location → occupant
  set) — O(1) ``current_location`` / ``occupancy`` and O(k) ``occupants``;
* **per-(subject, location) entry counters** — O(1) unwindowed
  ``entry_count`` (Definition 7's budget counter);
* **per-pair entry timelines** (sorted entry times) — O(log n) windowed
  ``entry_count`` via bisection;
* the **last entry / last movement** per pair — O(1) ``last_entry`` and the
  audit trail's "latest movement" read;
* **time-bucketed entry histograms** per location — O(1)-per-event upkeep
  for occupancy-trend and capacity reporting reads.

The projection also normalizes the backends' disagreement about inconsistent
EXIT events: an exit for a subject tracked inside a *different* location (or
not tracked at all) is recorded as an :class:`OccupancyAnomaly` note — and
raises :class:`~repro.errors.StorageError` when the owning database was
opened ``strict=True`` — identically for the in-memory and SQLite backends.

Anomaly notes and entry histograms are **in-process observability state**:
they accumulate for the lifetime of the owning database object and start
empty again when a persistent SQLite file is reopened (the occupancy map
and entry counters, by contrast, are persisted in the derived tables).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.temporal.interval import TimeInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.movement_db import MovementRecord

__all__ = ["OccupancyAnomaly", "OccupancyService"]

#: Default width (in chronons) of the entry-histogram buckets.
DEFAULT_HISTOGRAM_BUCKET = 64


@dataclass(frozen=True)
class OccupancyAnomaly:
    """A movement event that contradicts the tracked occupancy state."""

    time: int
    subject: str
    location: str
    note: str

    def __str__(self) -> str:
        return f"[t={self.time}] {self.subject} @ {self.location}: {self.note}"


class OccupancyService:
    """Incremental occupancy projection over a stream of movement records.

    Parameters
    ----------
    track_timelines:
        Keep per-pair sorted entry-time lists for O(log n) windowed entry
        counts.  The SQLite backend disables this and answers windowed
        counts with an indexed SQL ``COUNT(*)`` instead, so a reopened
        database does not need an O(n) replay.
    histogram_bucket:
        Width, in chronons, of the per-location entry-histogram buckets.
    """

    __slots__ = (
        "_track_timelines",
        "_bucket",
        "_inside",
        "_inside_since",
        "_occupants",
        "_entry_counts",
        "_last_entry",
        "_last_movement",
        "_timelines",
        "_histograms",
        "_anomalies",
    )

    def __init__(
        self,
        *,
        track_timelines: bool = True,
        histogram_bucket: int = DEFAULT_HISTOGRAM_BUCKET,
    ) -> None:
        if not isinstance(histogram_bucket, int) or histogram_bucket < 1:
            raise StorageError(
                f"histogram bucket width must be a positive integer, got {histogram_bucket!r}"
            )
        self._track_timelines = track_timelines
        self._bucket = histogram_bucket
        self.clear()

    # ------------------------------------------------------------------ #
    # Projection upkeep
    # ------------------------------------------------------------------ #
    def check_exit(self, record: "MovementRecord") -> Optional[OccupancyAnomaly]:
        """The anomaly an EXIT record would introduce, without applying it."""
        from repro.storage.movement_db import MovementKind

        if record.kind is not MovementKind.EXIT:
            return None
        tracked = self._inside.get(record.subject)
        if tracked is None:
            return OccupancyAnomaly(
                record.time,
                record.subject,
                record.location,
                "exit observed but the subject is not tracked inside any location",
            )
        if tracked != record.location:
            return OccupancyAnomaly(
                record.time,
                record.subject,
                record.location,
                f"exit observed while the subject is tracked inside {tracked!r}",
            )
        return None

    def apply(self, record: "MovementRecord") -> None:
        """Fold one movement record into the projection (O(log n) worst case)."""
        from repro.storage.movement_db import MovementKind

        subject, location = record.subject, record.location
        pair = (subject, location)
        if record.kind is MovementKind.ENTER:
            previous = self._inside.get(subject)
            if previous is not None:
                self._occupants[previous].discard(subject)
            self._inside[subject] = location
            self._inside_since[subject] = record.time
            self._occupants.setdefault(location, set()).add(subject)
            self._entry_counts[pair] = self._entry_counts.get(pair, 0) + 1
            self._last_entry[pair] = record
            if self._track_timelines:
                timeline = self._timelines.setdefault(pair, [])
                if not timeline or timeline[-1] <= record.time:
                    timeline.append(record.time)
                else:  # out-of-order arrival: keep the timeline sorted
                    bisect.insort(timeline, record.time)
            histogram = self._histograms.setdefault(location, {})
            bucket = record.time // self._bucket
            histogram[bucket] = histogram.get(bucket, 0) + 1
        else:
            anomaly = self.check_exit(record)
            if anomaly is not None:
                # The bogus exit is noted but does not evict the subject from
                # wherever they are actually tracked (if anywhere).
                self._anomalies.append(anomaly)
                self._last_movement[pair] = record
                return
            self._inside.pop(subject, None)
            self._inside_since.pop(subject, None)
            occupants = self._occupants.get(location)
            if occupants is not None:
                occupants.discard(subject)
        self._last_movement[pair] = record

    def apply_many(self, records: Iterable["MovementRecord"]) -> None:
        """Fold a batch of records, in order — the streaming-ingest hot loop.

        Semantically identical to calling :meth:`apply` per record, but the
        loop body is inlined with every instance attribute bound to a local
        once per batch: at tracker line rate the per-record attribute and
        method dispatch of the one-at-a-time path dominates the actual dict
        work, and hoisting it roughly halves the cost per event.
        """
        from repro.storage.movement_db import MovementKind

        enter = MovementKind.ENTER
        inside = self._inside
        inside_since = self._inside_since
        occupants = self._occupants
        entry_counts = self._entry_counts
        last_entry = self._last_entry
        last_movement = self._last_movement
        timelines = self._timelines if self._track_timelines else None
        histograms = self._histograms
        bucket_width = self._bucket
        anomalies = self._anomalies
        insort = bisect.insort
        for record in records:
            subject = record.subject
            location = record.location
            pair = (subject, location)
            if record.kind is enter:
                previous = inside.get(subject)
                if previous is not None:
                    occupants[previous].discard(subject)
                inside[subject] = location
                inside_since[subject] = record.time
                members = occupants.get(location)
                if members is None:
                    occupants[location] = {subject}
                else:
                    members.add(subject)
                entry_counts[pair] = entry_counts.get(pair, 0) + 1
                last_entry[pair] = record
                if timelines is not None:
                    timeline = timelines.get(pair)
                    if timeline is None:
                        timelines[pair] = [record.time]
                    elif timeline[-1] <= record.time:
                        timeline.append(record.time)
                    else:  # out-of-order arrival: keep the timeline sorted
                        insort(timeline, record.time)
                histogram = histograms.get(location)
                if histogram is None:
                    histogram = histograms[location] = {}
                bucket = record.time // bucket_width
                histogram[bucket] = histogram.get(bucket, 0) + 1
            else:
                tracked = inside.get(subject)
                if tracked != location:
                    if tracked is None:
                        note = "exit observed but the subject is not tracked inside any location"
                    else:
                        note = f"exit observed while the subject is tracked inside {tracked!r}"
                    anomalies.append(OccupancyAnomaly(record.time, subject, location, note))
                    last_movement[pair] = record
                    continue
                del inside[subject]
                inside_since.pop(subject, None)
                members = occupants.get(location)
                if members is not None:
                    members.discard(subject)
            last_movement[pair] = record

    def forget_subject(self, subject: str) -> None:
        """Drop every trace of *subject* from the projection.

        The partition-handoff path: when a subject migrates to another
        partition, the source must stop answering occupancy reads for it —
        a stale ``WHO IS IN`` row on the old owner would double-count the
        subject across the fabric.  Anomaly notes for the subject are
        dropped with it; per-location histograms are aggregate counters and
        deliberately keep the subject's past entries.
        """
        location = self._inside.pop(subject, None)
        self._inside_since.pop(subject, None)
        if location is not None:
            members = self._occupants.get(location)
            if members is not None:
                members.discard(subject)
        for mapping in (
            self._entry_counts,
            self._last_entry,
            self._last_movement,
            self._timelines,
        ):
            for pair in [pair for pair in mapping if pair[0] == subject]:
                del mapping[pair]
        if any(anomaly.subject == subject for anomaly in self._anomalies):
            self._anomalies = [a for a in self._anomalies if a.subject != subject]

    def clear(self) -> None:
        """Reset the projection to the empty state."""
        self._inside: Dict[str, str] = {}
        self._inside_since: Dict[str, int] = {}
        self._occupants: Dict[str, Set[str]] = {}
        self._entry_counts: Dict[Tuple[str, str], int] = {}
        self._last_entry: Dict[Tuple[str, str], "MovementRecord"] = {}
        self._last_movement: Dict[Tuple[str, str], "MovementRecord"] = {}
        self._timelines: Dict[Tuple[str, str], List[int]] = {}
        self._histograms: Dict[str, Dict[int, int]] = {}
        self._anomalies: List[OccupancyAnomaly] = []

    def load(
        self,
        *,
        inside: Dict[str, Tuple[str, int]],
        entry_counts: Dict[Tuple[str, str], Tuple[int, Optional[int]]],
    ) -> None:
        """Prime the projection from persisted derived state.

        Used by the SQLite backend on reopen: *inside* maps subject →
        (location, since) and *entry_counts* maps (subject, location) →
        (count, last entry time).  Timelines and histograms are not primed —
        a timeline-less service answers windowed counts through the backend.
        """
        from repro.storage.movement_db import MovementKind, MovementRecord

        self.clear()
        for subject, (location, since) in inside.items():
            self._inside[subject] = location
            self._inside_since[subject] = since
            self._occupants.setdefault(location, set()).add(subject)
        for (subject, location), (count, last_time) in entry_counts.items():
            self._entry_counts[(subject, location)] = count
            if last_time is not None:
                self._last_entry[(subject, location)] = MovementRecord(
                    last_time, subject, location, MovementKind.ENTER
                )

    def snapshot(self) -> tuple:
        """An opaque copy of the full projection state (see :meth:`restore`)."""
        return (
            dict(self._inside),
            dict(self._inside_since),
            {location: set(members) for location, members in self._occupants.items()},
            dict(self._entry_counts),
            dict(self._last_entry),
            dict(self._last_movement),
            {pair: list(times) for pair, times in self._timelines.items()},
            {location: dict(buckets) for location, buckets in self._histograms.items()},
            list(self._anomalies),
        )

    def restore(self, state: tuple) -> None:
        """Roll the projection back to a :meth:`snapshot`.

        Used by the SQLite backend when a batch transaction rolls back:
        unlike re-priming from the derived tables, this preserves the
        in-process-only state (anomaly notes, histograms, last movements)
        belonging to records that *did* commit.
        """
        (
            inside,
            inside_since,
            occupants,
            entry_counts,
            last_entry,
            last_movement,
            timelines,
            histograms,
            anomalies,
        ) = state
        self._inside = dict(inside)
        self._inside_since = dict(inside_since)
        self._occupants = {location: set(members) for location, members in occupants.items()}
        self._entry_counts = dict(entry_counts)
        self._last_entry = dict(last_entry)
        self._last_movement = dict(last_movement)
        self._timelines = {pair: list(times) for pair, times in timelines.items()}
        self._histograms = {location: dict(buckets) for location, buckets in histograms.items()}
        self._anomalies = list(anomalies)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    @property
    def tracks_timelines(self) -> bool:
        """Whether windowed entry counts can be answered from the timelines."""
        return self._track_timelines

    def current_location(self, subject: str) -> Optional[str]:
        """The location *subject* is tracked inside, or ``None`` — O(1)."""
        return self._inside.get(subject)

    def inside_since(self, subject: str) -> Optional[int]:
        """The entry time of the subject's current stay, or ``None`` — O(1)."""
        return self._inside_since.get(subject)

    def occupants(self, location: str) -> List[str]:
        """Sorted subjects currently inside *location* — O(k log k)."""
        return sorted(self._occupants.get(location, ()))

    def occupancy(self, location: str) -> int:
        """Number of subjects currently inside *location* — O(1)."""
        return len(self._occupants.get(location, ()))

    def subjects_inside(self) -> Dict[str, str]:
        """A copy of the current subject → location occupancy map."""
        return dict(self._inside)

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        """Entries of *subject* into *location*, optionally within *window*.

        O(1) without a window; O(log n) with one (bisection over the pair's
        entry timeline).  Raises :class:`StorageError` for windowed queries
        when timelines are disabled — the owning backend answers those.
        """
        pair = (subject, location)
        if window is None:
            return self._entry_counts.get(pair, 0)
        if not self._track_timelines:
            raise StorageError(
                "windowed entry counts need timelines; this projection was "
                "built with track_timelines=False (the backend answers these)"
            )
        timeline = self._timelines.get(pair)
        if not timeline:
            return 0
        lo = bisect.bisect_left(timeline, window.start)
        if window.is_unbounded:
            return len(timeline) - lo
        return bisect.bisect_right(timeline, int(window.end)) - lo

    def entry_counts(self) -> Dict[Tuple[str, str], int]:
        """A copy of the per-(subject, location) entry counters."""
        return dict(self._entry_counts)

    def last_entry(self, subject: str, location: str) -> Optional["MovementRecord"]:
        """The most recent ENTER of *subject* into *location* — O(1)."""
        return self._last_entry.get((subject, location))

    def last_movement(self, subject: str, location: str) -> Optional["MovementRecord"]:
        """The most recent movement (either kind) of the pair — O(1)."""
        return self._last_movement.get((subject, location))

    def entry_histogram(self, location: str) -> Dict[int, int]:
        """Entries into *location* per time bucket (bucket index → count)."""
        return dict(self._histograms.get(location, ()))

    @property
    def histogram_bucket(self) -> int:
        """The width, in chronons, of the histogram buckets."""
        return self._bucket

    @property
    def anomalies(self) -> Tuple[OccupancyAnomaly, ...]:
        """Every inconsistent-exit note recorded so far."""
        return tuple(self._anomalies)
