"""Multilevel location graphs and the flattened location hierarchy.

Definition 2 of the paper: if ``G1 … Gk`` are location graphs or multilevel
location graphs with mutually disjoint locations, then ``(L', E)`` with
``L' = {G1, …, Gk}`` and ``E ⊆ L' × L'`` is a **multilevel location graph**.
Each (multilevel) location graph designates at least one entry location; a
multilevel graph is entered through the entry locations of its designated
*entry children*.

:class:`LocationHierarchy` is the workhorse of the reproduction: it flattens a
(possibly deeply nested) multilevel graph into a single adjacency structure
over primitive locations in which

* every edge of every contained location graph appears unchanged, and
* for every multilevel edge ``(C1, C2)`` the entry locations of ``C1`` are
  connected to the entry locations of ``C2``,

which is exactly the connectivity relation that the paper's *complex route*
definition induces.  Route finding, the ``all_route_from`` location operator
and Algorithm 1 all operate on this flattened view.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, Union

from repro.errors import (
    DuplicateLocationError,
    GraphStructureError,
    UnknownLocationError,
)
from repro.locations.graph import Edge, LocationGraph
from repro.locations.location import (
    CompositeLocation,
    LocationName,
    PrimitiveLocation,
    location_name,
    validate_location_name,
)

__all__ = ["MultilevelLocationGraph", "LocationHierarchy"]

ChildGraph = Union[LocationGraph, "MultilevelLocationGraph"]


class MultilevelLocationGraph:
    """A graph whose nodes are location graphs or further multilevel graphs.

    Parameters
    ----------
    name:
        Identifier of the composite location this graph realizes
        (e.g. ``"NTU"``).
    children:
        The member graphs.  Their primitive location sets must be mutually
        disjoint (Definition 2).
    edges:
        Edges between child names.  An edge ``(C1, C2)`` states that a user
        can move between the two composites through their entry locations.
    entry_children:
        Names of the children through which this multilevel graph is entered.
        Defaults to *all* children when omitted.
    validate_connectivity:
        Enforce that the child-level graph is connected (the paper requires
        multilevel location graphs to be connected graphs).
    """

    def __init__(
        self,
        name: str,
        children: Iterable[ChildGraph],
        edges: Iterable[Union[Edge, Tuple[str, str]]] = (),
        entry_children: Optional[Iterable[str]] = None,
        *,
        description: str = "",
        validate_connectivity: bool = True,
    ) -> None:
        self.name = validate_location_name(name)
        self.description = description
        self._children: Dict[str, ChildGraph] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        self._edges: Dict[FrozenSet[str], Edge] = {}

        for child in children:
            if child.name in self._children:
                raise DuplicateLocationError(
                    f"child graph {child.name!r} declared twice in {name!r}"
                )
            self._children[child.name] = child
            self._adjacency[child.name] = set()
        if not self._children:
            raise GraphStructureError(f"multilevel graph {name!r} must have at least one child")

        self._check_disjoint_children()

        for edge in edges:
            resolved = edge if isinstance(edge, Edge) else Edge(location_name(edge[0]), location_name(edge[1]))
            for endpoint in resolved:
                if endpoint not in self._children:
                    raise UnknownLocationError(
                        f"edge {resolved} references unknown child {endpoint!r} of {name!r}"
                    )
            self._edges[resolved.key] = resolved
            self._adjacency[resolved.first].add(resolved.second)
            self._adjacency[resolved.second].add(resolved.first)

        if entry_children is None:
            self._entry_children: Set[str] = set(self._children)
        else:
            self._entry_children = set()
            for entry in entry_children:
                entry_name = location_name(entry)
                if entry_name not in self._children:
                    raise UnknownLocationError(
                        f"entry child {entry_name!r} is not a member of {name!r}"
                    )
                self._entry_children.add(entry_name)
        if not self._entry_children:
            raise GraphStructureError(
                f"multilevel graph {name!r} must designate at least one entry child"
            )

        if validate_connectivity:
            self.validate()

    # ------------------------------------------------------------------ #
    # Construction internals
    # ------------------------------------------------------------------ #
    def _check_disjoint_children(self) -> None:
        seen: Dict[LocationName, str] = {}
        for child in self._children.values():
            for primitive in child_primitive_names(child):
                if primitive in seen:
                    raise GraphStructureError(
                        f"children {seen[primitive]!r} and {child.name!r} of {self.name!r} "
                        f"both contain primitive location {primitive!r}; children must be disjoint"
                    )
                seen[primitive] = child.name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def children(self) -> Mapping[str, ChildGraph]:
        """Mapping from child name to child graph."""
        return dict(self._children)

    @property
    def child_names(self) -> FrozenSet[str]:
        return frozenset(self._children)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges.values())

    @property
    def entry_children(self) -> FrozenSet[str]:
        """Names of the children through which this graph is entered."""
        return frozenset(self._entry_children)

    @property
    def entry_locations(self) -> FrozenSet[LocationName]:
        """Primitive entry locations of the multilevel graph.

        These are the entry locations of the entry children, resolved
        recursively down to primitive locations.
        """
        entries: Set[LocationName] = set()
        for child_name in self._entry_children:
            entries.update(child_entry_locations(self._children[child_name]))
        return frozenset(entries)

    @property
    def composite(self) -> CompositeLocation:
        """The composite location realized by this multilevel graph."""
        return CompositeLocation(self.name, frozenset(self._children), self.description)

    def get_child(self, name: str) -> ChildGraph:
        """Return the child graph called *name*."""
        try:
            return self._children[name]
        except KeyError:
            raise UnknownLocationError(f"multilevel graph {self.name!r} has no child {name!r}") from None

    def has_edge(self, a: str, b: str) -> bool:
        """Return ``True`` if composites *a* and *b* are directly connected."""
        return frozenset((location_name(a), location_name(b))) in self._edges

    def child_neighbors(self, name: str) -> FrozenSet[str]:
        """Names of the composites adjacent to *name* in this multilevel graph."""
        key = location_name(name)
        if key not in self._adjacency:
            raise UnknownLocationError(f"multilevel graph {self.name!r} has no child {key!r}")
        return frozenset(self._adjacency[key])

    def __iter__(self) -> Iterator[str]:
        return iter(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:
        return (
            f"MultilevelLocationGraph(name={self.name!r}, children={sorted(self._children)}, "
            f"edges={len(self._edges)})"
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check connectivity of the child-level graph."""
        start = next(iter(self._children))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(self._children) > 1 and seen != set(self._children):
            missing = sorted(set(self._children) - seen)
            raise GraphStructureError(
                f"multilevel graph {self.name!r} is not connected; unreachable children: {missing}"
            )


def child_primitive_names(child: ChildGraph) -> FrozenSet[LocationName]:
    """All primitive location names contained (recursively) in *child*."""
    if isinstance(child, LocationGraph):
        return child.location_names
    names: Set[LocationName] = set()
    for grandchild in child.children.values():
        names.update(child_primitive_names(grandchild))
    return frozenset(names)


def child_entry_locations(child: ChildGraph) -> FrozenSet[LocationName]:
    """Primitive entry locations of *child* (recursing through entry children)."""
    if isinstance(child, LocationGraph):
        return child.entry_locations
    return child.entry_locations


class LocationHierarchy:
    """Flattened view over a location graph or multilevel location graph.

    The hierarchy resolves primitive locations, composite membership and the
    connectivity relation induced by simple and complex routes.  It is the
    object most of the library works against: route finding, the location
    operators of Section 4, and the inaccessibility algorithm of Section 6
    all take a :class:`LocationHierarchy`.

    Parameters
    ----------
    root:
        A :class:`LocationGraph` or :class:`MultilevelLocationGraph`.
    """

    def __init__(self, root: ChildGraph) -> None:
        if not isinstance(root, (LocationGraph, MultilevelLocationGraph)):
            raise GraphStructureError(
                f"hierarchy root must be a LocationGraph or MultilevelLocationGraph, got {type(root).__name__}"
            )
        self._root = root
        self._primitives: Dict[LocationName, PrimitiveLocation] = {}
        #: direct owning location graph of every primitive location
        self._owner_graph: Dict[LocationName, LocationGraph] = {}
        #: full expansion of every composite (graph) name to primitive names
        self._composite_members: Dict[str, FrozenSet[LocationName]] = {}
        #: parent composite of every composite / primitive, None for the root
        self._parent: Dict[str, Optional[str]] = {root.name: None}
        #: all composite graphs (location graphs and multilevel graphs) by name
        self._graphs: Dict[str, ChildGraph] = {}
        #: flattened adjacency over primitive locations
        self._adjacency: Dict[LocationName, Set[LocationName]] = {}

        self._index(root, parent=None)
        self._build_flat_adjacency(root)

    # ------------------------------------------------------------------ #
    # Index construction
    # ------------------------------------------------------------------ #
    def _index(self, graph: ChildGraph, parent: Optional[str]) -> FrozenSet[LocationName]:
        if graph.name in self._graphs:
            raise DuplicateLocationError(
                f"composite name {graph.name!r} appears more than once in the hierarchy"
            )
        self._graphs[graph.name] = graph
        self._parent[graph.name] = parent

        if isinstance(graph, LocationGraph):
            for primitive in graph.locations.values():
                if primitive.name in self._primitives:
                    raise DuplicateLocationError(
                        f"primitive location {primitive.name!r} appears in more than one graph"
                    )
                if primitive.name in self._graphs:
                    raise DuplicateLocationError(
                        f"name {primitive.name!r} is used both as a composite and a primitive location"
                    )
                self._primitives[primitive.name] = primitive
                self._owner_graph[primitive.name] = graph
                self._parent[primitive.name] = graph.name
                self._adjacency[primitive.name] = set()
            members = graph.location_names
        else:
            collected: Set[LocationName] = set()
            for child in graph.children.values():
                collected.update(self._index(child, parent=graph.name))
            members = frozenset(collected)

        self._composite_members[graph.name] = members
        return members

    def _build_flat_adjacency(self, graph: ChildGraph) -> None:
        if isinstance(graph, LocationGraph):
            for edge in graph.edges:
                self._adjacency[edge.first].add(edge.second)
                self._adjacency[edge.second].add(edge.first)
            return
        for child in graph.children.values():
            self._build_flat_adjacency(child)
        for edge in graph.edges:
            left_entries = child_entry_locations(graph.get_child(edge.first))
            right_entries = child_entry_locations(graph.get_child(edge.second))
            for a in left_entries:
                for b in right_entries:
                    if a != b:
                        self._adjacency[a].add(b)
                        self._adjacency[b].add(a)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> ChildGraph:
        """The root (multilevel) location graph."""
        return self._root

    @property
    def primitive_locations(self) -> Mapping[LocationName, PrimitiveLocation]:
        """All primitive locations of the hierarchy."""
        return dict(self._primitives)

    @property
    def primitive_names(self) -> FrozenSet[LocationName]:
        return frozenset(self._primitives)

    @property
    def composite_names(self) -> FrozenSet[str]:
        """Names of all composite locations (every contained graph)."""
        return frozenset(self._graphs)

    @property
    def entry_locations(self) -> FrozenSet[LocationName]:
        """Primitive entry locations of the root graph."""
        return child_entry_locations(self._root)

    def __contains__(self, name: object) -> bool:
        try:
            key = location_name(name)  # type: ignore[arg-type]
        except Exception:
            return False
        return key in self._primitives or key in self._graphs

    def __len__(self) -> int:
        return len(self._primitives)

    def is_primitive(self, name: str) -> bool:
        """Return ``True`` if *name* is a primitive location of the hierarchy."""
        return location_name(name) in self._primitives

    def is_composite(self, name: str) -> bool:
        """Return ``True`` if *name* is a composite location of the hierarchy."""
        return location_name(name) in self._graphs

    def get_primitive(self, name: str) -> PrimitiveLocation:
        """Return the primitive location called *name*."""
        key = location_name(name)
        try:
            return self._primitives[key]
        except KeyError:
            raise UnknownLocationError(f"hierarchy has no primitive location {key!r}") from None

    def get_graph(self, name: str) -> ChildGraph:
        """Return the (multilevel) location graph realizing composite *name*."""
        key = location_name(name)
        try:
            return self._graphs[key]
        except KeyError:
            raise UnknownLocationError(f"hierarchy has no composite location {key!r}") from None

    def graph_of(self, primitive: str) -> LocationGraph:
        """The location graph directly containing the primitive location."""
        key = location_name(primitive)
        try:
            return self._owner_graph[key]
        except KeyError:
            raise UnknownLocationError(f"hierarchy has no primitive location {key!r}") from None

    def members_of(self, composite: str) -> FrozenSet[LocationName]:
        """All primitive locations that are (directly or indirectly) part of *composite*."""
        key = location_name(composite)
        if key in self._composite_members:
            return self._composite_members[key]
        raise UnknownLocationError(f"hierarchy has no composite location {key!r}")

    def is_part_of(self, location: str, composite: str) -> bool:
        """The paper's *part of* relation: primitive or composite membership in *composite*."""
        loc = location_name(location)
        comp = location_name(composite)
        if comp not in self._composite_members:
            raise UnknownLocationError(f"hierarchy has no composite location {comp!r}")
        if loc in self._primitives:
            return loc in self._composite_members[comp]
        if loc in self._composite_members:
            return loc != comp and self._composite_members[loc] <= self._composite_members[comp] and self._is_descendant(loc, comp)
        raise UnknownLocationError(f"hierarchy has no location {loc!r}")

    def _is_descendant(self, name: str, ancestor: str) -> bool:
        current = self._parent.get(name)
        while current is not None:
            if current == ancestor:
                return True
            current = self._parent.get(current)
        return False

    def ancestors_of(self, name: str) -> List[str]:
        """Chain of composite names containing *name*, innermost first."""
        key = location_name(name)
        if key not in self._parent:
            raise UnknownLocationError(f"hierarchy has no location {key!r}")
        chain: List[str] = []
        current = self._parent[key]
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        return chain

    # ------------------------------------------------------------------ #
    # Connectivity (routes, Algorithm 1)
    # ------------------------------------------------------------------ #
    def neighbors(self, primitive: str) -> FrozenSet[LocationName]:
        """Primitive locations directly reachable from *primitive*.

        The relation includes both intra-graph edges and entry-to-entry moves
        across composite edges, i.e. exactly the single steps allowed by the
        paper's simple- and complex-route definitions.
        """
        key = location_name(primitive)
        if key not in self._adjacency:
            raise UnknownLocationError(f"hierarchy has no primitive location {key!r}")
        return frozenset(self._adjacency[key])

    def are_adjacent(self, a: str, b: str) -> bool:
        """Return ``True`` if a user may move directly between *a* and *b*."""
        return location_name(b) in self.neighbors(a)

    def is_entry_location(self, primitive: str, composite: Optional[str] = None) -> bool:
        """Return ``True`` if *primitive* is an entry location.

        Without *composite*, the question is asked of the primitive's direct
        location graph; with *composite*, of that composite (resolving entry
        children for multilevel graphs).
        """
        key = location_name(primitive)
        if composite is None:
            return key in self.graph_of(key).entry_locations
        return key in self.entry_locations_of(composite)

    def entry_locations_of(self, composite: str) -> FrozenSet[LocationName]:
        """Primitive entry locations of the given composite."""
        return child_entry_locations(self.get_graph(composite))

    def max_degree(self) -> int:
        """Maximum degree of the flattened adjacency (``N_d``)."""
        return max((len(adj) for adj in self._adjacency.values()), default=0)

    def edge_count(self) -> int:
        """Number of undirected edges in the flattened adjacency."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def connected(self) -> bool:
        """Return ``True`` if the flattened graph is connected."""
        if not self._primitives:
            return True
        start = next(iter(self._primitives))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == set(self._primitives)

    def __repr__(self) -> str:
        return (
            f"LocationHierarchy(root={self._root.name!r}, primitives={len(self._primitives)}, "
            f"composites={len(self._graphs)})"
        )
