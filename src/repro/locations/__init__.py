"""Location substrate: locations, graphs, multilevel graphs, routes, layouts.

Implements Section 3.1 of the paper: primitive and composite locations,
location graphs (Definition 1), multilevel location graphs (Definition 2),
entry locations, simple and complex routes, plus serialization and the
canonical layouts used by the paper's figures.
"""

from repro.locations.builder import LocationGraphBuilder, MultilevelGraphBuilder
from repro.locations.graph import Edge, LocationGraph
from repro.locations.layouts import (
    eee_school,
    figure4_graph,
    figure4_hierarchy,
    ntu_campus,
    ntu_campus_hierarchy,
    sce_school,
    stub_school,
)
from repro.locations.location import CompositeLocation, LocationName, PrimitiveLocation, location_name
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph
from repro.locations.routes import (
    Route,
    RouteKind,
    classify_route,
    find_all_routes,
    find_route,
    is_route,
    locations_on_routes,
    routes_from_entries,
)
from repro.locations import serialization

__all__ = [
    "Edge",
    "LocationGraph",
    "MultilevelLocationGraph",
    "LocationHierarchy",
    "LocationGraphBuilder",
    "MultilevelGraphBuilder",
    "PrimitiveLocation",
    "CompositeLocation",
    "LocationName",
    "location_name",
    "Route",
    "RouteKind",
    "classify_route",
    "find_route",
    "find_all_routes",
    "is_route",
    "routes_from_entries",
    "locations_on_routes",
    "serialization",
    "sce_school",
    "eee_school",
    "stub_school",
    "ntu_campus",
    "ntu_campus_hierarchy",
    "figure4_graph",
    "figure4_hierarchy",
]
