"""JSON (de)serialization of location layouts.

A deployment of LTAM stores its building layout in the Location & Movements
Database (Figure 3).  This module defines a stable, human-editable JSON
document format for location graphs and multilevel location graphs so that
layouts can be exported, versioned and re-imported.

Document shapes
---------------
Location graph::

    {
      "kind": "location_graph",
      "name": "SCE",
      "description": "...",
      "locations": [{"name": "SCE.GO", "description": "...", "tags": ["office"]}, ...],
      "edges": [["SCE.GO", "SCE.SectionA"], ...],
      "entry_locations": ["SCE.GO", "SCE.SectionC"]
    }

Multilevel location graph::

    {
      "kind": "multilevel_location_graph",
      "name": "NTU",
      "children": [<location graph or multilevel graph documents>],
      "edges": [["SCE", "EEE"], ...],
      "entry_children": ["SCE", "EEE"]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.errors import GraphStructureError
from repro.locations.graph import LocationGraph
from repro.locations.location import PrimitiveLocation
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
]

GraphLike = Union[LocationGraph, MultilevelLocationGraph]

KIND_LOCATION_GRAPH = "location_graph"
KIND_MULTILEVEL = "multilevel_location_graph"


def graph_to_dict(graph: GraphLike) -> Dict[str, Any]:
    """Convert a (multilevel) location graph to a JSON-compatible dictionary."""
    if isinstance(graph, LocationGraph):
        return {
            "kind": KIND_LOCATION_GRAPH,
            "name": graph.name,
            "description": graph.description,
            "locations": [
                {
                    "name": loc.name,
                    "description": loc.description,
                    "tags": sorted(loc.tags),
                }
                for loc in sorted(graph.locations.values(), key=lambda l: l.name)
            ],
            "edges": sorted(sorted([edge.first, edge.second]) for edge in graph.edges),
            "entry_locations": sorted(graph.entry_locations),
        }
    if isinstance(graph, MultilevelLocationGraph):
        return {
            "kind": KIND_MULTILEVEL,
            "name": graph.name,
            "description": graph.description,
            "children": [
                graph_to_dict(child)
                for _, child in sorted(graph.children.items())
            ],
            "edges": sorted(sorted([edge.first, edge.second]) for edge in graph.edges),
            "entry_children": sorted(graph.entry_children),
        }
    raise GraphStructureError(f"cannot serialize object of type {type(graph).__name__}")


def graph_from_dict(document: Dict[str, Any]) -> GraphLike:
    """Rebuild a (multilevel) location graph from its dictionary form."""
    kind = document.get("kind")
    if kind == KIND_LOCATION_GRAPH:
        locations = [
            PrimitiveLocation(
                entry["name"],
                entry.get("description", ""),
                frozenset(entry.get("tags", ())),
            )
            for entry in document.get("locations", [])
        ]
        return LocationGraph(
            document["name"],
            locations,
            [tuple(edge) for edge in document.get("edges", [])],
            document.get("entry_locations", []),
            description=document.get("description", ""),
        )
    if kind == KIND_MULTILEVEL:
        children = [graph_from_dict(child) for child in document.get("children", [])]
        return MultilevelLocationGraph(
            document["name"],
            children,
            [tuple(edge) for edge in document.get("edges", [])],
            document.get("entry_children") or None,
            description=document.get("description", ""),
        )
    raise GraphStructureError(f"unknown layout document kind: {kind!r}")


def dumps(graph: GraphLike, *, indent: int = 2) -> str:
    """Serialize a (multilevel) location graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def loads(text: str) -> GraphLike:
    """Deserialize a (multilevel) location graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: GraphLike, path: str) -> None:
    """Write the JSON document for *graph* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path: str) -> GraphLike:
    """Read a (multilevel) location graph from the JSON document at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def hierarchy_roundtrip(hierarchy: LocationHierarchy) -> LocationHierarchy:
    """Serialize and re-load a hierarchy (useful for structural equality tests)."""
    return LocationHierarchy(loads(dumps(hierarchy.root)))


__all__ += ["hierarchy_roundtrip"]
