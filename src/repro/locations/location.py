"""Primitive and composite location objects.

Locations in LTAM are *"both semantic and physical"* (Section 3.1): they carry
a unique semantic identifier and may additionally be described by absolute
spatial coordinates.  A **primitive location** cannot be divided further; a
**composite location** is a collection of primitive and/or composite
locations, and is represented in this library by the (multilevel) location
graph that contains its members (see :mod:`repro.locations.graph` and
:mod:`repro.locations.multilevel`).

This module defines the identifier objects themselves.  Spatial boundaries are
attached separately through :mod:`repro.spatial.boundary` so that a purely
semantic deployment (no positioning hardware) does not need geometry at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from repro.errors import LocationError

__all__ = ["LocationName", "PrimitiveLocation", "CompositeLocation", "validate_location_name"]

#: Locations are referred to by their unique string identifier everywhere in
#: the library; the dataclasses below add metadata around that identifier.
LocationName = str


def validate_location_name(name: object) -> str:
    """Validate a location identifier.

    Identifiers must be non-empty strings without leading/trailing whitespace;
    dots are allowed and conventionally separate an owning composite from a
    member (e.g. ``"SCE.GO"`` in the paper's Figure 2).
    """
    if not isinstance(name, str):
        raise LocationError(f"location name must be a string, got {type(name).__name__}")
    if not name or name.strip() != name:
        raise LocationError(f"location name must be non-empty with no surrounding whitespace: {name!r}")
    return name


@dataclass(frozen=True)
class PrimitiveLocation:
    """A location that cannot be further divided (Definition 1).

    Parameters
    ----------
    name:
        Unique semantic identifier, e.g. ``"CAIS"`` or ``"SCE.GO"``.
    description:
        Optional human-readable description.
    tags:
        Optional classification tags (``"lab"``, ``"office"``, ...), useful
        for location operators and workload generators.
    """

    name: LocationName
    description: str = ""
    tags: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        validate_location_name(self.name)
        object.__setattr__(self, "tags", frozenset(self.tags))

    def has_tag(self, tag: str) -> bool:
        """Return ``True`` if the location carries *tag*."""
        return tag in self.tags

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CompositeLocation:
    """A named collection of related locations (Definition 1 / 2).

    A composite location is realized by a location graph (or multilevel
    location graph) holding its members; this dataclass is the lightweight
    identifier used when a composite is referred to *as an object* — for
    example as a node of a higher-level multilevel graph, or as the target of
    a privacy generalization.

    Parameters
    ----------
    name:
        Unique identifier of the composite, e.g. ``"SCE"`` or ``"NTU"``.
    members:
        Names of the direct members (primitive locations or nested
        composites).  The full expansion to primitive locations is provided
        by :class:`repro.locations.multilevel.LocationHierarchy`.
    """

    name: LocationName
    members: FrozenSet[LocationName] = field(default_factory=frozenset)
    description: str = ""

    def __post_init__(self) -> None:
        validate_location_name(self.name)
        object.__setattr__(self, "members", frozenset(self.members))
        for member in self.members:
            validate_location_name(member)
        if self.name in self.members:
            raise LocationError(f"composite location {self.name!r} cannot contain itself")

    def __contains__(self, member: object) -> bool:
        if isinstance(member, PrimitiveLocation):
            return member.name in self.members
        if isinstance(member, CompositeLocation):
            return member.name in self.members
        return member in self.members

    def __str__(self) -> str:
        return self.name


def location_name(value: "PrimitiveLocation | CompositeLocation | str") -> str:
    """Return the plain string name of a location-like value."""
    if isinstance(value, (PrimitiveLocation, CompositeLocation)):
        return value.name
    return validate_location_name(value)


__all__ += ["location_name"]
