"""Canonical location layouts used by the paper's figures and examples.

* :func:`ntu_campus` reconstructs the multilevel location graph of Figures 1
  and 2 (the NTU campus with the SCE and EEE schools modelled in detail and
  the CEE, SME and NBS schools as stub graphs).
* :func:`figure4_graph` reconstructs the four-location graph of Figure 4 that
  drives the worked example of Algorithm 1 (Tables 1 and 2).

The paper's figures do not list every edge explicitly; where an edge had to
be inferred, the choice is the minimal topology consistent with the routes
the text uses (the simple route ⟨SCE.Dean Office, SCE.SectionA, SCE.SectionB,
CAIS⟩, the complex route ⟨EEE.Dean Office, EEE.SectionA, EEE.GO, SCE.GO,
SCE.SectionA, SCE.Dean Office⟩, and the Table 2 update order A → {B, D} →
{A, C}).  EXPERIMENTS.md documents these reconstruction choices.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.locations.builder import LocationGraphBuilder, MultilevelGraphBuilder
from repro.locations.graph import LocationGraph
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph

__all__ = [
    "sce_school",
    "eee_school",
    "stub_school",
    "ntu_campus",
    "ntu_campus_hierarchy",
    "figure4_graph",
    "figure4_hierarchy",
]

#: Location names used by the SCE school of Figure 2.
SCE_LOCATIONS = (
    "SCE.GO",
    "SCE.DeanOffice",
    "SCE.SectionA",
    "SCE.SectionB",
    "SCE.SectionC",
    "CAIS",
    "CHIPES",
)

#: Location names used by the EEE school of Figure 2.
EEE_LOCATIONS = (
    "EEE.GO",
    "EEE.DeanOffice",
    "EEE.SectionA",
    "EEE.SectionB",
    "EEE.SectionC",
    "Lab1",
    "Lab2",
)


def sce_school() -> LocationGraph:
    """The SCE location graph of Figure 2.

    Entry locations are ``SCE.GO`` and ``SCE.SectionC`` (drawn with double
    lines in the figure).  The research centres CAIS and CHIPES hang off the
    section corridor.
    """
    return (
        LocationGraphBuilder("SCE", description="School of Computer Engineering")
        .add_location("SCE.GO", description="SCE general office", tags=("office",), entry=True)
        .add_location("SCE.DeanOffice", description="SCE dean's office", tags=("office",))
        .add_location("SCE.SectionA", tags=("corridor",))
        .add_location("SCE.SectionB", tags=("corridor",))
        .add_location("SCE.SectionC", tags=("corridor",), entry=True)
        .add_location("CAIS", description="Centre for Advanced Information Systems", tags=("lab",))
        .add_location("CHIPES", description="Centre for High Performance Embedded Systems", tags=("lab",))
        .add_path("SCE.GO", "SCE.SectionA", "SCE.SectionB", "SCE.SectionC")
        .add_edge("SCE.SectionA", "SCE.DeanOffice")
        .add_edge("SCE.SectionB", "CAIS")
        .add_edge("SCE.SectionC", "CHIPES")
        .build()
    )


def eee_school() -> LocationGraph:
    """The EEE location graph of Figure 2 (mirror image of SCE with two labs)."""
    return (
        LocationGraphBuilder("EEE", description="School of Electrical and Electronic Engineering")
        .add_location("EEE.GO", description="EEE general office", tags=("office",), entry=True)
        .add_location("EEE.DeanOffice", description="EEE dean's office", tags=("office",))
        .add_location("EEE.SectionA", tags=("corridor",))
        .add_location("EEE.SectionB", tags=("corridor",))
        .add_location("EEE.SectionC", tags=("corridor",), entry=True)
        .add_location("Lab1", tags=("lab",))
        .add_location("Lab2", tags=("lab",))
        .add_path("EEE.GO", "EEE.SectionA", "EEE.SectionB", "EEE.SectionC")
        .add_edge("EEE.SectionA", "EEE.DeanOffice")
        .add_edge("EEE.SectionB", "Lab1")
        .add_edge("EEE.SectionC", "Lab2")
        .build()
    )


def stub_school(name: str) -> LocationGraph:
    """A minimal school graph with a lobby (entry) and a general office.

    Figure 2 shows the CEE, SME and NBS schools only as opaque nodes; the
    stub keeps them structurally valid (non-empty, connected, with an entry
    location) without inventing internal detail the paper does not give.
    """
    return (
        LocationGraphBuilder(name)
        .add_location(f"{name}.Lobby", tags=("lobby",), entry=True)
        .add_location(f"{name}.GO", tags=("office",))
        .add_edge(f"{name}.Lobby", f"{name}.GO")
        .build()
    )


def ntu_campus() -> MultilevelLocationGraph:
    """The NTU multilevel location graph of Figures 1 and 2.

    The SCE–EEE edge is required by the complex-route example of the text;
    the remaining school-level edges form a ring so that the campus graph is
    connected, which Definition 2 requires.
    """
    return (
        MultilevelGraphBuilder("NTU", description="Nanyang Technological University campus")
        .add_child(sce_school(), entry=True)
        .add_child(eee_school(), entry=True)
        .add_child(stub_school("CEE"))
        .add_child(stub_school("SME"))
        .add_child(stub_school("NBS"))
        .connect("SCE", "EEE")
        .connect("EEE", "CEE")
        .connect("CEE", "SME")
        .connect("SME", "NBS")
        .connect("NBS", "SCE")
        .build()
    )


def ntu_campus_hierarchy() -> LocationHierarchy:
    """The NTU campus wrapped in a :class:`LocationHierarchy`."""
    return LocationHierarchy(ntu_campus())


def figure4_graph() -> LocationGraph:
    """The four-location graph of Figure 4 (A entry; diamond A–B–C–D).

    The edges are inferred from the Table 2 trace: updating A flags B and D
    (so A is adjacent to B and to D), and updating B and D flags A and C
    (so C is adjacent to B and to D).
    """
    return (
        LocationGraphBuilder("Figure4", description="Worked example of Algorithm 1")
        .add_location("A", entry=True)
        .add_locations("B", "C", "D")
        .add_edge("A", "B")
        .add_edge("A", "D")
        .add_edge("B", "C")
        .add_edge("D", "C")
        .build()
    )


def figure4_hierarchy() -> LocationHierarchy:
    """The Figure 4 graph wrapped in a :class:`LocationHierarchy`."""
    return LocationHierarchy(figure4_graph())
