"""Fluent builders for location graphs and multilevel location graphs.

The constructors of :class:`~repro.locations.graph.LocationGraph` and
:class:`~repro.locations.multilevel.MultilevelLocationGraph` take all the
pieces at once; the builders in this module let layouts, tests and examples
accumulate locations, edges and entry designations incrementally and validate
only once at :meth:`build` time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import GraphStructureError
from repro.locations.graph import Edge, LocationGraph
from repro.locations.location import PrimitiveLocation, location_name
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph

__all__ = ["LocationGraphBuilder", "MultilevelGraphBuilder"]


class LocationGraphBuilder:
    """Incrementally assemble a :class:`LocationGraph`.

    Examples
    --------
    >>> graph = (
    ...     LocationGraphBuilder("SCE")
    ...     .add_locations("SCE.GO", "SCE.SectionA", "CAIS")
    ...     .add_edge("SCE.GO", "SCE.SectionA")
    ...     .add_edge("SCE.SectionA", "CAIS")
    ...     .mark_entry("SCE.GO")
    ...     .build()
    ... )
    >>> sorted(graph.entry_locations)
    ['SCE.GO']
    """

    def __init__(self, name: str, *, description: str = "") -> None:
        self._name = name
        self._description = description
        self._locations: Dict[str, PrimitiveLocation] = {}
        self._edges: List[Tuple[str, str]] = []
        self._entries: List[str] = []

    def add_location(
        self,
        location: Union[str, PrimitiveLocation],
        *,
        description: str = "",
        tags: Iterable[str] = (),
        entry: bool = False,
    ) -> "LocationGraphBuilder":
        """Add one primitive location, optionally marking it as an entry."""
        if isinstance(location, PrimitiveLocation):
            primitive = location
        else:
            primitive = PrimitiveLocation(location_name(location), description, frozenset(tags))
        self._locations[primitive.name] = primitive
        if entry:
            self.mark_entry(primitive.name)
        return self

    def add_locations(self, *locations: Union[str, PrimitiveLocation]) -> "LocationGraphBuilder":
        """Add several primitive locations at once."""
        for loc in locations:
            self.add_location(loc)
        return self

    def add_edge(self, a: str, b: str) -> "LocationGraphBuilder":
        """Add a bidirectional edge, implicitly adding unknown endpoints."""
        for endpoint in (a, b):
            if location_name(endpoint) not in self._locations:
                self.add_location(endpoint)
        self._edges.append((location_name(a), location_name(b)))
        return self

    def add_path(self, *locations: str) -> "LocationGraphBuilder":
        """Add a chain of edges along *locations* (convenient for corridors)."""
        names = [location_name(l) for l in locations]
        for a, b in zip(names, names[1:]):
            self.add_edge(a, b)
        return self

    def mark_entry(self, *locations: str) -> "LocationGraphBuilder":
        """Designate one or more locations as entry locations."""
        for loc in locations:
            name = location_name(loc)
            if name not in self._entries:
                self._entries.append(name)
        return self

    def build(self, *, validate_connectivity: bool = True) -> LocationGraph:
        """Construct and validate the location graph."""
        return LocationGraph(
            self._name,
            self._locations.values(),
            self._edges,
            self._entries,
            description=self._description,
            validate_connectivity=validate_connectivity,
        )


class MultilevelGraphBuilder:
    """Incrementally assemble a :class:`MultilevelLocationGraph`.

    Children may be added either as already-built graphs or as nested
    builders; nested builders are built lazily when :meth:`build` is called.
    """

    def __init__(self, name: str, *, description: str = "") -> None:
        self._name = name
        self._description = description
        self._children: Dict[str, Union[LocationGraph, MultilevelLocationGraph, "MultilevelGraphBuilder", LocationGraphBuilder]] = {}
        self._edges: List[Tuple[str, str]] = []
        self._entry_children: List[str] = []

    def add_child(
        self,
        child: Union[LocationGraph, MultilevelLocationGraph, "MultilevelGraphBuilder", LocationGraphBuilder],
        *,
        entry: bool = False,
    ) -> "MultilevelGraphBuilder":
        """Add a child graph (or builder), optionally marking it as an entry child."""
        name = child._name if isinstance(child, (MultilevelGraphBuilder, LocationGraphBuilder)) else child.name
        if name in self._children:
            raise GraphStructureError(f"child {name!r} added twice to builder {self._name!r}")
        self._children[name] = child
        if entry:
            self.mark_entry_child(name)
        return self

    def connect(self, a: str, b: str) -> "MultilevelGraphBuilder":
        """Add an edge between two child composites."""
        self._edges.append((location_name(a), location_name(b)))
        return self

    def mark_entry_child(self, *names: str) -> "MultilevelGraphBuilder":
        """Designate one or more children as entry children."""
        for name in names:
            resolved = location_name(name)
            if resolved not in self._entry_children:
                self._entry_children.append(resolved)
        return self

    def build(self, *, validate_connectivity: bool = True) -> MultilevelLocationGraph:
        """Construct and validate the multilevel location graph."""
        built_children: List[Union[LocationGraph, MultilevelLocationGraph]] = []
        for child in self._children.values():
            if isinstance(child, (MultilevelGraphBuilder, LocationGraphBuilder)):
                built_children.append(child.build(validate_connectivity=validate_connectivity))
            else:
                built_children.append(child)
        return MultilevelLocationGraph(
            self._name,
            built_children,
            self._edges,
            self._entry_children or None,
            description=self._description,
            validate_connectivity=validate_connectivity,
        )

    def build_hierarchy(self, *, validate_connectivity: bool = True) -> LocationHierarchy:
        """Construct the multilevel graph and wrap it in a :class:`LocationHierarchy`."""
        return LocationHierarchy(self.build(validate_connectivity=validate_connectivity))
