"""Simple and complex routes (Section 3.1 of the paper).

A **simple route** in a location graph is a sequence of primitive locations
``⟨l1, …, lk⟩`` with an edge between every consecutive pair.  A **complex
route** in a multilevel location graph additionally allows a step between the
entry locations of two composites connected by a multilevel edge.

Because :class:`~repro.locations.multilevel.LocationHierarchy` flattens both
kinds of step into a single adjacency relation, every route — simple or
complex — is a path of that flattened graph.  This module provides route
objects, validation against the paper's definitions, and route search
(shortest route, all simple-path routes, routes from entry locations).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RouteError, UnknownLocationError
from repro.locations.graph import LocationGraph
from repro.locations.location import LocationName, location_name
from repro.locations.multilevel import LocationHierarchy

__all__ = [
    "Route",
    "RouteKind",
    "classify_route",
    "is_route",
    "find_route",
    "find_all_routes",
    "routes_from_entries",
    "locations_on_routes",
]


class RouteKind:
    """Constants naming the two route flavors of the paper."""

    SIMPLE = "simple"
    COMPLEX = "complex"


@dataclass(frozen=True)
class Route:
    """A route: an ordered sequence of primitive locations.

    The first element is the *source* and the last the *destination*
    (Section 3.1).  Routes are value objects: two routes are equal when they
    visit the same locations in the same order.
    """

    locations: Tuple[LocationName, ...]

    def __post_init__(self) -> None:
        if not self.locations:
            raise RouteError("a route must visit at least one location")
        object.__setattr__(self, "locations", tuple(location_name(l) for l in self.locations))

    @property
    def source(self) -> LocationName:
        """The first location of the route."""
        return self.locations[0]

    @property
    def destination(self) -> LocationName:
        """The last location of the route."""
        return self.locations[-1]

    @property
    def length(self) -> int:
        """Number of moves (edges) along the route."""
        return len(self.locations) - 1

    def steps(self) -> Iterator[Tuple[LocationName, LocationName]]:
        """Iterate over consecutive ``(from, to)`` pairs."""
        return zip(self.locations, self.locations[1:])

    def covers(self, location: str) -> bool:
        """Return ``True`` if the route visits *location*."""
        return location_name(location) in self.locations

    def reversed(self) -> "Route":
        """The same route walked in the opposite direction (edges are bidirectional)."""
        return Route(tuple(reversed(self.locations)))

    def __iter__(self) -> Iterator[LocationName]:
        return iter(self.locations)

    def __len__(self) -> int:
        return len(self.locations)

    def __getitem__(self, index: int) -> LocationName:
        return self.locations[index]

    def __str__(self) -> str:
        return "⟨" + ", ".join(self.locations) + "⟩"


def _as_sequence(route: "Route | Sequence[str]") -> Tuple[LocationName, ...]:
    if isinstance(route, Route):
        return route.locations
    return tuple(location_name(l) for l in route)


def is_route(hierarchy: LocationHierarchy, route: "Route | Sequence[str]") -> bool:
    """Return ``True`` if *route* is a valid (simple or complex) route.

    Every consecutive pair must be adjacent in the hierarchy's flattened
    connectivity relation, and every visited location must be a primitive
    location of the hierarchy.
    """
    names = _as_sequence(route)
    for name in names:
        if not hierarchy.is_primitive(name):
            return False
    return all(hierarchy.are_adjacent(a, b) for a, b in zip(names, names[1:]))


def classify_route(hierarchy: LocationHierarchy, route: "Route | Sequence[str]") -> str:
    """Classify a valid route as :data:`RouteKind.SIMPLE` or :data:`RouteKind.COMPLEX`.

    A route is *simple* when all its locations belong to the same location
    graph and every step follows an edge of that graph; otherwise it is
    *complex*.

    Raises
    ------
    RouteError
        If the sequence is not a valid route at all.
    """
    names = _as_sequence(route)
    if not is_route(hierarchy, names):
        raise RouteError(f"{list(names)} is not a valid route of hierarchy {hierarchy.root.name!r}")
    graphs = {hierarchy.graph_of(name).name for name in names}
    if len(graphs) == 1:
        graph = hierarchy.graph_of(names[0])
        if all(graph.has_edge(a, b) for a, b in zip(names, names[1:])):
            return RouteKind.SIMPLE
    return RouteKind.COMPLEX


def find_route(
    hierarchy: LocationHierarchy, source: str, destination: str
) -> Optional[Route]:
    """Breadth-first shortest route between two primitive locations.

    Returns ``None`` when the destination is unreachable (which cannot happen
    for a well-formed, connected hierarchy but is supported for robustness,
    e.g. on partially built graphs).
    """
    src, dst = location_name(source), location_name(destination)
    hierarchy.get_primitive(src)
    hierarchy.get_primitive(dst)
    if src == dst:
        return Route((src,))
    parents: Dict[LocationName, LocationName] = {}
    seen: Set[LocationName] = {src}
    frontier = deque([src])
    while frontier:
        current = frontier.popleft()
        for neighbor in sorted(hierarchy.neighbors(current)):
            if neighbor in seen:
                continue
            parents[neighbor] = current
            if neighbor == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                return Route(tuple(reversed(path)))
            seen.add(neighbor)
            frontier.append(neighbor)
    return None


def find_all_routes(
    hierarchy: LocationHierarchy,
    source: str,
    destination: str,
    *,
    max_length: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[Route]:
    """All simple-path routes (no repeated location) from *source* to *destination*.

    Parameters
    ----------
    max_length:
        Maximum number of moves along a route; ``None`` means unbounded.
    limit:
        Stop after this many routes have been found; ``None`` means all.
    """
    src, dst = location_name(source), location_name(destination)
    hierarchy.get_primitive(src)
    hierarchy.get_primitive(dst)
    results: List[Route] = []
    path: List[LocationName] = [src]
    visited: Set[LocationName] = {src}

    def backtrack(current: LocationName) -> bool:
        if limit is not None and len(results) >= limit:
            return True
        if current == dst:
            results.append(Route(tuple(path)))
            return limit is not None and len(results) >= limit
        if max_length is not None and len(path) - 1 >= max_length:
            return False
        for neighbor in sorted(hierarchy.neighbors(current)):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            path.append(neighbor)
            stop = backtrack(neighbor)
            path.pop()
            visited.remove(neighbor)
            if stop:
                return True
        return False

    backtrack(src)
    return results


def routes_from_entries(
    hierarchy: LocationHierarchy,
    destination: str,
    *,
    max_length: Optional[int] = None,
    limit_per_entry: Optional[int] = None,
) -> Dict[LocationName, List[Route]]:
    """Routes from every entry location of the root graph to *destination*.

    This is the route family that Definition 8 quantifies over when deciding
    whether a location is inaccessible.
    """
    dst = location_name(destination)
    result: Dict[LocationName, List[Route]] = {}
    for entry in sorted(hierarchy.entry_locations):
        result[entry] = find_all_routes(
            hierarchy, entry, dst, max_length=max_length, limit=limit_per_entry
        )
    return result


def locations_on_routes(
    hierarchy: LocationHierarchy,
    source: str,
    destination: str,
    *,
    shortest_only: bool = True,
    max_length: Optional[int] = None,
) -> Set[LocationName]:
    """The set of locations visited by routes from *source* to *destination*.

    This realizes the paper's ``all_route_from`` location operator
    (Example 3): with ``shortest_only=True`` only the locations of a shortest
    route are returned; otherwise the union over all simple-path routes
    (optionally bounded by *max_length*).
    """
    if shortest_only:
        route = find_route(hierarchy, source, destination)
        return set(route.locations) if route else set()
    routes = find_all_routes(hierarchy, source, destination, max_length=max_length)
    covered: Set[LocationName] = set()
    for route in routes:
        covered.update(route.locations)
    return covered
