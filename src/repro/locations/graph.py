"""Location graphs (Definition 1 of the paper).

A location graph ``(L, E)`` consists of a set of primitive locations ``L`` and
a set of bidirectional edges ``E`` connecting pairs of locations.  An edge
``(l1, l2)`` means ``l2`` can be reached from ``l1`` directly without going
through other locations, and vice versa.  Every location graph designates at
least one **entry location**, which is the first location a user must visit
before visiting other locations within the graph and the last location before
exit.  Location graphs are required to be connected.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, Union

from repro.errors import (
    DuplicateLocationError,
    GraphStructureError,
    UnknownLocationError,
)
from repro.locations.location import (
    CompositeLocation,
    LocationName,
    PrimitiveLocation,
    location_name,
    validate_location_name,
)

__all__ = ["Edge", "LocationGraph"]

LocationLike = Union[str, PrimitiveLocation]


def _edge_key(a: LocationName, b: LocationName) -> FrozenSet[LocationName]:
    return frozenset((a, b))


@dataclass(frozen=True)
class Edge:
    """A bidirectional edge between two locations of a graph."""

    first: LocationName
    second: LocationName

    def __post_init__(self) -> None:
        validate_location_name(self.first)
        validate_location_name(self.second)
        if self.first == self.second:
            raise GraphStructureError(f"self-loop edges are not allowed: {self.first!r}")

    @property
    def key(self) -> FrozenSet[LocationName]:
        """Order-independent identity of the edge."""
        return _edge_key(self.first, self.second)

    def other(self, name: LocationName) -> LocationName:
        """Return the endpoint different from *name*."""
        if name == self.first:
            return self.second
        if name == self.second:
            return self.first
        raise UnknownLocationError(f"{name!r} is not an endpoint of edge {self}")

    def touches(self, name: LocationName) -> bool:
        """Return ``True`` if *name* is one of the endpoints."""
        return name in (self.first, self.second)

    def __iter__(self) -> Iterator[LocationName]:
        return iter((self.first, self.second))

    def __str__(self) -> str:
        return f"({self.first} -- {self.second})"


class LocationGraph:
    """A connected graph of primitive locations with designated entry locations.

    Parameters
    ----------
    name:
        Identifier of the composite location this graph realizes
        (e.g. ``"SCE"``).
    locations:
        The primitive locations of the graph.  Plain strings are accepted and
        wrapped in :class:`PrimitiveLocation`.
    edges:
        Pairs of location names (or :class:`Edge` objects).
    entry_locations:
        Names of the entry locations; must be a non-empty subset of
        *locations*.
    validate_connectivity:
        When ``True`` (the default) the constructor enforces the paper's
        requirement that location graphs are connected.

    Raises
    ------
    GraphStructureError
        If the graph has no locations, no entry locations, an edge whose
        endpoint is unknown, or (when requested) is not connected.
    """

    def __init__(
        self,
        name: str,
        locations: Iterable[LocationLike],
        edges: Iterable[Union[Edge, Tuple[LocationLike, LocationLike]]] = (),
        entry_locations: Iterable[LocationLike] = (),
        *,
        description: str = "",
        validate_connectivity: bool = True,
    ) -> None:
        self.name = validate_location_name(name)
        self.description = description
        self._locations: Dict[LocationName, PrimitiveLocation] = {}
        self._adjacency: Dict[LocationName, Set[LocationName]] = {}
        self._edges: Dict[FrozenSet[LocationName], Edge] = {}
        self._entries: Set[LocationName] = set()

        for loc in locations:
            self._add_location(loc)
        if not self._locations:
            raise GraphStructureError(f"location graph {name!r} must contain at least one location")

        for edge in edges:
            self._add_edge(edge)

        for entry in entry_locations:
            entry_name = location_name(entry)
            if entry_name not in self._locations:
                raise UnknownLocationError(
                    f"entry location {entry_name!r} is not a member of graph {name!r}"
                )
            self._entries.add(entry_name)
        if not self._entries:
            raise GraphStructureError(
                f"location graph {name!r} must designate at least one entry location"
            )

        if validate_connectivity:
            self.validate()

    # ------------------------------------------------------------------ #
    # Construction internals
    # ------------------------------------------------------------------ #
    def _add_location(self, loc: LocationLike) -> PrimitiveLocation:
        primitive = loc if isinstance(loc, PrimitiveLocation) else PrimitiveLocation(location_name(loc))
        if primitive.name in self._locations:
            raise DuplicateLocationError(
                f"location {primitive.name!r} declared twice in graph {self.name!r}"
            )
        self._locations[primitive.name] = primitive
        self._adjacency[primitive.name] = set()
        return primitive

    def _add_edge(self, edge: Union[Edge, Tuple[LocationLike, LocationLike]]) -> Edge:
        if isinstance(edge, Edge):
            resolved = edge
        else:
            a, b = edge
            resolved = Edge(location_name(a), location_name(b))
        for endpoint in resolved:
            if endpoint not in self._locations:
                raise UnknownLocationError(
                    f"edge {resolved} references unknown location {endpoint!r} in graph {self.name!r}"
                )
        self._edges[resolved.key] = resolved
        self._adjacency[resolved.first].add(resolved.second)
        self._adjacency[resolved.second].add(resolved.first)
        return resolved

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def locations(self) -> Mapping[LocationName, PrimitiveLocation]:
        """Mapping from location name to :class:`PrimitiveLocation`."""
        return dict(self._locations)

    @property
    def location_names(self) -> FrozenSet[LocationName]:
        """The names of all primitive locations of the graph."""
        return frozenset(self._locations)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges of the graph."""
        return tuple(self._edges.values())

    @property
    def entry_locations(self) -> FrozenSet[LocationName]:
        """Names of the designated entry locations."""
        return frozenset(self._entries)

    @property
    def composite(self) -> CompositeLocation:
        """The composite location realized by this graph."""
        return CompositeLocation(self.name, frozenset(self._locations), self.description)

    def __contains__(self, location: object) -> bool:
        try:
            return location_name(location) in self._locations  # type: ignore[arg-type]
        except Exception:
            return False

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[LocationName]:
        return iter(self._locations)

    def get(self, name: LocationLike) -> PrimitiveLocation:
        """Return the :class:`PrimitiveLocation` called *name*."""
        key = location_name(name)
        try:
            return self._locations[key]
        except KeyError:
            raise UnknownLocationError(f"graph {self.name!r} has no location {key!r}") from None

    def is_entry(self, name: LocationLike) -> bool:
        """Return ``True`` if *name* is an entry location of this graph."""
        return location_name(name) in self._entries

    def has_edge(self, a: LocationLike, b: LocationLike) -> bool:
        """Return ``True`` if locations *a* and *b* are directly connected."""
        return _edge_key(location_name(a), location_name(b)) in self._edges

    def neighbors(self, name: LocationLike) -> FrozenSet[LocationName]:
        """Names of the locations directly reachable from *name*."""
        key = location_name(name)
        if key not in self._adjacency:
            raise UnknownLocationError(f"graph {self.name!r} has no location {key!r}")
        return frozenset(self._adjacency[key])

    def degree(self, name: LocationLike) -> int:
        """Number of edges incident to *name*."""
        return len(self.neighbors(name))

    def max_degree(self) -> int:
        """Maximum degree over all locations (``N_d`` in the complexity analysis)."""
        return max((len(adj) for adj in self._adjacency.values()), default=0)

    # ------------------------------------------------------------------ #
    # Validation and traversal
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the structural rules of Definition 1.

        Raises
        ------
        GraphStructureError
            If the graph is not connected.
        """
        if not self.is_connected():
            unreachable = self.location_names - self._reachable_from(next(iter(self._entries)))
            raise GraphStructureError(
                f"location graph {self.name!r} is not connected; unreachable from "
                f"entry: {sorted(unreachable)}"
            )

    def _reachable_from(self, start: LocationName) -> Set[LocationName]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def is_connected(self) -> bool:
        """Return ``True`` if every location is reachable from every other."""
        start = next(iter(self._locations))
        return self._reachable_from(start) == set(self._locations)

    def shortest_path(self, source: LocationLike, target: LocationLike) -> Optional[List[LocationName]]:
        """Breadth-first shortest path between two locations, or ``None``."""
        src, dst = location_name(source), location_name(target)
        self.get(src), self.get(dst)
        if src == dst:
            return [src]
        parents: Dict[LocationName, LocationName] = {}
        frontier = deque([src])
        seen = {src}
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(self._adjacency[current]):
                if neighbor in seen:
                    continue
                parents[neighbor] = current
                if neighbor == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(neighbor)
                frontier.append(neighbor)
        return None

    def copy(self, *, name: Optional[str] = None) -> "LocationGraph":
        """Return a structural copy of the graph, optionally renamed."""
        return LocationGraph(
            name or self.name,
            self._locations.values(),
            self.edges,
            self._entries,
            description=self.description,
        )

    def __repr__(self) -> str:
        return (
            f"LocationGraph(name={self.name!r}, locations={len(self._locations)}, "
            f"edges={len(self._edges)}, entries={sorted(self._entries)})"
        )
