"""Baseline: a conventional card-reader access-control system.

The paper's introduction contrasts LTAM with *"existing office security
systems that involve the use of card readers to authenticate and register
user access requests for entering a room"*: such systems only check at the
door, so they cannot see tailgating (several people entering on one swipe),
cannot notice overstays, and cannot restrict *when* a user must leave.

:class:`CardReaderSystem` models that baseline over the *same* authorization
database so benchmark E8 can compare detection capability on identical
traces: the card reader grants or denies swipes (request-time checking works
exactly as in LTAM) but its :meth:`observe_entry` / :meth:`observe_exit` do
not evaluate the observation — whatever walks through the door is invisible
to it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.core.subjects import subject_name
from repro.engine.alerts import Alert
from repro.locations.location import location_name
from repro.locations.multilevel import LocationHierarchy
from repro.storage.authorization_db import AuthorizationDatabase, InMemoryAuthorizationDatabase
from repro.storage.movement_db import InMemoryMovementDatabase, MovementDatabase, MovementRecord

__all__ = ["CardReaderSystem"]


class CardReaderSystem:
    """Request-time-only enforcement: the card-reader strawman of Section 1.

    The swipe decision replicates Definition 7 (the card reader does know the
    schedule programmed into it); what it lacks is continuous monitoring, so
    :meth:`observe_entry`, :meth:`observe_exit` and :meth:`check_overstays`
    never raise alerts.
    """

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        *,
        authorization_db: Optional[AuthorizationDatabase] = None,
        movement_db: Optional[MovementDatabase] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.authorization_db = authorization_db if authorization_db is not None else InMemoryAuthorizationDatabase()
        # The card reader logs swipes (that is what its audit trail is), but it
        # only ever sees swipes — not what actually walks through the door.
        self.swipe_log = movement_db if movement_db is not None else InMemoryMovementDatabase(hierarchy)

    # ------------------------------------------------------------------ #
    # Request-time checking (same semantics as LTAM's Definition 7)
    # ------------------------------------------------------------------ #
    def swipe(self, time: int, subject: str, location: str) -> AccessDecision:
        """Evaluate a card swipe at the door of *location*."""
        request = AccessRequest(time, subject_name(subject), location_name(location))
        if not self.hierarchy.is_primitive(request.location):
            return AccessDecision.deny(request, DenialReason.UNKNOWN_LOCATION)
        candidates = self.authorization_db.for_subject_location(request.subject, request.location)
        if not candidates:
            return AccessDecision.deny(request, DenialReason.NO_AUTHORIZATION)
        in_window = [auth for auth in candidates if auth.permits_entry_at(time)]
        if not in_window:
            return AccessDecision.deny(request, DenialReason.OUTSIDE_ENTRY_DURATION)
        for authorization in in_window:
            used = self.swipe_log.entry_count(request.subject, request.location, authorization.entry_duration)
            remaining = authorization.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                self.swipe_log.record_entry(time, request.subject, request.location)
                return AccessDecision.grant(request, authorization, entries_used=used)
        return AccessDecision.deny(request, DenialReason.ENTRY_LIMIT_EXHAUSTED)

    # ------------------------------------------------------------------ #
    # "Monitoring" — the baseline's blind spot
    # ------------------------------------------------------------------ #
    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """A person walking through an open door is invisible to a card reader."""
        return []

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Exits are not gated, so nothing is checked."""
        return []

    def observe(self, record: MovementRecord) -> List[Alert]:
        """Process a movement observation (no-op for the baseline)."""
        return []

    def check_overstays(self, now: int) -> List[Alert]:
        """The card reader has no notion of an exit deadline."""
        return []

    def detected_violations(self) -> List[Alert]:
        """Violations the baseline detected through monitoring: always none."""
        return []
