"""Comparison baselines: card-reader systems, TAM, brute-force inaccessibility."""

from repro.baselines.brute_force import brute_force_accessible, brute_force_inaccessible
from repro.baselines.card_reader import CardReaderSystem
from repro.baselines.tam import TemporalAuthorization, TemporalOnlySystem, tam_view_of

__all__ = [
    "CardReaderSystem",
    "TemporalAuthorization",
    "TemporalOnlySystem",
    "tam_view_of",
    "brute_force_accessible",
    "brute_force_inaccessible",
]
