"""Baseline: brute-force route enumeration for the inaccessibility problem.

Algorithm 1 computes inaccessible locations by fixpoint propagation of grant
and departure times.  As a correctness oracle (and a cost comparison for
benchmark E9) this module answers the same question directly from
Definition 8: a location is accessible when *some* route from *some* entry
location, checked step by step with the Section 6 grant/departure-duration
conditions, reaches it.

Two enumeration modes are provided:

* simple paths (no repeated location) — the default, exhaustive for the small
  graphs used in tests;
* bounded walks (repeats allowed up to ``max_length`` moves) — closer to the
  full generality of the definition (a subject may wait in a room and come
  back), exponentially expensive, only usable on tiny graphs.

The enumeration is *sound* (every location it reports accessible is truly
accessible); with simple paths only it may miss exotic cases that require
revisiting a location, which is exactly the kind of case the fixpoint
algorithm handles for free — the property tests assert the subset relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.grant import AuthSource, authorize_route, _as_index
from repro.core.subjects import subject_name
from repro.locations.graph import LocationGraph
from repro.locations.multilevel import LocationHierarchy
from repro.locations.routes import Route, find_all_routes
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval

__all__ = ["brute_force_accessible", "brute_force_inaccessible"]


def _as_hierarchy(graph) -> LocationHierarchy:
    if isinstance(graph, LocationHierarchy):
        return graph
    return LocationHierarchy(graph)


def _walks(
    hierarchy: LocationHierarchy, source: str, destination: str, max_length: int
) -> Iterable[Route]:
    """Enumerate walks (repeats allowed) from source to destination, bounded in length."""
    stack: List[List[str]] = [[source]]
    while stack:
        path = stack.pop()
        current = path[-1]
        if current == destination:
            yield Route(tuple(path))
            # A walk may continue past the destination and come back, but any
            # such extension only matters for *other* destinations; stop here.
            continue
        if len(path) - 1 >= max_length:
            continue
        for neighbor in sorted(hierarchy.neighbors(current)):
            stack.append(path + [neighbor])


def brute_force_accessible(
    graph,
    subject: str,
    authorizations: AuthSource,
    *,
    request_duration: Optional[TimeInterval] = None,
    allow_revisits: bool = False,
    max_length: Optional[int] = None,
) -> FrozenSet[str]:
    """Locations reachable by at least one authorized route from an entry location.

    Parameters
    ----------
    allow_revisits:
        Enumerate bounded walks instead of simple paths (exponential; tiny
        graphs only).
    max_length:
        Maximum number of moves per route; defaults to the number of
        locations (simple paths) or twice that (walks).
    """
    hierarchy = _as_hierarchy(graph)
    subject = subject_name(subject)
    index = _as_index(authorizations)
    window = request_duration if request_duration is not None else TimeInterval(0, FOREVER)
    locations = sorted(hierarchy.primitive_names)
    entries = sorted(hierarchy.entry_locations)
    limit = max_length if max_length is not None else (2 * len(locations) if allow_revisits else len(locations))

    accessible: Set[str] = set()
    for destination in locations:
        reachable = False
        for entry in entries:
            if reachable:
                break
            if allow_revisits:
                candidate_routes: Iterable[Route] = _walks(hierarchy, entry, destination, limit)
            else:
                candidate_routes = find_all_routes(hierarchy, entry, destination, max_length=limit)
            for route in candidate_routes:
                result = authorize_route(route, subject, index, request_duration=window)
                if result.authorized:
                    reachable = True
                    break
        if reachable:
            accessible.add(destination)
    return frozenset(accessible)


def brute_force_inaccessible(
    graph,
    subject: str,
    authorizations: AuthSource,
    *,
    request_duration: Optional[TimeInterval] = None,
    allow_revisits: bool = False,
    max_length: Optional[int] = None,
) -> FrozenSet[str]:
    """Complement of :func:`brute_force_accessible` over the hierarchy's locations."""
    hierarchy = _as_hierarchy(graph)
    accessible = brute_force_accessible(
        hierarchy,
        subject,
        authorizations,
        request_duration=request_duration,
        allow_revisits=allow_revisits,
        max_length=max_length,
    )
    return frozenset(hierarchy.primitive_names) - accessible
