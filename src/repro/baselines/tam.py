"""Baseline: TAM-style purely temporal authorizations (Bertino et al., 1994).

Related work (Section 2): in TAM *"each authorization for a user to access an
object is augmented with a temporal interval of validity"*.  Applied to
locations, a TAM authorization says *"Alice may access CAIS during [10, 50]"*
— there is no exit window, no entry budget, and no location-graph semantics,
so TAM cannot express "must leave by", "at most twice", or reason about
routes and reachability.

:class:`TemporalOnlySystem` implements that baseline.  Benchmark E8 uses it to
show which LTAM decisions TAM gets wrong (over-grants after the entry budget
is exhausted) and :func:`tam_view_of` shows the information lost when an LTAM
authorization is projected onto TAM (the exit window and entry budget are
dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.core.subjects import subject_name
from repro.locations.location import location_name
from repro.temporal.interval import TimeInterval

__all__ = ["TemporalAuthorization", "TemporalOnlySystem", "tam_view_of"]


@dataclass(frozen=True)
class TemporalAuthorization:
    """A TAM authorization: (subject, object, validity interval)."""

    subject: str
    object_name: str
    validity: TimeInterval

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "object_name", location_name(self.object_name))

    def permits(self, time: int) -> bool:
        """Return ``True`` when the validity interval contains *time*."""
        return self.validity.contains(time)


def tam_view_of(authorization: LocationTemporalAuthorization) -> TemporalAuthorization:
    """Project an LTAM authorization onto TAM (drop exit window and budget)."""
    return TemporalAuthorization(
        authorization.subject, authorization.location, authorization.entry_duration
    )


class TemporalOnlySystem:
    """Access control with purely temporal authorizations (no location model)."""

    def __init__(self, authorizations: Iterable[TemporalAuthorization] = ()) -> None:
        self._by_pair: Dict[Tuple[str, str], List[TemporalAuthorization]] = {}
        for authorization in authorizations:
            self.add(authorization)

    def add(self, authorization: TemporalAuthorization) -> TemporalAuthorization:
        """Store a temporal authorization."""
        key = (authorization.subject, authorization.object_name)
        self._by_pair.setdefault(key, []).append(authorization)
        return authorization

    @classmethod
    def from_ltam(cls, authorizations: Iterable[LocationTemporalAuthorization]) -> "TemporalOnlySystem":
        """Build the TAM baseline from an LTAM authorization set."""
        return cls(tam_view_of(auth) for auth in authorizations)

    def check(self, time: int, subject: str, obj: str) -> AccessDecision:
        """Evaluate an access request under TAM semantics.

        TAM grants whenever *some* validity interval contains the request
        time; there is no entry budget to exhaust and no exit obligation.
        """
        request = AccessRequest(time, subject_name(subject), location_name(obj))
        candidates = self._by_pair.get((request.subject, request.location), [])
        if not candidates:
            return AccessDecision.deny(request, DenialReason.NO_AUTHORIZATION)
        for authorization in candidates:
            if authorization.permits(time):
                # Report the grant without an LTAM authorization object; the
                # decision dataclass requires one, so we synthesize a shim.
                shim = LocationTemporalAuthorization(
                    (request.subject, request.location),
                    authorization.validity,
                    None,
                    auth_id=f"tam-{id(authorization):x}",
                )
                return AccessDecision.grant(request, shim)
        return AccessDecision.deny(request, DenialReason.OUTSIDE_ENTRY_DURATION)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_pair.values())
