"""Command-line interface for administrators.

The CLI wraps the library for the day-to-day administrator tasks the paper
describes: validating a building layout, listing the authorizations of a
subject, checking a hypothetical access request, finding inaccessible
locations, and running ad-hoc queries against a deployment loaded from files.

Layouts are the JSON documents of :mod:`repro.locations.serialization`;
authorization sets are the JSON documents of
:mod:`repro.core.serialization`.

Usage examples::

    python -m repro.cli validate-layout campus.json
    python -m repro.cli inaccessible --layout campus.json --auths auths.json --subject Alice
    python -m repro.cli check --layout campus.json --auths auths.json \
        --subject Alice --location CAIS --time 15
    python -m repro.cli query --layout campus.json --auths auths.json \
        "AUTHORIZATIONS FOR Alice"
    python -m repro.cli example-campus --out campus.json --auths-out auths.json
    python -m repro.cli checkpoint --db /var/lib/ltam.db
    python -m repro.cli serve --layout campus.json --auths auths.json \
        --db /var/lib/ltam.db --port 7471
    python -m repro.cli serve --layout campus.json --auths auths.json \
        --partition east --map fabric.json --port 7481
    python -m repro.cli route --map fabric.json --port 7473
    python -m repro.cli route --map fabric.json --status
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import Ltam
from repro.api.stages import CapacityStage
from repro.core.serialization import dumps_authorizations, load_authorizations
from repro.engine.query.evaluator import QueryEngine
from repro.errors import LTAMError
from repro.locations.layouts import ntu_campus
from repro.locations.multilevel import LocationHierarchy
from repro.locations.serialization import dumps as dumps_layout
from repro.locations.serialization import load as load_layout
from repro.paper.fixtures import section5_authorizations
from repro.service.bus import DEFAULT_SYNC_INTERVAL, InvalidationBus
from repro.service.cache import DecisionCache
from repro.service.cache_store import CacheStore, TieredDecisionCache, engine_fingerprint
from repro.service.client import ServiceClient
from repro.service.fabric import (
    DEFAULT_ROUTER_PORT,
    FabricRouter,
    PartitionMap,
    RouterServer,
)
from repro.service.server import DEFAULT_PORT, LtamServer
from repro.service.telemetry import MetricsExporter
from repro.storage.ingest import CheckpointPolicy
from repro.storage.movement_db import SqliteMovementDatabase

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LTAM administration tools (layout validation, access checks, reachability audits).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate-layout", help="validate a layout JSON document")
    validate.add_argument("layout", help="path to the layout JSON file")

    def deployment_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--layout", required=True, help="path to the layout JSON file")
        sub.add_argument("--auths", required=True, help="path to the authorizations JSON file")

    inaccessible = commands.add_parser(
        "inaccessible", help="find the locations a subject cannot reach (Algorithm 1)"
    )
    deployment_arguments(inaccessible)
    inaccessible.add_argument("--subject", required=True)

    check = commands.add_parser("check", help="evaluate a hypothetical access request (Definition 7)")
    deployment_arguments(check)
    check.add_argument("--subject", required=True)
    check.add_argument("--location", required=True)
    check.add_argument("--time", type=int, required=True)
    check.add_argument(
        "--explain",
        action="store_true",
        help="also print the per-stage decision trace (which pipeline stage granted/denied)",
    )

    query = commands.add_parser("query", help="run a query-language statement against the deployment")
    deployment_arguments(query)
    query.add_argument("text", help='query text, e.g. "AUTHORIZATIONS FOR Alice"')

    example = commands.add_parser(
        "example-campus", help="write the paper's NTU campus and Section 5 authorizations to files"
    )
    example.add_argument("--out", required=True, help="where to write the layout JSON")
    example.add_argument("--auths-out", required=True, help="where to write the authorizations JSON")

    checkpoint = commands.add_parser(
        "checkpoint",
        help="checkpoint/compact a SQLite movement database (bounds replay and recovery cost)",
    )
    checkpoint.add_argument("--db", required=True, help="path to the SQLite deployment database")
    checkpoint.add_argument(
        "--no-compact",
        action="store_true",
        help="persist the snapshot but leave the movement log in place (no archiving)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve the engine over TCP (decide/observe/query; see repro.service)",
    )
    serve.add_argument("--layout", required=True, help="path to the layout JSON file")
    serve.add_argument("--auths", help="path to an authorizations JSON file to load")
    serve.add_argument(
        "--db",
        help="SQLite database path for the three stores (omit for in-memory backends)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the decision cache (every decide runs the pipeline)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=65536,
        help="decision-cache entry cap (default 65536)",
    )
    serve.add_argument(
        "--cache-path",
        metavar="FILE",
        help=(
            "persist the decision cache to a SQLite sidecar FILE: LRU evictions "
            "spill to disk, and a restart warm-validates the file against the "
            "movement store and re-admits the survivors (see 'repro cache')"
        ),
    )
    serve.add_argument(
        "--cache-spill",
        type=int,
        metavar="N",
        help="cap the persistent cache tier at N disk rows (default unbounded; needs --cache-path)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        metavar="N",
        help=(
            "per-listener connection cap; over-cap connections get a typed busy "
            "error and are closed (also applied to a --bus hosted in-process)"
        ),
    )
    serve.add_argument(
        "--capacity",
        action="append",
        metavar="LOCATION=LIMIT",
        help=(
            "enforce an occupancy limit on LOCATION (repeatable; adds the "
            "CapacityStage to the pipeline); in a fabric the limit counts "
            "occupants across every partition via the bus-replicated ledger"
        ),
    )
    serve.add_argument(
        "--auth-token",
        metavar="TOKEN",
        help=(
            "require TOKEN on every client frame and bus hello; unauthenticated "
            "frames get a typed ServiceAuthError and are counted in the metrics "
            "registry"
        ),
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help=(
            "log one structured NDJSON line per op (op, wire, duration, cache "
            "outcome) to stderr"
        ),
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        metavar="N",
        help=(
            "serve Prometheus text exposition (and /metrics.json) over HTTP "
            "on port N (0 picks a free port)"
        ),
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help=(
            "sample slow requests: any op taking MS milliseconds or longer "
            "gets its full span tree logged to the request log (enable "
            "--log-requests or attach a handler to repro.service.requests)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every-events",
        type=int,
        help="checkpoint the movement store every N ingested events",
    )
    serve.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        help="checkpoint the movement store every N seconds of ingest",
    )
    serve.add_argument(
        "--retain-archived",
        type=int,
        help=(
            "cap the movement archive at N records after each scheduled checkpoint; "
            "pruned history is gone — size it to cover the longest entry window "
            "whose budget must stay exactly enforced"
        ),
    )
    replication = serve.add_mutually_exclusive_group()
    replication.add_argument(
        "--bus",
        type=int,
        metavar="PORT",
        help=(
            "host the replica invalidation bus in-process on PORT (0 picks a free "
            "port) and attach this replica to it; peers join with --peers"
        ),
    )
    replication.add_argument(
        "--peers",
        metavar="HOST:PORT",
        help="join the replica invalidation bus at HOST:PORT (see --bus)",
    )
    serve.add_argument(
        "--replica-id",
        help="this replica's identity on the invalidation bus (generated when omitted)",
    )
    serve.add_argument(
        "--sync-interval",
        type=float,
        default=None,
        help=(
            "period in seconds of the replica coherence sync tick "
            f"(default {DEFAULT_SYNC_INTERVAL}; bounds the coherence window under bus loss)"
        ),
    )
    serve.add_argument(
        "--partition",
        metavar="NAME",
        help=(
            "serve as the named partition of a fabric (see 'repro route'); "
            "identity for health reporting — subjects are routed by the map"
        ),
    )
    serve.add_argument(
        "--map",
        dest="map_path",
        metavar="FILE",
        help="partition-map JSON file this partition belongs to (see PartitionMap.save)",
    )
    serve.add_argument(
        "--wire",
        choices=("binary", "json"),
        default="binary",
        help=(
            "wire formats offered to clients: 'binary' (default) answers hello "
            "negotiations with the compact framing, 'json' stays NDJSON-only; "
            "every connection starts on NDJSON either way"
        ),
    )

    cache_cmd = commands.add_parser(
        "cache",
        help="inspect/warm/purge a persistent decision-cache sidecar (see serve --cache-path)",
    )
    cache_actions = cache_cmd.add_subparsers(dest="cache_action", required=True)
    cache_stats = cache_actions.add_parser(
        "stats", help="print the sidecar's meta and row counts (read-only)"
    )
    cache_stats.add_argument("--path", required=True, help="path to the cache sidecar file")
    cache_warm = cache_actions.add_parser(
        "warm",
        help=(
            "run the warm-restart validation now: drop rows the movement store "
            "invalidated (or a configuration change doomed), ahead of the server boot"
        ),
    )
    cache_warm.add_argument("--path", required=True, help="path to the cache sidecar file")
    cache_warm.add_argument("--layout", required=True, help="path to the layout JSON file")
    cache_warm.add_argument("--auths", help="path to an authorizations JSON file to load")
    cache_warm.add_argument(
        "--db", help="SQLite deployment database to validate against (omit for in-memory)"
    )
    cache_purge = cache_actions.add_parser(
        "purge", help="drop every persisted entry (the configuration-drift escape hatch)"
    )
    cache_purge.add_argument("--path", required=True, help="path to the cache sidecar file")

    route = commands.add_parser(
        "route",
        help="run the fabric router in front of partitioned 'repro serve' processes",
    )
    route.add_argument(
        "--map",
        dest="map_path",
        required=True,
        metavar="FILE",
        help="partition-map JSON file naming every partition and its address",
    )
    route.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    route.add_argument(
        "--port",
        type=int,
        default=DEFAULT_ROUTER_PORT,
        help=f"bind port (default {DEFAULT_ROUTER_PORT}; 0 picks a free port)",
    )
    route.add_argument(
        "--pool-size",
        type=int,
        default=4,
        help="connections pooled per partition (default 4)",
    )
    route.add_argument(
        "--max-connections",
        type=int,
        metavar="N",
        help="per-listener connection cap (typed busy error beyond it)",
    )
    route.add_argument(
        "--status",
        action="store_true",
        help=(
            "print the map, per-partition health and the capacity-ledger "
            "convergence verdict instead of serving, then exit"
        ),
    )
    route.add_argument(
        "--auth-token",
        metavar="TOKEN",
        help=(
            "shared fleet secret: required on every client frame (typed "
            "ServiceAuthError otherwise) and stamped onto every partition call"
        ),
    )
    route.add_argument(
        "--metrics-port",
        type=int,
        metavar="N",
        help=(
            "serve the router's Prometheus text exposition (and /metrics.json) "
            "over HTTP on port N (0 picks a free port)"
        ),
    )
    route.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help=(
            "sample slow requests at the router: any op taking MS milliseconds "
            "or longer gets its span tree logged to repro.service.requests"
        ),
    )
    route.add_argument(
        "--log-requests",
        action="store_true",
        help="attach a stderr handler to the repro.service.requests log",
    )
    route.add_argument(
        "--wire",
        choices=("binary", "json"),
        default="binary",
        help=(
            "wire formats offered to clients AND negotiated toward the partitions: "
            "'binary' (default) upgrades both sides where the peer allows it, "
            "'json' keeps everything NDJSON (JSON-only partitions fall back "
            "transparently either way)"
        ),
    )

    top = commands.add_parser(
        "top",
        help="poll the fabric's metrics op and render a live per-partition table",
    )
    top_target = top.add_mutually_exclusive_group(required=True)
    top_target.add_argument(
        "--map",
        dest="map_path",
        metavar="FILE",
        help="partition-map JSON file: poll every partition directly",
    )
    top_target.add_argument(
        "--host",
        metavar="HOST:PORT",
        help="poll one server or router at HOST:PORT instead of a map",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one table and exit (for scripts and CI)",
    )

    return parser


def _load_engine(layout_path: str, auths_path: str) -> Ltam:
    hierarchy = LocationHierarchy(load_layout(layout_path))
    engine = Ltam.builder().hierarchy(hierarchy).build()
    engine.grant_all(load_authorizations(auths_path))
    return engine


def _command_validate(args: argparse.Namespace, out) -> int:
    hierarchy = LocationHierarchy(load_layout(args.layout))
    print(
        f"OK: {hierarchy.root.name!r} with {len(hierarchy)} primitive locations, "
        f"{len(hierarchy.composite_names)} composites, "
        f"entry locations: {', '.join(sorted(hierarchy.entry_locations))}",
        file=out,
    )
    if not hierarchy.connected():
        print("WARNING: the flattened location graph is not connected", file=out)
        return 1
    return 0


def _command_inaccessible(args: argparse.Namespace, out) -> int:
    engine = _load_engine(args.layout, args.auths)
    report = engine.inaccessible_locations(args.subject)
    print(f"subject      : {args.subject}", file=out)
    print(f"accessible   : {', '.join(sorted(report.accessible)) or '(none)'}", file=out)
    print(f"inaccessible : {', '.join(sorted(report.inaccessible)) or '(none)'}", file=out)
    return 0


def _command_check(args: argparse.Namespace, out) -> int:
    engine = _load_engine(args.layout, args.auths)
    decision = engine.decide((args.time, args.subject, args.location))
    if decision.granted:
        print(f"GRANTED via {decision.authorization.auth_id}: {decision.authorization}", file=out)
    else:
        print(f"DENIED ({decision.reason})", file=out)
    if args.explain:
        for result in decision.trace:
            print(f"  {result}", file=out)
    return 0 if decision.granted else 2


def _command_query(args: argparse.Namespace, out) -> int:
    engine = _load_engine(args.layout, args.auths)
    result = QueryEngine(engine).evaluate(args.text)
    print(result.to_text(), file=out)
    return 0


def _command_checkpoint(args: argparse.Namespace, out) -> int:
    if not os.path.exists(args.db):
        # sqlite3.connect would silently create an empty database here — an
        # operator typo must fail loudly, not checkpoint a fresh file.
        print(f"error: no database at {args.db!r}", file=out)
        return 1
    database = SqliteMovementDatabase(args.db)
    try:
        before = len(database)
        receipt = database.checkpoint(compact=not args.no_compact)
        print(f"{args.db}: {receipt}", file=out)
        print(
            f"live log: {before} -> {len(database)} record(s); "
            f"archive: {database.archived_count} record(s); "
            f"replay bound: {database.events_since_checkpoint} event(s) since checkpoint",
            file=out,
        )
    finally:
        database.close()
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    hierarchy = LocationHierarchy(load_layout(args.layout))
    builder = Ltam.builder().hierarchy(hierarchy)
    if args.db is not None:
        builder = builder.backend("sqlite", args.db)
    capacities: Dict[str, int] = {}
    for spec in args.capacity or ():
        location, sep, limit = spec.partition("=")
        if not sep or not location or not limit.isdigit() or int(limit) < 1:
            print(
                f"error: cannot parse {spec!r} as LOCATION=LIMIT (LIMIT a positive integer)",
                file=out,
            )
            return 1
        capacities[location] = int(limit)
    if capacities:
        builder = builder.stage(CapacityStage())
        for location, limit in sorted(capacities.items()):
            builder = builder.capacity(location, limit)
    engine = builder.build()
    if args.auths is not None:
        engine.grant_all(load_authorizations(args.auths))

    if args.no_cache:
        if args.cache_path is not None:
            print("error: --cache-path and --no-cache are mutually exclusive", file=out)
            return 1
        cache = None
    elif args.cache_path is not None:
        cache = TieredDecisionCache(
            args.cache_path, maxsize=args.cache_size, spill=args.cache_spill
        )
    else:
        if args.cache_spill is not None:
            print("error: --cache-spill needs --cache-path", file=out)
            return 1
        cache = DecisionCache(maxsize=args.cache_size)
    checkpoint_policy = None
    if args.checkpoint_every_events is not None or args.checkpoint_every_seconds is not None:
        checkpoint_policy = CheckpointPolicy(
            every_events=args.checkpoint_every_events,
            every_seconds=args.checkpoint_every_seconds,
            retain_archived=args.retain_archived,
        )
    elif args.retain_archived is not None:
        print("error: --retain-archived needs a checkpoint trigger (--checkpoint-every-*)", file=out)
        return 1

    bus = None
    if args.bus is not None or args.peers is not None:
        if args.db is None and args.partition is None:
            # Replication only works over a shared store: with in-memory
            # backends each replica's projection diverges permanently (the
            # bus would evict caches against state pickup() can never sync).
            # A *partition* is different — partitions never share a store;
            # their bus carries cross-partition invalidations and the
            # capacity-ledger occupancy vectors, so any backend is fine.
            print(
                "error: --bus/--peers require --db (replicas share one SQLite "
                "file) unless --partition names this process a fabric member",
                file=out,
            )
            return 1
        if args.bus is not None:
            bus = InvalidationBus(
                host=args.host,
                port=args.bus,
                max_connections=args.max_connections,
                auth_token=args.auth_token,
            )
        else:
            bus = args.peers
    sync_interval = (
        args.sync_interval if args.sync_interval is not None else DEFAULT_SYNC_INTERVAL
    )
    partition_map = None
    if args.map_path is not None:
        partition_map = PartitionMap.load(args.map_path)
        if args.partition is not None and args.partition not in partition_map.names:
            print(
                f"error: partition {args.partition!r} is not in the map "
                f"({', '.join(partition_map.names)})",
                file=out,
            )
            return 1

    if args.log_requests or args.slow_ms is not None:
        # One NDJSON line per op (and per slow-request span dump) on stderr;
        # stdout keeps the banner contract.
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        request_log = logging.getLogger("repro.service.requests")
        request_log.addHandler(handler)
        request_log.setLevel(logging.INFO)

    server = LtamServer(
        engine,
        host=args.host,
        port=args.port,
        cache=cache,
        bus=bus,
        replica_id=args.replica_id,
        sync_interval=sync_interval,
        checkpoint_policy=checkpoint_policy,
        partition=args.partition,
        partition_map=partition_map,
        wire_format=args.wire,
        max_connections=args.max_connections,
        log_requests=args.log_requests,
        slow_request_ms=args.slow_ms,
        auth_token=args.auth_token,
    )
    server.start()
    host, port = server.address
    backend = "sqlite" if args.db is not None else "memory"
    partition_note = f", partition={args.partition}" if args.partition is not None else ""
    # The address line is a contract: supervisors (and the CI smoke) read it
    # to learn the bound port, so it is printed first and flushed.
    print(
        f"serving on {host}:{port} "
        f"(backend={backend}, cache={'off' if cache is None else 'on'}, "
        f"wire={args.wire}{partition_note})",
        file=out,
    )
    exporter = None
    if args.metrics_port is not None:
        exporter = MetricsExporter(server.metrics, host=args.host, port=args.metrics_port)
        metrics_port = exporter.start()
        # Same parseable shape as the serving line: supervisors and the CI
        # smoke read the bound port from it.
        print(f"metrics on {args.host}:{metrics_port}", file=out)
    if server.warm_report is not None:
        report = server.warm_report
        print(
            f"cache warmed: {report['readmitted']} re-admitted, "
            f"{report['retained_on_disk']} on disk, {report['dropped']} dropped "
            f"(of {report['examined']} persisted)",
            file=out,
        )
    if server.coherence is not None:
        # Second contract line: replicas' supervisors read the bus address
        # (the hosted bus's real port when --bus 0 picked one).
        replica = server.coherence.replica_id
        if args.bus is not None:
            bus_host, bus_port = server.coherence.bus.address
            print(f"bus on {bus_host}:{bus_port} (replica {replica})", file=out)
        else:
            print(f"bus via {args.peers} (replica {replica})", file=out)
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    try:
        server.wait()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        if exporter is not None:
            exporter.stop()
        server.stop()
    return 0


def _command_cache(args: argparse.Namespace, out) -> int:
    if not os.path.exists(args.path):
        # sqlite3.connect would silently create an empty sidecar here — an
        # operator typo must fail loudly, not report an empty cache.
        print(f"error: no cache sidecar at {args.path!r}", file=out)
        return 1
    if args.cache_action == "stats":
        report = CacheStore.peek(args.path)
        if not report:
            print(f"error: {args.path!r} is not a cache sidecar", file=out)
            return 1
        meta = report["meta"]
        print(f"{args.path}: {report['entries']} persisted entr(y/ies)", file=out)
        print(
            f"  format v{meta.get('format_version', '?')}, "
            f"bucket={meta.get('bucket', '?')}, "
            f"positions {report['min_position']}..{report['max_position']}",
            file=out,
        )
        fingerprint = meta.get("fingerprint")
        print(f"  fingerprint: {fingerprint if fingerprint else '(never warmed)'}", file=out)
        return 0
    peeked = CacheStore.peek(args.path)
    bucket = int(peeked.get("meta", {}).get("bucket", 1)) if peeked else 1
    if args.cache_action == "purge":
        cache = TieredDecisionCache(args.path, bucket=bucket)
        try:
            dropped = cache.sidecar.delete_all()
        finally:
            cache.close()
        print(f"{args.path}: purged {dropped} entr(y/ies)", file=out)
        return 0
    # warm: validate the rows against the deployment's current state, in
    # place — the pruning is the point; the re-admitted RAM tier dies with
    # this process, but the server's own warm finds a pre-validated file.
    hierarchy = LocationHierarchy(load_layout(args.layout))
    builder = Ltam.builder().hierarchy(hierarchy)
    if args.db is not None:
        builder = builder.backend("sqlite", args.db)
    engine = builder.build()
    if args.auths is not None:
        engine.grant_all(load_authorizations(args.auths))
    cache = TieredDecisionCache(args.path, bucket=bucket)
    try:
        report = cache.warm(engine.movement_db, fingerprint=engine_fingerprint(engine))
    finally:
        cache.close()
    print(
        f"{args.path}: {report['examined']} examined, "
        f"{report['readmitted'] + report['retained_on_disk']} valid, "
        f"{report['dropped']} dropped",
        file=out,
    )
    return 0


def _command_route(args: argparse.Namespace, out) -> int:
    partition_map = PartitionMap.load(args.map_path)
    router = FabricRouter(
        partition_map, pool_size=args.pool_size, wire=args.wire, auth_token=args.auth_token
    )
    if args.status:
        try:
            report = router.health()
        finally:
            router.close()
        print(f"map v{report['map']['version']} — fabric {report['status']}", file=out)
        ledger = report.get("ledger")
        if ledger is not None:
            if ledger.get("enabled"):
                verdict = "converged" if ledger.get("converged") else "diverged"
                print(
                    f"  ledger: {verdict} ({ledger['locations']} occupied location(s))",
                    file=out,
                )
            else:
                print("  ledger: off (no partition runs a capacity ledger)", file=out)
        for name, facts in sorted(report["map"]["partitions"].items()):
            health = report["partitions"].get(name, {})
            status = health.get("status", "unknown")
            detail = f" ({health.get('error')})" if status == "unreachable" else ""
            pinned = ", ".join(facts["pinned"]) or "(none)"
            print(
                f"  {name:<12} {facts['address']:<21} {status}{detail}  "
                f"coverage={facts['coverage']:.3f}  pinned: {pinned}",
                file=out,
            )
        return 0 if report["status"] == "ok" else 2
    if args.log_requests or args.slow_ms is not None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        request_log = logging.getLogger("repro.service.requests")
        request_log.addHandler(handler)
        request_log.setLevel(logging.INFO)
    server = RouterServer(
        router,
        host=args.host,
        port=args.port,
        wire_format=args.wire,
        max_connections=args.max_connections,
        slow_request_ms=args.slow_ms,
        auth_token=args.auth_token,
    )
    server.start()
    host, port = server.address
    # Same contract as 'serve': supervisors parse the first line for the port.
    print(
        f"serving on {host}:{port} "
        f"(role=router, map=v{partition_map.version}, wire={args.wire}, "
        f"partitions={','.join(partition_map.names)})",
        file=out,
    )
    exporter = None
    if args.metrics_port is not None:
        exporter = MetricsExporter(router.metrics, host=args.host, port=args.metrics_port)
        metrics_port = exporter.start()
        print(f"metrics on {args.host}:{metrics_port}", file=out)
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    try:
        server.wait()
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        if exporter is not None:
            exporter.stop()
        server.stop()
        router.close()
    return 0


def _metric_gauge(doc: Dict[str, Any], name: str) -> Optional[float]:
    for item in doc.get("gauges", ()):
        if item.get("name") == name:
            return item.get("value")
    return None


def _metric_histogram(doc: Dict[str, Any], name: str, **labels: str) -> Optional[Dict[str, Any]]:
    for item in doc.get("histograms", ()):
        if item.get("name") == name and all(
            item.get("labels", {}).get(key) == value for key, value in labels.items()
        ):
            return item
    return None


def _ops_served(doc: Dict[str, Any]) -> int:
    # Every dispatched op lands in its latency histogram (server and router
    # alike), so the histogram counts are the one ops total both roles share.
    return sum(
        item.get("count", 0)
        for item in doc.get("histograms", ())
        if item.get("name") == "repro_op_latency_seconds"
    )


def _top_rows(doc: Dict[str, Any]) -> List[Tuple[str, Dict[str, Any]]]:
    """Normalize a metrics response into named rows.

    A router's response nests per-partition documents under ``partitions``
    (plus its own registry under ``router``); a single server's response is
    one registry document.
    """
    if "partitions" in doc and "router" in doc:
        rows = [("router", doc["router"])]
        rows.extend(sorted(doc["partitions"].items()))
        return rows
    identity = doc.get("identity") or {}
    name = identity.get("partition") or identity.get("role") or "server"
    return [(str(name), doc)]


def _format_top_row(name: str, doc: Dict[str, Any], rate: Optional[float]) -> str:
    if "counters" not in doc:
        return f"  {name:<12} unreachable ({doc.get('error', 'no metrics')})"

    def fmt(value, spec, blank="-"):
        return format(value, spec) if value is not None else blank

    # Prefer the single-decide histogram; a batch-dominated fleet may only
    # ever see decide_many, whose p99 is the next-best tail signal.
    p99_ms = None
    for op in ("decide", "decide_many"):
        histogram = _metric_histogram(doc, "repro_op_latency_seconds", op=op)
        if histogram is not None and histogram.get("count"):
            p99_ms = histogram["p99"] * 1000.0
            break
    hits = _metric_gauge(doc, "repro_cache_hits")
    misses = _metric_gauge(doc, "repro_cache_misses")
    looked_up = (hits or 0) + (misses or 0)
    hit_ratio = (hits or 0) / looked_up * 100.0 if hits is not None and looked_up else None
    lag = _metric_gauge(doc, "repro_bus_lag")
    queue = _metric_gauge(doc, "repro_ingest_queue_depth")
    live = _metric_gauge(doc, "repro_connections_live")
    cap = _metric_gauge(doc, "repro_connections_max")
    conns = "-"
    if live is not None:
        conns = f"{int(live)}/{int(cap) if cap else '∞'}"
    return (
        f"  {name:<12} {fmt(rate, '>9.1f'):>9} {fmt(p99_ms, '>8.2f'):>8} "
        f"{fmt(hit_ratio, '>6.1f'):>6} "
        f"{fmt(int(lag) if lag is not None else None, '>7d'):>7} "
        f"{fmt(int(queue) if queue is not None else None, '>7d'):>7} {conns:>9}"
    )


def _command_top(args: argparse.Namespace, out) -> int:
    if args.map_path is not None:
        partition_map = PartitionMap.load(args.map_path)
        router = FabricRouter(partition_map, pool_size=1)

        def poll() -> Dict[str, Any]:
            return router.metrics_raw()

        def close() -> None:
            router.close()

    else:
        host, _, port = args.host.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: cannot parse {args.host!r} as HOST:PORT", file=out)
            return 1
        client = ServiceClient(host, int(port), wire="binary")

        def poll() -> Dict[str, Any]:
            return client.call("metrics")

        def close() -> None:
            client.close()

    header = (
        f"  {'partition':<12} {'ops/s':>9} {'p99(ms)':>8} {'hit%':>6} "
        f"{'buslag':>7} {'ingstq':>7} {'conns':>9}"
    )
    previous: Dict[str, Tuple[float, int]] = {}
    try:
        while True:
            started = time.monotonic()
            try:
                doc = poll()
            except LTAMError as exc:
                print(f"error: {exc}", file=out)
                return 1
            rows = _top_rows(doc)
            if not args.once and out is sys.stdout and sys.stdout.isatty():
                print("\x1b[H\x1b[2J", end="", file=out)
            print(header, file=out)
            for name, row_doc in rows:
                rate = None
                if "counters" in row_doc:
                    total = _ops_served(row_doc)
                    seen = previous.get(name)
                    if seen is not None and started > seen[0]:
                        rate = max(0.0, (total - seen[1]) / (started - seen[0]))
                    previous[name] = (started, total)
                print(_format_top_row(name, row_doc, rate), file=out)
            try:
                out.flush()
            except (AttributeError, OSError):
                pass
            if args.once:
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0
    finally:
        close()


def _command_example(args: argparse.Namespace, out) -> int:
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(dumps_layout(ntu_campus()))
    with open(args.auths_out, "w", encoding="utf-8") as handle:
        handle.write(dumps_authorizations(section5_authorizations()))
    print(f"wrote layout to {args.out} and authorizations to {args.auths_out}", file=out)
    return 0


_HANDLERS = {
    "validate-layout": _command_validate,
    "inaccessible": _command_inaccessible,
    "check": _command_check,
    "query": _command_query,
    "example-campus": _command_example,
    "checkpoint": _command_checkpoint,
    "serve": _command_serve,
    "cache": _command_cache,
    "route": _command_route,
    "top": _command_top,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args, out)
    except (LTAMError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
