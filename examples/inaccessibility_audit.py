#!/usr/bin/env python3
"""Auditing an authorization database for unintentionally inaccessible locations.

Section 6 of the paper: *"a location can be made inaccessible to a subject by
directly defining appropriate authorizations for that location, or by blocking
all routes to the location.  Hence, to ensure that a subject can visit a
location, one should check that the location is not inaccessible instead of
just defining the authorizations for that location."*

The script generates a campus and an authorization workload, builds the
reachability matrix across all subjects, highlights the cases where a subject
holds an authorization on a location they still cannot reach (the human error
the paper warns about), cross-checks Algorithm 1 against the brute-force route
oracle on a small slice, and shows how adding one corridor authorization
repairs reachability.

Run with::

    python examples/inaccessibility_audit.py
"""

from repro.analysis.reachability import build_reachability_matrix
from repro.baselines.brute_force import brute_force_inaccessible
from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex
from repro.locations.routes import find_route
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects

SEED = 7


def main() -> None:
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=9, seed=SEED)
    subjects = generate_subjects(6)
    workload = AuthorizationWorkloadGenerator(
        hierarchy,
        # Moderate coverage and narrow windows: plenty of accidental dead ends.
        config=WorkloadConfig(horizon=500, coverage=0.6, window_length=120, wide_open_entries=False),
        seed=SEED,
    )
    authorizations = workload.authorizations(subjects)
    index = AuthorizationIndex(authorizations)

    print("== Reachability matrix (Algorithm 1 per subject) ==")
    matrix = build_reachability_matrix(hierarchy, subjects, index)
    print(f"{'subject':<10} {'accessible':>10} {'inaccessible':>13} {'coverage':>9}")
    for subject, accessible, inaccessible, coverage in matrix.to_rows():
        print(f"{subject:<10} {accessible:>10} {inaccessible:>13} {coverage:>9.2f}")
    dead = matrix.dead_locations()
    print(f"\nlocations unreachable by every subject: {len(dead)}")

    print("\n== Granted but unreachable (the human-error case of Section 6) ==")
    flagged = 0
    for subject in subjects:
        report = find_inaccessible(hierarchy, subject, index)
        granted = {auth.location for auth in index.for_subject(subject)}
        wasted = sorted(granted & report.inaccessible)
        if wasted:
            flagged += len(wasted)
            print(f"{subject}: authorized for {len(wasted)} location(s) it cannot reach, e.g. {wasted[:3]}")
    if not flagged:
        print("none found with this seed")

    print("\n== Cross-check against brute-force route enumeration ==")
    subject = subjects[0]
    algorithmic = find_inaccessible(hierarchy, subject, index).inaccessible
    oracle = brute_force_inaccessible(hierarchy, subject, index)
    print(f"{subject}: algorithm={len(algorithmic)} inaccessible, brute force={len(oracle)}; "
          f"oracle ⊆ algorithm-accessible: {oracle >= algorithmic}")

    print("\n== Repairing reachability ==")
    subject = subjects[0]
    report = find_inaccessible(hierarchy, subject, index)
    if report.inaccessible:
        target = sorted(report.inaccessible)[0]
        entry = sorted(hierarchy.entry_locations)[0]
        route = find_route(hierarchy, entry, target)
        print(f"making {target!r} reachable for {subject} by granting the whole route {route}")
        for location in route:
            index.add(LocationTemporalAuthorization((subject, location), (0, 500), (0, 600)))
        repaired = find_inaccessible(hierarchy, subject, index)
        print(f"before: {len(report.inaccessible)} inaccessible; after: {len(repaired.inaccessible)}")
        print(f"{target!r} now accessible: {target in repaired.accessible}")
    else:
        print(f"{subject} can already reach every location")


if __name__ == "__main__":
    main()
