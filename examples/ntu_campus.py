#!/usr/bin/env python3
"""The paper's own running example: the NTU campus (Figures 1 & 2).

The script rebuilds the multilevel location graph of Figure 2, walks through
the simple/complex route examples of Section 3.1, derives the rule Examples
1–3 of Section 4, replays the enforcement timeline of Section 5, and finishes
with the inaccessible-location analysis of Section 6 on the Figure 4 graph.

Run with::

    python examples/ntu_campus.py
"""

from repro import AccessControlEngine, find_inaccessible
from repro.core.derivation import DerivationEngine
from repro.engine import QueryEngine
from repro.locations import classify_route, find_route, figure4_hierarchy, ntu_campus_hierarchy
from repro.paper import fixtures as paper


def show_routes(hierarchy) -> None:
    print("== Section 3.1: routes ==")
    simple = find_route(hierarchy, "SCE.DeanOffice", "CAIS")
    print(f"simple route  : {simple}  ({classify_route(hierarchy, simple)})")
    complex_route = find_route(hierarchy, "EEE.DeanOffice", "SCE.DeanOffice")
    print(f"complex route : {complex_route}  ({classify_route(hierarchy, complex_route)})")


def show_rule_examples(hierarchy) -> None:
    print("\n== Section 4: rule Examples 1-3 ==")
    engine = DerivationEngine(paper.paper_directory(), hierarchy)
    a1 = paper.example_base_authorization_a1()
    print(f"base authorization a1 = {a1}")
    for rule_fn in (paper.example_rule_r1, paper.example_rule_r2, paper.example_rule_r3):
        rule = rule_fn(a1)
        engine.add_rule(rule)
        print(f"rule {rule.rule_id}: {rule.description}")
    result = engine.derive([a1], now=10)
    for auth in result.derived:
        print(f"  derived ({auth.rule_id}): {auth}")


def replay_section5(hierarchy) -> None:
    print("\n== Section 5: enforcement timeline ==")
    engine = AccessControlEngine(hierarchy)
    engine.grant_all(paper.section5_authorizations())
    for step in paper.section5_timeline():
        if step.action == "request":
            decision = engine.request_access(step.time, step.subject, step.location)
            outcome = "granted" if decision.granted else f"denied ({decision.reason})"
            print(f"t={step.time:<3} request ({step.subject}, {step.location}): {outcome}   [{step.note}]")
            if decision.granted:
                engine.observe_entry(step.time, step.subject, step.location)
        else:
            engine.observe_exit(step.time, step.subject, step.location)
            print(f"t={step.time:<3} {step.subject} leaves {step.location}")
    queries = QueryEngine(engine)
    print("\nquery> ENTRIES OF Bob INTO CHIPES")
    print(queries.evaluate("ENTRIES OF Bob INTO CHIPES").to_text())


def show_inaccessible() -> None:
    print("\n== Section 6: inaccessible locations (Figure 4 / Tables 1-2) ==")
    report = find_inaccessible(
        figure4_hierarchy(), "Alice", paper.table1_authorizations(), trace=True
    )
    for row in report.trace:
        print(row.describe())
    print(f"\ninaccessible locations for Alice: {sorted(report.inaccessible)}")
    for location in "ABCD":
        print(
            f"  {location}: Tg={report.grant_time(location)}  Td={report.departure_time(location)}"
        )


def main() -> None:
    hierarchy = ntu_campus_hierarchy()
    print(f"NTU campus: {len(hierarchy)} primitive locations, "
          f"{len(hierarchy.composite_names) - 1} schools, "
          f"entry locations {sorted(hierarchy.entry_locations)}\n")
    show_routes(hierarchy)
    show_rule_examples(hierarchy)
    replay_section5(hierarchy)
    show_inaccessible()


if __name__ == "__main__":
    main()
