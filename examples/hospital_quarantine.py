#!/usr/bin/env python3
"""Hospital contact tracing and quarantine — the paper's motivating scenario.

The introduction of the paper cites Singapore's use of RFID tracking during
the SARS outbreak: from movement data, *"users who were in contact with
diagnosed SARS patients could be traced and placed in quarantine"*.  This
example builds a small hospital, tracks staff and patients through a day,
then:

1. finds every person who shared a ward with the index patient (contact
   tracing from the Location & Movements Database);
2. quarantines the contacts by revoking their authorizations and adding a
   restrictive authorization to the isolation ward only;
3. verifies with Algorithm 1 that the rest of the hospital has become
   inaccessible to them;
4. exports an anonymized movement trace for the public-health authority,
   demonstrating the location-privacy machinery.

Run with::

    python examples/hospital_quarantine.py
"""

from repro import AccessControlEngine, LocationTemporalAuthorization
from repro.engine import QueryEngine
from repro.locations import LocationGraphBuilder, LocationHierarchy
from repro.privacy.anonymizer import TraceAnonymizer
from repro.storage.movement_db import MovementKind


def build_hospital() -> LocationHierarchy:
    graph = (
        LocationGraphBuilder("Hospital")
        .add_location("Lobby", tags=("lobby",), entry=True)
        .add_location("WardA", tags=("ward",))
        .add_location("WardB", tags=("ward",))
        .add_location("ICU", tags=("ward", "restricted"))
        .add_location("Isolation", tags=("ward", "restricted"))
        .add_location("Cafeteria", tags=("common",))
        .add_path("Lobby", "WardA", "ICU")
        .add_path("Lobby", "WardB", "Isolation")
        .add_edge("Lobby", "Cafeteria")
        .build()
    )
    return LocationHierarchy(graph)


STAFF = ["nurse-ng", "nurse-tan", "doctor-lim", "porter-raj"]
PATIENT = "patient-zero"
DAY_END = 480  # one shift in minutes


def grant_staff_access(engine: AccessControlEngine) -> None:
    for person in STAFF + [PATIENT]:
        for ward in ("Lobby", "WardA", "WardB", "ICU", "Cafeteria"):
            engine.grant(LocationTemporalAuthorization((person, ward), (0, DAY_END), (0, DAY_END + 60)))


def simulate_shift(engine: AccessControlEngine) -> None:
    """A deterministic morning of movements (times in minutes)."""
    movements = [
        (5, PATIENT, "Lobby"), (20, PATIENT, "WardA"),
        (10, "nurse-ng", "Lobby"), (30, "nurse-ng", "WardA"),      # shares WardA with the patient
        (15, "nurse-tan", "Lobby"), (25, "nurse-tan", "WardB"),
        (12, "doctor-lim", "Lobby"), (60, "doctor-lim", "WardA"),  # also shares WardA
        (18, "porter-raj", "Lobby"), (40, "porter-raj", "Cafeteria"),
    ]
    previous = {}
    for time, person, location in sorted(movements):
        if person in previous:
            engine.observe_exit(time - 1, person, previous[person])
        engine.observe_entry(time, person, location)
        previous[person] = location


def find_contacts(engine: AccessControlEngine, patient: str) -> set:
    """Everyone who was inside the same location as the patient at the same time."""
    history = engine.movement_db.history()
    intervals = {}  # (subject, location) -> [enter, exit]
    open_entries = {}
    for record in history:
        key = (record.subject, record.location)
        if record.kind is MovementKind.ENTER:
            open_entries[key] = record.time
        else:
            intervals.setdefault(key, []).append((open_entries.pop(key, 0), record.time))
    for key, start in open_entries.items():
        intervals.setdefault(key, []).append((start, DAY_END))

    contacts = set()
    patient_stays = {loc: spans for (subj, loc), spans in intervals.items() if subj == patient}
    for (subject, location), spans in intervals.items():
        if subject == patient or location not in patient_stays:
            continue
        for start, end in spans:
            for p_start, p_end in patient_stays[location]:
                if start <= p_end and p_start <= end:
                    contacts.add(subject)
    return contacts


def quarantine(engine: AccessControlEngine, contacts: set) -> None:
    now = engine.clock.now
    for person in sorted(contacts):
        for auth in engine.authorization_db.for_subject(person):
            engine.authorization_db.revoke(auth.auth_id)
        # Contacts may only move to the isolation ward (via WardB's corridor is
        # not granted, so the security desk escorts them — the model records
        # the policy, not the escort).
        engine.grant(LocationTemporalAuthorization((person, "Isolation"), (now, now + 14 * DAY_END), None))


def main() -> None:
    hierarchy = build_hospital()
    engine = AccessControlEngine(hierarchy)
    grant_staff_access(engine)
    simulate_shift(engine)

    print("== Contact tracing ==")
    contacts = find_contacts(engine, PATIENT)
    print(f"index patient : {PATIENT}")
    print(f"contacts      : {sorted(contacts)}")

    print("\n== Quarantine: revoke access, restrict to the isolation ward ==")
    engine.advance_to(DAY_END)
    quarantine(engine, contacts)
    for person in sorted(contacts):
        report = engine.inaccessible_locations(person)
        print(f"{person}: accessible={sorted(report.accessible)} inaccessible={sorted(report.inaccessible)}")

    print("\n== Queries ==")
    queries = QueryEngine(engine)
    for person in sorted(contacts):
        result = queries.evaluate(f"CAN {person} ENTER WardA AT {DAY_END + 10}")
        print(f"CAN {person} ENTER WardA -> {result.scalar}")

    print("\n== Anonymized export for the health authority ==")
    anonymizer = TraceAnonymizer(hierarchy, k=2, time_bucket=30, salt="export-2026-06")
    released = anonymizer.anonymize(engine.movement_db.history())
    suppressed = anonymizer.suppression_rate(engine.movement_db.history())
    print(f"released {len(released)} sanitized records "
          f"({suppressed:.0%} suppressed for k-anonymity); sample:")
    for record in released[:5]:
        print(f"  bucket={record.time_bucket:<4} {record.pseudonym} {record.kind.value:<5} {record.composite}")


if __name__ == "__main__":
    main()
