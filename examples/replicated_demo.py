#!/usr/bin/env python3
"""Replicated serving: two coherent replicas over one SQLite file.

The script builds the PR 5 topology in one process:

* **replica A** — the writer: it ingests movement traffic, hosts the
  invalidation bus in-process, and takes the administrative mutations;
* **replica B** — a read replica over the *same* SQLite file: it serves
  (cached) decisions and the PEP-routed ``enforce`` op, staying coherent
  through the bus (event-wise cache eviction + projection ``pickup()``).

It then demonstrates the three coherence mechanisms end to end: an observe
on A evicting B's cache, an admin revoke on A invalidating B, and the
``sync`` barrier closing the coherence window on demand — plus the
``CACHED`` audit attestation of a re-served ``enforce`` decision.

Run with::

    python examples/replicated_demo.py

The same topology runs as separate processes via the CLI::

    repro serve --layout c.json --auths a.json --db shared.db --bus 7472
    repro serve --layout c.json --db shared.db --port 7473 --peers 127.0.0.1:7472
"""

import tempfile
from pathlib import Path

from repro.api import Ltam
from repro.engine.audit import AuditEntryKind
from repro.service import DecisionCache, InvalidationBus, LtamServer, ServiceClient
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects

SEED = 2026
SUBJECTS = 30
EVENTS = 4_000


def main() -> None:
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=6, seed=SEED)
    subjects = generate_subjects(SUBJECTS)
    workload = AuthorizationWorkloadGenerator(hierarchy, seed=SEED)
    path = str(Path(tempfile.mkdtemp(prefix="ltam-replicated-")) / "shared.db")

    # Replica A: the writer, hosting the bus in-process.
    engine_a = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    engine_a.grant_all(workload.authorizations(subjects))
    server_a = LtamServer(
        engine_a, cache=DecisionCache(), bus=InvalidationBus(), replica_id="writer"
    )
    server_a.start()
    bus_host, bus_port = server_a.coherence.bus.address
    print(f"replica A (writer): {server_a.address[0]}:{server_a.address[1]}, "
          f"bus on {bus_host}:{bus_port}")

    # Replica B: a read replica over the same file, joined to the bus.
    engine_b = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    server_b = LtamServer(
        engine_b, cache=DecisionCache(), bus=(bus_host, bus_port), replica_id="reader"
    )
    server_b.start()
    print(f"replica B (reader): {server_b.address[0]}:{server_b.address[1]}")

    try:
        with ServiceClient(*server_a.address) as client_a, ServiceClient(
            *server_b.address
        ) as client_b:
            # The writer ingests a trace; B follows through bus + pickup().
            trace = workload.movement_events(subjects, EVENTS)
            client_a.observe_batch(trace, mode="record", wait=True)
            barrier = client_b.sync()
            print(f"B synced to the writer: {barrier}")

            subject = subjects[0]
            location = sorted(hierarchy.primitive_names)[0]
            request = (15, subject, location)
            decision = client_b.decide(request)
            print(f"B decide: {decision}")
            client_b.decide(request)
            print(f"B cache after repeat: {server_b.cache.stats}")

            # An observe on A evicts the affected keys on B — event-wise.
            client_a.observe_entry(16, subject, location)
            client_b.sync()
            print(f"B cache after A's observe: {server_b.cache.stats}")

            # enforce: audited server-side; a cache hit carries a CACHED marker.
            first, first_cached = client_b.enforce_detail(request)
            second, second_cached = client_b.enforce_detail(request)
            print(f"B enforce: cached={first_cached} then cached={second_cached}")
            cached_notes = [
                entry
                for entry in engine_b.audit.of_kind(AuditEntryKind.NOTE)
                if "CACHED" in str(entry.payload)
            ]
            print(f"B audit: {len(engine_b.audit.of_kind(AuditEntryKind.DECISION))} "
                  f"decision(s), CACHED note: {cached_notes[-1].payload!r}")

            # An admin mutation on A invalidates B over the bus.
            if first.granted:
                engine_a.revoke(first.authorization.auth_id)
                client_b.sync()
                after = client_b.decide(request)
                print(f"B decide after A revoked: granted={after.granted}")

            health = client_b.health()
            print(f"B coherence: connected={health['coherence']['connected']} "
                  f"picked_up={health['coherence']['picked_up']} "
                  f"last_seen=bus-seq-{health['coherence']['last_seen']}")
    finally:
        server_b.stop()
        server_a.stop()
    print("done")


if __name__ == "__main__":
    main()
