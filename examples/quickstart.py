#!/usr/bin/env python3
"""Quickstart: protect a small office with the LTAM PDP/PEP API in ~60 lines.

The script builds a tiny location graph, assembles an engine with the fluent
``Ltam.builder()``, grants authorizations with the ``grant(...)`` sentence
builder, evaluates access requests (printing each decision's per-stage
trace), feeds movement observations to the continuous monitor, and asks the
query engine a few questions.

Migration note: this example previously drove ``AccessControlEngine``
directly — ``check_request`` is now ``decide``, ``request_access`` is
``enforce``, ``request_and_enter`` is ``enforce_and_enter``.  The old class
still works (it is a thin shim over :class:`repro.api.Ltam`), but new code
should start from :mod:`repro.api`.

Run with::

    python examples/quickstart.py
"""

from repro.api import Ltam, grant
from repro.engine import QueryEngine
from repro.locations import LocationGraphBuilder, LocationHierarchy


def build_office() -> LocationHierarchy:
    """A lobby, a corridor, an office and a server room."""
    graph = (
        LocationGraphBuilder("Office")
        .add_location("Lobby", tags=("lobby",), entry=True)
        .add_location("Corridor", tags=("corridor",))
        .add_location("DevOffice", tags=("office",))
        .add_location("ServerRoom", tags=("restricted",))
        .add_path("Lobby", "Corridor", "DevOffice")
        .add_edge("Corridor", "ServerRoom")
        .build()
    )
    return LocationHierarchy(graph)


def main() -> None:
    # Dana the developer: free run of the office during the working day, and
    # one visit to the server room between 9:00 and 10:00 (minutes 60-120)
    # that must end by minute 150.
    engine = (
        Ltam.builder()
        .hierarchy(build_office())
        .grant(grant("Dana").at("Lobby").during(0, 480).exit_between(0, 540))
        .grant(grant("Dana").at("Corridor").during(0, 480).exit_between(0, 540))
        .grant(grant("Dana").at("DevOffice").during(0, 480).exit_between(0, 540))
        .grant(grant("Dana").at("ServerRoom").during(60, 120).exit_between(60, 150).entries(1))
        .build()
    )

    print("== Access decisions (Definition 7, with per-stage traces) ==")
    for time, room in [(10, "Lobby"), (70, "ServerRoom"), (200, "ServerRoom")]:
        decision = engine.enforce((time, "Dana", room))
        outcome = "GRANTED" if decision.granted else f"DENIED ({decision.reason})"
        print(f"t={time:<4} Dana -> {room:<11} {outcome}  [decided by: {decision.deciding_stage}]")

    # The same decisions, evaluated as one batch (shared lookups).
    batch = engine.decide_many([(10, "Dana", "Lobby"), (70, "Dana", "ServerRoom")])
    print(f"batch of {len(batch)} decisions: {[d.granted for d in batch]}")

    print("\n== Continuous monitoring ==")
    engine.observe_entry(10, "Dana", "Lobby")
    engine.observe_exit(15, "Dana", "Lobby")
    engine.observe_entry(70, "Dana", "ServerRoom")
    # Dana forgets the time; the clock passes the exit deadline (150).
    engine.advance_to(160)
    for alert in engine.alerts:
        print(f"ALERT: {alert}")

    print("\n== Occupancy (event-indexed reads) ==")
    # where_is/occupancy/occupants are O(1)-ish projection reads — they never
    # replay the movement history, however long this deployment runs.
    print(f"where is Dana?        {engine.where_is('Dana')}")
    print(f"ServerRoom occupancy: {engine.occupancy('ServerRoom')} "
          f"(occupants: {engine.occupants('ServerRoom')})")

    print("\n== Queries ==")
    queries = QueryEngine(engine)
    for text in (
        "WHERE IS Dana",
        "ENTRIES OF Dana INTO ServerRoom",
        "CAN Dana ENTER ServerRoom AT 100",
        "INACCESSIBLE FOR Dana",
        "VIOLATIONS FOR Dana",
    ):
        print(f"\n> {text}")
        print(queries.evaluate(text).to_text())


if __name__ == "__main__":
    main()
