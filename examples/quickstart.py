#!/usr/bin/env python3
"""Quickstart: protect a small office with LTAM in ~60 lines.

The script builds a tiny location graph, grants two location-temporal
authorizations, evaluates access requests, feeds movement observations to the
continuous monitor, and asks the query engine a few questions.

Run with::

    python examples/quickstart.py
"""

from repro import AccessControlEngine, LocationTemporalAuthorization
from repro.engine import QueryEngine
from repro.locations import LocationGraphBuilder, LocationHierarchy


def build_office() -> LocationHierarchy:
    """A lobby, a corridor, an office and a server room."""
    graph = (
        LocationGraphBuilder("Office")
        .add_location("Lobby", tags=("lobby",), entry=True)
        .add_location("Corridor", tags=("corridor",))
        .add_location("DevOffice", tags=("office",))
        .add_location("ServerRoom", tags=("restricted",))
        .add_path("Lobby", "Corridor", "DevOffice")
        .add_edge("Corridor", "ServerRoom")
        .build()
    )
    return LocationHierarchy(graph)


def main() -> None:
    engine = AccessControlEngine(build_office())

    # Dana the developer: free run of the office during the working day.
    for room in ("Lobby", "Corridor", "DevOffice"):
        engine.grant(LocationTemporalAuthorization(("Dana", room), (0, 480), (0, 540)))
    # ... and one visit to the server room between 9:00 and 10:00 (minutes 60-120),
    # which must end by minute 150.
    engine.grant(LocationTemporalAuthorization(("Dana", "ServerRoom"), (60, 120), (60, 150), 1))

    print("== Access requests (Definition 7) ==")
    for time, room in [(10, "Lobby"), (70, "ServerRoom"), (200, "ServerRoom")]:
        decision = engine.request_access(time, "Dana", room)
        outcome = "GRANTED" if decision.granted else f"DENIED ({decision.reason})"
        print(f"t={time:<4} Dana -> {room:<11} {outcome}")

    print("\n== Continuous monitoring ==")
    engine.observe_entry(10, "Dana", "Lobby")
    engine.observe_exit(15, "Dana", "Lobby")
    engine.observe_entry(70, "Dana", "ServerRoom")
    # Dana forgets the time; the clock passes the exit deadline (150).
    engine.advance_to(160)
    for alert in engine.alerts:
        print(f"ALERT: {alert}")

    print("\n== Queries ==")
    queries = QueryEngine(engine)
    for text in (
        "WHERE IS Dana",
        "ENTRIES OF Dana INTO ServerRoom",
        "CAN Dana ENTER ServerRoom AT 100",
        "INACCESSIBLE FOR Dana",
        "VIOLATIONS FOR Dana",
    ):
        print(f"\n> {text}")
        print(queries.evaluate(text).to_text())


if __name__ == "__main__":
    main()
