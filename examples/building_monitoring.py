#!/usr/bin/env python3
"""Continuous monitoring of a synthetic campus, versus a card-reader baseline.

The script generates a campus, an authorization workload, and a day of
simulated movement with injected violations (tailgating and overstays).  The
same observation stream is fed to the LTAM enforcement engine and to the
card-reader baseline, and their detection statistics are compared — the
quantified version of the paper's Section 1 claims.

Run with::

    python examples/building_monitoring.py
"""

from repro.analysis.reports import build_violation_report, busiest_locations, detection_stats
from repro.baselines.card_reader import CardReaderSystem
from repro.engine.access_control import AccessControlEngine
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.storage.movement_db import MovementKind

SEED = 2026
SUBJECTS = 20
BUILDINGS = 4
ROOMS_PER_BUILDING = 9


def main() -> None:
    hierarchy = campus_hierarchy("Campus", BUILDINGS, rooms_per_building=ROOMS_PER_BUILDING, seed=SEED)
    subjects = generate_subjects(SUBJECTS)
    workload = AuthorizationWorkloadGenerator(
        hierarchy,
        config=WorkloadConfig(horizon=1_000, coverage=0.7, max_entries=3, wide_open_entries=True),
        seed=SEED,
    )
    authorizations = workload.authorizations(subjects)
    print(f"campus: {len(hierarchy)} rooms in {BUILDINGS} buildings; "
          f"{len(authorizations)} authorizations for {SUBJECTS} subjects")

    simulator = MovementSimulator(hierarchy, authorizations, seed=SEED)
    trace = simulator.population_trace(subjects, steps=8, p_tailgate=0.25, p_overstay=0.2)
    print(f"simulated {len(trace)} movement observations; injected "
          f"{len(trace.truth.unauthorized_entries)} unauthorized entries and "
          f"{len(trace.truth.overstays)} overstays")

    ltam = AccessControlEngine(hierarchy)
    ltam.grant_all(authorizations)
    card_reader = CardReaderSystem(hierarchy, authorization_db=ltam.authorization_db)

    last_time = 0
    for record in trace:
        last_time = max(last_time, record.time)
        if record.kind is MovementKind.ENTER:
            ltam.observe_entry(record.time, record.subject, record.location)
            card_reader.observe_entry(record.time, record.subject, record.location)
        else:
            ltam.observe_exit(record.time, record.subject, record.location)
            card_reader.observe_exit(record.time, record.subject, record.location)
    # End-of-day sweep for people still inside past their exit window.
    ltam.monitor.check_overstays(last_time + 10_000)
    card_reader.check_overstays(last_time + 10_000)

    print("\n== Detection (recall against the injected ground truth) ==")
    ltam_stats = detection_stats(ltam.alerts.alerts, trace.truth)
    baseline_stats = detection_stats(card_reader.detected_violations(), trace.truth)
    header = f"{'system':<14} {'unauthorized':>14} {'overstay':>10} {'overall':>9}"
    print(header)
    print("-" * len(header))
    for name, stats in (("LTAM", ltam_stats), ("card reader", baseline_stats)):
        print(f"{name:<14} {stats.unauthorized_recall:>14.2f} {stats.overstay_recall:>10.2f} "
              f"{stats.overall_recall:>9.2f}")

    print("\n== End-of-day report ==")
    report = build_violation_report(ltam.audit)
    print(f"alerts by kind   : { {str(k): v for k, v in report.alerts_by_kind.items()} }")
    print(f"busiest locations: {busiest_locations(ltam.movement_db, top=5)}")


if __name__ == "__main__":
    main()
