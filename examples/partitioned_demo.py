#!/usr/bin/env python3
"""Partitioned serving: three partitions, one router, a live reshard.

The script builds the PR 6 fabric in one process:

* **three partition servers** — each an ordinary :class:`LtamServer`
  holding the full layout and authorization set, but only *its* subjects'
  movement state;
* **a fabric router** — owns the :class:`PartitionMap` (consistent-hash
  subject → partition), routes point ops to the owner, scatter-gathers
  batches, and fans cross-partition queries out and merges them
  deterministically.

It then demonstrates the fabric end to end: a scattered ingest, owner-routed
decides, a merged ``WHO IS IN``, the fabric health document, and finally a
live ``reshard()`` that pins a hot subject to a different partition and moves
its history + alerts + open session across — while the answers stay identical.

Run with::

    python examples/partitioned_demo.py

The same topology runs as separate processes via the CLI::

    repro serve --layout c.json --auths a.json --partition east --port 7481
    repro serve --layout c.json --auths a.json --partition west --port 7482
    repro route --map fabric.json            # and: repro route --map ... --status
"""

from repro.api import Ltam
from repro.service import DecisionCache, FabricRouter, LtamServer, PartitionMap
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects

SEED = 2026
SUBJECTS = 30
EVENTS = 4_000
PARTITIONS = ("east", "west", "north")


def main() -> None:
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=6, seed=SEED)
    subjects = generate_subjects(SUBJECTS)
    workload = AuthorizationWorkloadGenerator(hierarchy, seed=SEED)
    authorizations = workload.authorizations(subjects)

    # Three partition servers. Every partition knows the whole layout and
    # authorization set; movement state is what the map shards.
    servers = {}
    addresses = {}
    for name in PARTITIONS:
        engine = Ltam.builder().hierarchy(hierarchy).build()
        engine.grant_all(authorizations)
        server = LtamServer(engine, cache=DecisionCache(), partition=name)
        server.start()
        servers[name] = server
        addresses[name] = "%s:%d" % server.address
        print(f"partition {name!r}: {addresses[name]}")

    router = FabricRouter(PartitionMap(addresses))
    try:
        counts = {
            name: sum(1 for s in subjects if router.partition_map.owner(s) == name)
            for name in PARTITIONS
        }
        print(f"subject split across the ring: {counts}")

        # One scattered ingest: the router buckets by owner; 'wait' is a
        # flush barrier on every partition it touched.
        trace = workload.movement_events(subjects, EVENTS)
        receipt = router.observe_batch(trace, mode="monitor", wait=True)
        print(f"scattered ingest: {receipt['accepted']} events -> "
              f"{ {n: r['accepted'] for n, r in receipt['partitions'].items()} }")

        # Point ops go to the owner; batch decides scatter-gather in order.
        subject = subjects[0]
        location = sorted(hierarchy.primitive_names)[0]
        now = trace[-1].time + 1
        decision = router.decide((now, subject, location))
        print(f"routed decide for {subject}: granted={decision.granted} "
              f"({decision.reason})")

        # Walk a few subjects (owned by different partitions) into one room,
        # so the cross-partition merge below has something to merge.
        for offset, walker in enumerate(subjects[:3]):
            router.observe((now + offset, walker, location, "enter"))

        # Cross-partition queries fan out and merge deterministically.
        inside = router.query(f"WHO IS IN {location}")
        print(f"WHO IS IN {location}: {sorted(r[0] for r in inside.rows)} "
              f"(merged across {len(PARTITIONS)} partitions)")

        report = router.health()
        print(f"fabric health: {report['status']}, map v{report['map']['version']}")

        # Live migration: pin the hot subject to a different partition.
        # Only that subject moves — history, alerts, and its open session.
        where_before = router.query(f"WHERE IS {subject}").scalar
        source = router.partition_map.owner(subject)
        target = next(n for n in PARTITIONS if n != source)
        summary = router.reshard(
            router.partition_map.with_assignment(subject, target)
        )
        print(f"reshard: map v{summary['version']}, moved {summary['moved']} "
              f"subject(s) {summary['transfers']}")
        where_after = router.query(f"WHERE IS {subject}").scalar
        assert where_after == where_before, (where_before, where_after)
        print(f"{subject} still tracked at {where_after!r} — now served by "
              f"{router.partition_map.owner(subject)!r}")
    finally:
        router.close()
        for server in servers.values():
            server.stop()
    print("done.")


if __name__ == "__main__":
    main()
