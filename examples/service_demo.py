#!/usr/bin/env python3
"""The network deployment: one authorization server, two tracker processes.

The script boots an :class:`~repro.service.server.LtamServer` over a
synthetic campus with a decision cache and a checkpoint policy, forks two
tracker *processes* that ship their movement streams through
``observe_batch`` (the ROADMAP's multi-process ingest shape), and then acts
as a gate client: decisions (cached and invalidated event-wise), queries,
a checkpoint, and the health document.

Run with::

    python examples/service_demo.py
"""

import multiprocessing

from repro.api import Ltam
from repro.service import DecisionCache, LtamServer, RemotePdp, RemotePep, ServiceClient
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.ingest import CheckpointPolicy

SEED = 2026
SUBJECTS = 30
TRACKERS = 2
EVENTS = 6_000


def run_tracker(name: str, host: str, port: int, stream) -> None:
    """One tracker process: stream observations through a remote ingestor."""
    pep = RemotePep(host, port)
    with pep.ingestor(mode="record", batch_size=512) as ingestor:
        for record in stream:
            ingestor.submit(record)
    pep.close()
    print(f"  [{name}] shipped {len(stream)} observations")


def main() -> None:
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=6, seed=SEED)
    subjects = generate_subjects(SUBJECTS)
    workload = AuthorizationWorkloadGenerator(hierarchy, seed=SEED)
    engine = Ltam.builder().hierarchy(hierarchy).build()
    engine.grant_all(workload.authorizations(subjects))
    streams = workload.movement_streams(subjects, EVENTS, trackers=TRACKERS)

    server = LtamServer(
        engine,
        cache=DecisionCache(),
        checkpoint_policy=CheckpointPolicy(every_events=2_000, retain_archived=4_000),
    )
    server.start()
    host, port = server.address
    print(f"server: {host}:{port} (cache on, checkpoint every 2000 events)")

    try:
        # Two tracker processes ship their feeds concurrently.
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=run_tracker, args=(f"tracker-{i}", host, port, stream))
            for i, stream in enumerate(streams)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        # wire="binary": one hello op upgrades the connection to the compact
        # binary codec (a JSON-only server would leave it on NDJSON).
        with ServiceClient(host, port, wire="binary") as client:
            print(f"client wire format: {client.wire}")
            # No barrier needed: each tracker's ingestor ships its batches
            # as waited frames, so everything landed before join() returned.
            print(f"movement log: {len(engine.movement_db)} live record(s), "
                  f"{engine.movement_db.archived_count} archived by scheduled checkpoints")

            subject = subjects[0]
            location = sorted(hierarchy.primitive_names)[0]
            decision = client.decide((15, subject, location), trace=True)
            print(f"decide: {decision}")
            print(f"  deciding stage: {decision.deciding_stage}")  # traces are opt-in
            client.decide((15, subject, location))  # served from the cache
            where = client.query(f'WHERE IS "{subject}"')
            print(f"query WHERE IS {subject}: {where.scalar!r}")
            receipt = client.checkpoint()
            print(f"checkpoint: {receipt}")
            health = client.health()
            print(f"health: decisions={health['stats']['decisions']} "
                  f"cache_hits={health['cache']['hits']} "
                  f"ingested={health['ingest'].get('record', {}).get('written', 0)}")

        pdp = RemotePdp(host, port)
        grants = sum(d.granted for d in pdp.decide_many(workload.requests(subjects, 200)))
        print(f"remote batch decide: {grants}/200 granted")
        pdp.close()
    finally:
        server.stop()
    print("done")


if __name__ == "__main__":
    main()
