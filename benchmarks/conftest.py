"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one artifact of the paper (figure, table,
worked example or claim) — see DESIGN.md's per-experiment index and
EXPERIMENTS.md for the paper-vs-measured record.  Benchmarks both *time* the
operation (pytest-benchmark) and *assert* the reproduced shape, so running
``pytest benchmarks/ --benchmark-only`` doubles as a reproduction check.

Every measured table and metric is also **dumped to disk**: each benchmark
module ``test_bench_<name>.py`` gets a ``BENCH_<name>.json`` written at the
end of the session (into ``$REPRO_BENCH_DIR``, default the invocation
directory) containing every table the module printed through the
``table_printer`` fixture plus any structured metrics it recorded through
``bench_json``.  The CI benchmark job uploads the ``BENCH_*.json`` files as
artifacts, so measured ratios are diffable across commits, not just visible
in scrollback.
"""

from __future__ import annotations

import json
import os
import subprocess
from collections import OrderedDict
from typing import Iterable, Sequence

import pytest

#: Version of the BENCH_*.json layout.  Bump when the dump's shape changes
#: (new top-level keys, renamed fields) so downstream diff tooling can tell
#: a format change from a measurement change.
BENCH_SCHEMA_VERSION = 2

#: module slug -> {"tables": [...], "metrics": {...}}, in execution order.
_RESULTS: "OrderedDict[str, dict]" = OrderedDict()


def _module_slug(request) -> str:
    name = request.node.module.__name__.rpartition(".")[2]
    for prefix in ("test_bench_", "test_"):
        if name.startswith(prefix):
            return name[len(prefix) :]
    return name


def _bucket(slug: str) -> dict:
    return _RESULTS.setdefault(slug, {"tables": [], "metrics": {}})


def print_table(title: str, columns: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a small fixed-width table (visible with ``pytest -s``)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n--- {title} ---")
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))


@pytest.fixture
def table_printer(request):
    """Fixture handing benchmark tests the table printer.

    Every printed table is also recorded into the module's
    ``BENCH_<name>.json`` dump (rows stringified exactly as displayed).
    """
    slug = _module_slug(request)

    def _print_and_record(title, columns, rows):
        rows = [[str(cell) for cell in row] for row in rows]
        _bucket(slug)["tables"].append(
            {
                "test": request.node.name,
                "title": title,
                "columns": [str(column) for column in columns],
                "rows": rows,
            }
        )
        print_table(title, columns, rows)

    return _print_and_record


@pytest.fixture
def bench_json(request):
    """Record structured (machine-readable) metrics into ``BENCH_<name>.json``.

    ``bench_json(key=value, ...)`` merges the keyword pairs into the
    module's ``metrics`` object — use it for the raw numbers behind the
    printed table (throughputs, ratios, floors) so downstream tooling does
    not have to parse display strings.
    """
    slug = _module_slug(request)

    def _record(**metrics):
        _bucket(slug)["metrics"].update(metrics)

    return _record


def _git_describe() -> str:
    """The commit the numbers were measured at, or ``"unknown"``.

    ``--always`` falls back to a bare abbreviated hash when no tag exists;
    ``--dirty`` flags measurements taken on uncommitted changes.
    """
    try:
        return subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def pytest_sessionfinish(session, exitstatus):
    directory = os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    revision = _git_describe()
    for slug, payload in _RESULTS.items():
        payload["schema_version"] = BENCH_SCHEMA_VERSION
        payload["revision"] = revision
        path = os.path.join(directory, f"BENCH_{slug}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
