"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one artifact of the paper (figure, table,
worked example or claim) — see DESIGN.md's per-experiment index and
EXPERIMENTS.md for the paper-vs-measured record.  Benchmarks both *time* the
operation (pytest-benchmark) and *assert* the reproduced shape, so running
``pytest benchmarks/ --benchmark-only`` doubles as a reproduction check.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, columns: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a small fixed-width table (visible with ``pytest -s``)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n--- {title} ---")
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))


@pytest.fixture
def table_printer():
    """Fixture handing benchmark tests the table printer."""
    return print_table
