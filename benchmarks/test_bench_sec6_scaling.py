"""E7 — Section 6: the complexity claim for Algorithm 1.

The paper states that FindInaccessible runs in ``O(N_L² · N_d · N_a)`` where
``N_L`` is the number of locations, ``N_d`` the maximum degree and ``N_a`` the
maximum number of authorizations per location, and argues that this is
acceptable because buildings are small.  The benchmark sweeps each parameter
independently on synthetic buildings so the scaling shape can be read off the
pytest-benchmark table:

* ``N_L`` sweep on grid buildings (16 → 144 rooms);
* ``N_a`` sweep (1 → 8 authorizations per location) at fixed ``N_L``;
* ``N_d`` comparison (corridor/line vs grid vs dense random graph) at fixed
  ``N_L`` and ``N_a``.
"""

import pytest

from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import corridor_building, grid_building, random_building

SUBJECT = "auditor"


def layered_authorizations(hierarchy, per_location: int) -> AuthorizationIndex:
    """Deterministic authorization set with *per_location* staggered windows each."""
    index = AuthorizationIndex()
    for offset, location in enumerate(sorted(hierarchy.primitive_names)):
        for layer in range(per_location):
            start = (offset * 3 + layer * 40) % 400
            index.add(
                LocationTemporalAuthorization(
                    (SUBJECT, location),
                    (start, start + 60),
                    (start + 10, start + 120),
                    2,
                )
            )
    return index


@pytest.mark.parametrize("side", [4, 6, 8, 10, 12], ids=lambda s: f"NL={s * s}")
def test_scaling_with_location_count(benchmark, side):
    hierarchy = LocationHierarchy(grid_building("G", side, side))
    index = layered_authorizations(hierarchy, per_location=2)

    report = benchmark(find_inaccessible, hierarchy, SUBJECT, index)
    assert report.accessible | report.inaccessible == hierarchy.primitive_names


@pytest.mark.parametrize("per_location", [1, 2, 4, 8], ids=lambda n: f"Na={n}")
def test_scaling_with_authorizations_per_location(benchmark, per_location):
    hierarchy = LocationHierarchy(grid_building("G", 6, 6))
    index = layered_authorizations(hierarchy, per_location=per_location)

    report = benchmark(find_inaccessible, hierarchy, SUBJECT, index)
    assert report.accessible  # entry locations always get authorizations


def _topology(name: str) -> LocationHierarchy:
    if name == "corridor":
        return LocationHierarchy(corridor_building("B", 18))   # 36 rooms, degree <= 3
    if name == "grid":
        return LocationHierarchy(grid_building("B", 6, 6))     # 36 rooms, degree <= 4
    return LocationHierarchy(random_building("B", 36, extra_edges=72, seed=1))  # dense


@pytest.mark.parametrize("topology", ["corridor", "grid", "dense-random"], ids=str)
def test_scaling_with_degree(benchmark, topology):
    hierarchy = _topology(topology)
    index = layered_authorizations(hierarchy, per_location=2)

    report = benchmark(find_inaccessible, hierarchy, SUBJECT, index)
    assert report.accessible | report.inaccessible == hierarchy.primitive_names
