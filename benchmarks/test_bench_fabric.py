"""Partitioned serving fabric: decide_many throughput scales with partitions.

PR 6's fabric shards subjects across ``repro serve`` processes behind a
:class:`~repro.service.fabric.FabricRouter`.  Because each partition is a
separate OS process, a scatter-gathered ``decide_many`` escapes the single
server's one-core ceiling: the router splits each batch by subject owner
and the partitions evaluate their slices in parallel.

The benchmark spawns a 3-partition fabric and a single-server control (both
as real ``repro.cli serve`` subprocesses, caches off so every decision runs
the full pipeline) over the same subject-partitionable workload and asserts
the fabric sustains **≥2x** the single server's ``decide_many`` throughput.
The scaling assertion needs real parallel hardware — with fewer than 4 CPU
cores the three partition processes timeshare one core and the physical
speedup mechanism is absent, so the throughput test skips (the conformance
suite still proves fabric correctness everywhere).  A parity check that
runs on any machine asserts the routed decisions match the single server's
byte-for-byte.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time as _time
from pathlib import Path

import pytest

from repro.locations.multilevel import LocationHierarchy
from repro.locations.serialization import dumps as dumps_layout
from repro.core.serialization import dumps_authorizations
from repro.service import FabricRouter, PartitionMap, ServiceClient
from repro.service.protocol import request_to_dict
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects

SUBJECT_COUNT = 120
STREAM_SIZE = 9_000
DECIDE_CHUNK = 1_500
PARTITIONS = ("p0", "p1", "p2")
SPEEDUP_FLOOR = 2.0
BANNER = r"serving on [^:]+:(\d+) "


def _hierarchy():
    return LocationHierarchy(grid_building("B", 6, 6))


def _workload(hierarchy):
    subjects = generate_subjects(SUBJECT_COUNT)
    grants = []
    for seed in (29, 30, 31):
        grants.extend(
            AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
        )
    requests = AuthorizationWorkloadGenerator(hierarchy, seed=53).requests(
        subjects, STREAM_SIZE
    )
    return subjects, grants, [request_to_dict(request) for request in requests]


class _Fleet:
    """Spawned ``repro.cli serve`` processes with banner-parsed ports."""

    def __init__(self, tmp_path, layout: str, auths: str):
        self._tmp_path = tmp_path
        self._layout = layout
        self._auths = auths
        self._procs = []
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            (":" + env["PYTHONPATH"]) if env.get("PYTHONPATH") else ""
        )
        self._env = env

    def spawn(self, tag: str, *extra: str) -> int:
        out_path = self._tmp_path / f"serve-{tag}.out"
        handle = open(out_path, "w")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--layout", self._layout, "--auths", self._auths,
                "--port", "0", "--no-cache", *extra,
            ],
            stdout=handle,
            stderr=subprocess.STDOUT,
            env=self._env,
        )
        self._procs.append(process)
        deadline = _time.monotonic() + 30.0
        text = ""
        while _time.monotonic() < deadline:
            try:
                text = open(out_path).read()
            except OSError:
                text = ""
            match = re.search(BANNER, text)
            if match:
                return int(match.group(1))
            _time.sleep(0.1)
        raise AssertionError(f"no serve banner for {tag}: {text!r}")

    def stop(self) -> None:
        for process in self._procs:
            process.terminate()
        for process in self._procs:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


@pytest.fixture
def fleet(tmp_path):
    hierarchy = _hierarchy()
    subjects, grants, wire_stream = _workload(hierarchy)
    layout = tmp_path / "layout.json"
    auths = tmp_path / "auths.json"
    layout.write_text(dumps_layout(grid_building("B", 6, 6)), encoding="utf-8")
    auths.write_text(dumps_authorizations(grants), encoding="utf-8")
    running = _Fleet(tmp_path, str(layout), str(auths))
    try:
        yield running, wire_stream
    finally:
        running.stop()


def _timed_decides(call, wire_stream) -> float:
    started = _time.perf_counter()
    decided = 0
    for start in range(0, len(wire_stream), DECIDE_CHUNK):
        decisions = call(wire_stream[start : start + DECIDE_CHUNK])
        decided += len(decisions)
    elapsed = _time.perf_counter() - started
    assert decided == len(wire_stream)
    return elapsed


def test_fabric_decisions_match_the_single_server(fleet):
    """Routing changes where a decision is computed, never what it is."""
    running, wire_stream = fleet
    single_port = running.spawn("single")
    addresses = {
        name: f"127.0.0.1:{running.spawn(name, '--partition', name)}"
        for name in PARTITIONS[:2]
    }
    sample = wire_stream[:400]
    with ServiceClient("127.0.0.1", single_port) as client:
        expected = client.call("decide_many", requests=sample, trace=False)["decisions"]
    with FabricRouter(PartitionMap(addresses)) as router:
        routed = router.decide_many_raw(sample, trace=False)
    assert routed == expected


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the fabric's decide_many speedup is process parallelism; "
    "with <4 cores the partitions timeshare one core and the "
    "2x floor is physically unreachable",
)
def test_three_partition_fabric_doubles_decide_many_throughput(fleet, table_printer):
    running, wire_stream = fleet

    single_port = running.spawn("single")
    with ServiceClient("127.0.0.1", single_port, timeout=120.0) as client:
        single_elapsed = _timed_decides(
            lambda chunk: client.call("decide_many", requests=chunk, trace=False)[
                "decisions"
            ],
            wire_stream,
        )

    addresses = {
        name: f"127.0.0.1:{running.spawn(name, '--partition', name)}"
        for name in PARTITIONS
    }
    with FabricRouter(PartitionMap(addresses), timeout=120.0) as router:
        fabric_elapsed = _timed_decides(
            lambda chunk: router.decide_many_raw(chunk, trace=False), wire_stream
        )

    single_rate = len(wire_stream) / single_elapsed
    fabric_rate = len(wire_stream) / fabric_elapsed
    speedup = fabric_rate / single_rate
    table_printer(
        "decide_many throughput: 3-partition fabric vs single server",
        ["topology", "decides", "elapsed (s)", "decides/s", "speedup"],
        [
            ("single server", len(wire_stream), f"{single_elapsed:.2f}",
             f"{single_rate:,.0f}", "1.00x"),
            ("fabric (3 partitions)", len(wire_stream), f"{fabric_elapsed:.2f}",
             f"{fabric_rate:,.0f}", f"{speedup:.2f}x"),
        ],
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"3-partition fabric reached only {speedup:.2f}x the single server's "
        f"decide_many throughput (floor {SPEEDUP_FLOOR}x)"
    )
