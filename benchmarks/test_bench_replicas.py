"""Replicated serving: cached decide speedup with cross-replica coherence.

PR 5 made the replicated topology safe: several ``LtamServer`` replicas over
one SQLite file, caches kept coherent by the invalidation bus.  This
benchmark proves the topology keeps the cache's performance *and* its
correctness when the invalidating traffic arrives on a **different
replica**:

* replica A is the writer: it ingests the movement traffic (and hosts the
  bus in-process);
* replica B serves a hot pool of decisions from its
  :class:`~repro.service.cache.DecisionCache`, which must sustain **≥3x**
  the decide throughput of an identical uncached replica B′ over the same
  shared file;
* between decide rounds, A performs invalidating observes; after the
  ``sync`` barrier, every decision B serves is compared field-by-field
  against an embedded oracle — **zero** divergences tolerated, and the bus
  must actually have evicted something on B (a cold cache proves nothing).
"""

import time as _time

import pytest

from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.service import DecisionCache, InvalidationBus, LtamServer, ServiceClient

SUBJECT_COUNT = 200
HISTORY_EVENTS = 20_000
POOL_SIZE = 1_200
HOT_DECIDES = 12_000
DECIDE_CHUNK = 2_000
CACHE_SPEEDUP_FLOOR = 3.0
PARITY_ROUNDS = 3
OBSERVES_PER_ROUND = 1_000


def _hierarchy():
    return LocationHierarchy(grid_building("B", 6, 6))


def _grants(hierarchy, subjects):
    grants = []
    for seed in (29, 30, 31):
        grants.extend(
            AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
        )
    return grants


def _seeded_oracle(hierarchy, subjects, grants, history):
    oracle = Ltam.builder().hierarchy(hierarchy).build()
    oracle.grant_all(grants)
    oracle.movement_db.record_many(history)
    return oracle


def _hot_stream(hierarchy):
    import random

    generator = AuthorizationWorkloadGenerator(hierarchy, seed=53)
    pool = generator.requests(generate_subjects(SUBJECT_COUNT), POOL_SIZE)
    rng = random.Random(7)
    return pool, [pool[rng.randrange(POOL_SIZE)] for _ in range(HOT_DECIDES)]


def _timed_decides(client, wire_stream):
    started = _time.perf_counter()
    decided = 0
    for start in range(0, len(wire_stream), DECIDE_CHUNK):
        result = client.call(
            "decide_many", requests=wire_stream[start : start + DECIDE_CHUNK], trace=False
        )
        decided += len(result["decisions"])
    elapsed = _time.perf_counter() - started
    assert decided == len(wire_stream)
    return elapsed


def _decision_key(decision):
    authorization = decision.authorization
    return (
        decision.granted,
        decision.reason,
        decision.entries_used,
        None
        if authorization is None
        else (
            authorization.subject,
            authorization.location,
            str(authorization.entry_duration),
            str(authorization.exit_duration),
            authorization.max_entries,
        ),
    )


def test_two_replica_cached_decide_speedup_with_zero_parity_violations(
    tmp_path, table_printer
):
    from repro.service.protocol import request_to_dict

    hierarchy = _hierarchy()
    subjects = generate_subjects(SUBJECT_COUNT)
    grants = _grants(hierarchy, subjects)
    history = AuthorizationWorkloadGenerator(hierarchy, seed=29).movement_events(
        subjects, HISTORY_EVENTS
    )
    pool, stream = _hot_stream(hierarchy)
    wire_stream = [request_to_dict(request) for request in stream]
    future = AuthorizationWorkloadGenerator(hierarchy, seed=61).movement_events(
        subjects, PARITY_ROUNDS * OBSERVES_PER_ROUND, start_time=100
    )

    # The shared file: the writer replica seeds it before serving starts.
    path = str(tmp_path / "replicated.db")
    engine_a = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    engine_a.grant_all(grants)
    engine_a.movement_db.record_many(history)
    oracle = _seeded_oracle(hierarchy, subjects, grants, history)

    bus = InvalidationBus()
    server_a = LtamServer(engine_a, bus=bus, replica_id="bench-a")
    server_a.start()

    def reader_replica(cache, replica_id):
        engine = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
        return LtamServer(engine, cache=cache, bus=bus.address, replica_id=replica_id)

    cached_replica = reader_replica(DecisionCache(maxsize=1 << 17), "bench-cached")
    uncached_replica = reader_replica(None, "bench-uncached")
    cached_replica.start()
    uncached_replica.start()

    try:
        with ServiceClient(*server_a.address, timeout=120.0) as client_a, ServiceClient(
            *cached_replica.address, timeout=120.0
        ) as cached_client, ServiceClient(
            *uncached_replica.address, timeout=120.0
        ) as uncached_client:
            # Warm both replicas (connections + the cache's priming pass).
            cached_client.decide_many(pool, trace=False)
            uncached_client.decide_many(pool[:200], trace=False)

            uncached_time = cached_time = float("inf")
            for _ in range(2):  # best-of-2: amortize scheduler noise
                uncached_time = min(uncached_time, _timed_decides(uncached_client, wire_stream))
                cached_time = min(cached_time, _timed_decides(cached_client, wire_stream))
            speedup = uncached_time / cached_time

            # Parity under cross-replica invalidation: the *writer* observes,
            # the cached reader must converge after the sync barrier.
            violations = 0
            for round_index in range(PARITY_ROUNDS):
                chunk = future[
                    round_index * OBSERVES_PER_ROUND : (round_index + 1) * OBSERVES_PER_ROUND
                ]
                client_a.observe_batch(chunk, mode="record", wait=True)
                oracle.movement_db.record_many(chunk)
                cached_client.sync()
                remote = cached_client.decide_many(pool)
                local = oracle.decide_many(pool)
                violations += sum(
                    _decision_key(r) != _decision_key(l) for r, l in zip(remote, local)
                )
            cache_stats = cached_replica.cache.stats
            coherence_stats = cached_replica.coherence.stats
    finally:
        uncached_replica.stop()
        cached_replica.stop()
        server_a.stop()

    table_printer(
        f"2-replica decide throughput, {HOT_DECIDES} hot decides over a "
        f"{POOL_SIZE}-request pool (writer on another replica)",
        ["path", "seconds", "decides/s"],
        [
            ["uncached replica", f"{uncached_time:.3f}", f"{HOT_DECIDES / uncached_time:,.0f}"],
            ["cached replica", f"{cached_time:.3f}", f"{HOT_DECIDES / cached_time:,.0f}"],
            ["speedup", f"{speedup:.2f}x", f"(floor {CACHE_SPEEDUP_FLOOR}x)"],
            [
                "parity",
                f"{violations} violation(s)",
                f"{PARITY_ROUNDS} cross-replica invalidating rounds, "
                f"{cache_stats['invalidated']} evictions, "
                f"{coherence_stats['picked_up']} picked-up records",
            ],
        ],
    )

    assert violations == 0, (
        f"{violations} cached decisions diverged from the embedded oracle after "
        "cross-replica invalidating observes"
    )
    assert cache_stats["invalidated"] > 0, "the writer's observes never evicted anything on the reader"
    assert coherence_stats["picked_up"] > 0, "the reader never picked up the writer's rows"
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached replica decide throughput only {speedup:.2f}x the uncached replica "
        f"(floor {CACHE_SPEEDUP_FLOOR}x): {cached_time:.3f}s vs {uncached_time:.3f}s"
    )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    pytest.main([__file__, "-q", "-s"])
