"""E1 — Figures 1 & 2: building the NTU multilevel location graph.

The paper's Figure 2 shows the NTU campus as a multilevel location graph with
the SCE and EEE schools modelled in detail.  The benchmark times the
construction and flattening of that graph and asserts its structure (school
membership, entry locations, the SCE–EEE bridge needed by the complex-route
example).
"""

from repro.locations.layouts import ntu_campus, ntu_campus_hierarchy
from repro.locations.multilevel import LocationHierarchy
from repro.locations.serialization import dumps, loads


def test_build_ntu_multilevel_graph(benchmark, table_printer):
    hierarchy = benchmark(ntu_campus_hierarchy)

    assert hierarchy.root.name == "NTU"
    assert hierarchy.composite_names == {"NTU", "SCE", "EEE", "CEE", "SME", "NBS"}
    assert len(hierarchy) == 20
    assert hierarchy.entry_locations_of("SCE") == {"SCE.GO", "SCE.SectionC"}
    assert hierarchy.entry_locations_of("EEE") == {"EEE.GO", "EEE.SectionC"}
    assert hierarchy.are_adjacent("SCE.GO", "EEE.GO")
    assert hierarchy.connected()

    table_printer(
        "Figure 2 — NTU multilevel location graph (reconstructed)",
        ("school", "#locations", "entry locations"),
        [
            (name, len(hierarchy.members_of(name)), ", ".join(sorted(hierarchy.entry_locations_of(name))))
            for name in sorted(hierarchy.composite_names - {"NTU"})
        ],
    )


def test_flatten_hierarchy_from_prebuilt_graph(benchmark):
    campus = ntu_campus()
    hierarchy = benchmark(LocationHierarchy, campus)
    assert len(hierarchy) == 20


def test_serialization_roundtrip_of_the_campus(benchmark):
    campus = ntu_campus()
    document = dumps(campus)

    restored = benchmark(loads, document)
    assert LocationHierarchy(restored).primitive_names == LocationHierarchy(campus).primitive_names
