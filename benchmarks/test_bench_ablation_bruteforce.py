"""E9 — ablation: Algorithm 1 vs brute-force route enumeration.

DESIGN.md calls out the fixpoint algorithm as the design choice to ablate:
the alternative implied by Definition 8 is to enumerate routes from every
entry location and check each with the Section 6 conditions.  The benchmark
runs both on the same inputs, asserts they agree (the oracle is sound), and
exposes the cost gap as the graphs grow — the reason the paper's algorithm
exists.
"""

import pytest

from repro.baselines.brute_force import brute_force_inaccessible
from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex
from repro.locations.layouts import figure4_hierarchy
from repro.locations.multilevel import LocationHierarchy
from repro.paper import fixtures as paper
from repro.simulation.buildings import random_building

SUBJECT = "Alice"


def workload(hierarchy) -> AuthorizationIndex:
    index = AuthorizationIndex()
    for offset, location in enumerate(sorted(hierarchy.primitive_names)):
        start = (offset * 17) % 120
        index.add(
            LocationTemporalAuthorization((SUBJECT, location), (start, start + 80), (start + 5, start + 160), 2)
        )
    return index


def test_algorithm1_on_figure4(benchmark):
    report = benchmark(find_inaccessible, figure4_hierarchy(), SUBJECT, paper.table1_authorizations())
    assert report.inaccessible == {"C"}


def test_brute_force_on_figure4(benchmark):
    result = benchmark(
        brute_force_inaccessible, figure4_hierarchy(), SUBJECT, paper.table1_authorizations()
    )
    assert result == {"C"}


@pytest.mark.parametrize("size", [6, 9, 12], ids=lambda n: f"NL={n}")
def test_algorithm1_on_random_graphs(benchmark, size):
    hierarchy = LocationHierarchy(random_building("R", size, extra_edges=size // 2, seed=size))
    index = workload(hierarchy)
    report = benchmark(find_inaccessible, hierarchy, SUBJECT, index)
    # Cross-check against the oracle outside the timed section.
    oracle = brute_force_inaccessible(hierarchy, SUBJECT, index)
    assert oracle >= report.inaccessible  # oracle (simple paths) may miss walk-only reachability
    assert report.inaccessible <= oracle


@pytest.mark.parametrize("size", [6, 9, 12], ids=lambda n: f"NL={n}")
def test_brute_force_on_random_graphs(benchmark, size):
    hierarchy = LocationHierarchy(random_building("R", size, extra_edges=size // 2, seed=size))
    index = workload(hierarchy)
    result = benchmark(brute_force_inaccessible, hierarchy, SUBJECT, index)
    assert result <= hierarchy.primitive_names
