"""E8 — ablation: continuous monitoring (LTAM) vs request-time-only baselines.

Section 1 claims that, unlike card-reader systems, LTAM's continuous
monitoring catches tailgating and overstays, and that its entry budgets and
exit windows are more expressive than purely temporal (TAM-style)
authorizations.  The benchmark feeds an identical simulated trace — with
injected violations and known ground truth — to LTAM and to the card-reader
baseline, times both, and reports detection recall; a second benchmark
quantifies TAM's over-granting on the same request stream.
"""

import pytest

from repro.analysis.reports import detection_stats
from repro.baselines.card_reader import CardReaderSystem
from repro.baselines.tam import TemporalOnlySystem
from repro.engine.access_control import AccessControlEngine
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.storage.movement_db import MovementKind

SEED = 99


@pytest.fixture(scope="module")
def scenario():
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=9, seed=SEED)
    subjects = generate_subjects(25)
    generator = AuthorizationWorkloadGenerator(
        hierarchy,
        config=WorkloadConfig(horizon=1_500, coverage=0.7, max_entries=2, wide_open_entries=True),
        seed=SEED,
    )
    authorizations = generator.authorizations(subjects)
    trace = MovementSimulator(hierarchy, authorizations, seed=SEED).population_trace(
        subjects, steps=7, p_tailgate=0.3, p_overstay=0.25
    )
    requests = generator.requests(subjects, 400)
    return hierarchy, authorizations, trace, requests


def drive(system_factory, hierarchy, authorizations, trace):
    system = system_factory(hierarchy, authorizations)
    last_time = 0
    for record in trace:
        last_time = max(last_time, record.time)
        if record.kind is MovementKind.ENTER:
            system.observe_entry(record.time, record.subject, record.location)
        else:
            system.observe_exit(record.time, record.subject, record.location)
    system.check_overstays(last_time + 10_000)
    return system


def make_ltam(hierarchy, authorizations):
    engine = AccessControlEngine(hierarchy)
    engine.grant_all(authorizations)
    # expose the monitor interface used by `drive`
    engine.check_overstays = engine.monitor.check_overstays  # type: ignore[attr-defined]
    return engine


def make_card_reader(hierarchy, authorizations):
    reader = CardReaderSystem(hierarchy)
    reader.authorization_db.add_all(authorizations)
    return reader


def test_ltam_monitoring_detects_injected_violations(benchmark, scenario, table_printer):
    hierarchy, authorizations, trace, _ = scenario
    engine = benchmark(drive, make_ltam, hierarchy, authorizations, trace)
    stats = detection_stats(engine.alerts.alerts, trace.truth)
    assert trace.truth.violation_count > 0
    assert stats.unauthorized_recall == 1.0
    assert stats.overall_recall >= 0.8
    table_printer(
        "E8 — LTAM detection vs injected ground truth",
        ("metric", "value"),
        [
            ("injected unauthorized entries", stats.injected_unauthorized),
            ("detected unauthorized entries", stats.detected_unauthorized),
            ("injected overstays", stats.injected_overstays),
            ("detected overstays", stats.detected_overstays),
            ("overall recall", f"{stats.overall_recall:.2f}"),
        ],
    )


def test_card_reader_baseline_detects_nothing(benchmark, scenario, table_printer):
    hierarchy, authorizations, trace, _ = scenario
    reader = benchmark(drive, make_card_reader, hierarchy, authorizations, trace)
    stats = detection_stats(reader.detected_violations(), trace.truth)
    assert stats.overall_recall == 0.0
    table_printer(
        "E8 — card-reader baseline on the same trace",
        ("metric", "value"),
        [("overall recall", f"{stats.overall_recall:.2f}")],
    )


def test_tam_baseline_over_grants(benchmark, scenario, table_printer):
    """TAM has no entry budgets or exit windows: it grants a superset of LTAM."""
    hierarchy, authorizations, trace, requests = scenario
    ltam = make_ltam(hierarchy, authorizations)
    # Consume budgets by replaying the trace first (batched: one commit).
    ltam.movement_db.record_many(
        record for record in trace if record.kind is MovementKind.ENTER
    )
    tam = TemporalOnlySystem.from_ltam(authorizations)

    def evaluate():
        ltam_grants = tam_grants = over_grants = 0
        for request in requests:
            ltam_decision = ltam.check_request(request)
            tam_decision = tam.check(request.time, request.subject, request.location)
            ltam_grants += ltam_decision.granted
            tam_grants += tam_decision.granted
            over_grants += (tam_decision.granted and not ltam_decision.granted)
        return ltam_grants, tam_grants, over_grants

    ltam_grants, tam_grants, over_grants = benchmark(evaluate)
    assert tam_grants >= ltam_grants
    assert over_grants > 0  # entry budgets exhausted by the trace are invisible to TAM
    table_printer(
        "E8 — TAM (temporal-only) vs LTAM decisions on the same requests",
        ("metric", "value"),
        [
            ("requests", len(requests)),
            ("LTAM grants", ltam_grants),
            ("TAM grants", tam_grants),
            ("TAM over-grants (granted where LTAM denies)", over_grants),
        ],
    )
