"""E3 — Section 4: rule derivation (Examples 1, 2 and 3).

The benchmark times the derivation of the paper's three example rules against
the base authorization ``a1`` and asserts that the derived authorizations are
exactly the ones the paper lists (``a2``, ``a3``) plus the route grants of
Example 3.
"""

import pytest

from repro.core.derivation import DerivationEngine
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


def make_engine(campus):
    engine = DerivationEngine(paper.paper_directory(), campus)
    a1 = paper.example_base_authorization_a1()
    for rule_fn in (paper.example_rule_r1, paper.example_rule_r2, paper.example_rule_r3):
        engine.add_rule(rule_fn(a1))
    return engine, a1


def test_derive_examples_1_2_3(benchmark, campus, table_printer):
    engine, a1 = make_engine(campus)

    result = benchmark(engine.derive, [a1], now=10)

    assert paper.expected_derived_a2() in result.derived
    assert paper.expected_derived_a3() in result.derived
    r3_locations = {auth.location for auth in result.derived_by_rule("r3")}
    assert r3_locations == {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}

    table_printer(
        "Section 4 — derived authorizations",
        ("rule", "paper says", "reproduced"),
        [
            ("r1", "a2 = ([5,20],[15,50],(Bob,CAIS),2)", str(result.derived_by_rule("r1")[0])),
            ("r2", "a3 = ([10,20],[15,50],(Bob,CAIS),2)", str(result.derived_by_rule("r2")[0])),
            ("r3", "route locations from SCE.GO to CAIS", ", ".join(sorted(r3_locations))),
        ],
    )


def test_derivation_scales_with_rule_count(benchmark, campus):
    """Many supervisor-style rules over many base authorizations."""
    from repro.core.authorization import LocationTemporalAuthorization
    from repro.core.operators.subject import SupervisorOf
    from repro.core.rules import AuthorizationRule, OperatorTuple
    from repro.core.subjects import SubjectDirectory

    directory = SubjectDirectory()
    bases = []
    engine = DerivationEngine(directory, campus)
    locations = sorted(campus.primitive_names)
    for index in range(60):
        worker, boss = f"w{index}", f"boss{index % 7}"
        directory.set_supervisor(worker, boss)
        base = LocationTemporalAuthorization(
            (worker, locations[index % len(locations)]), (0, 100), (10, 200), 2, auth_id=f"b{index}"
        )
        bases.append(base)
        engine.add_rule(
            AuthorizationRule(0, base, OperatorTuple(op_subject=SupervisorOf()), rule_id=f"rule{index}")
        )

    result = benchmark(engine.derive, bases, now=5)
    assert result.count == 60
