"""E2 — Section 3.1: the simple and complex route examples.

The paper names one simple route inside SCE and one complex route from EEE's
dean office to SCE's dean office.  The benchmark times route search on the
flattened NTU hierarchy and asserts that the found routes are exactly the
paper's sequences.
"""

import pytest

from repro.locations.layouts import ntu_campus_hierarchy
from repro.locations.routes import RouteKind, classify_route, find_all_routes, find_route

SIMPLE_ROUTE = ("SCE.DeanOffice", "SCE.SectionA", "SCE.SectionB", "CAIS")
COMPLEX_ROUTE = (
    "EEE.DeanOffice", "EEE.SectionA", "EEE.GO", "SCE.GO", "SCE.SectionA", "SCE.DeanOffice",
)


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


def test_simple_route_search(benchmark, campus, table_printer):
    route = benchmark(find_route, campus, "SCE.DeanOffice", "CAIS")
    assert route.locations == SIMPLE_ROUTE
    assert classify_route(campus, route) == RouteKind.SIMPLE
    table_printer(
        "Section 3.1 — simple route",
        ("paper", "reproduced"),
        [("⟨SCE.DeanOffice, …, CAIS⟩", str(route))],
    )


def test_complex_route_search(benchmark, campus, table_printer):
    route = benchmark(find_route, campus, "EEE.DeanOffice", "SCE.DeanOffice")
    assert route.locations == COMPLEX_ROUTE
    assert classify_route(campus, route) == RouteKind.COMPLEX
    table_printer(
        "Section 3.1 — complex route",
        ("paper", "reproduced"),
        [("⟨EEE.DeanOffice, …, SCE.DeanOffice⟩", str(route))],
    )


def test_all_routes_enumeration(benchmark, campus):
    routes = benchmark(find_all_routes, campus, "SCE.GO", "CAIS", max_length=8)
    assert any(route.locations == ("SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS") for route in routes)
    assert all(route.destination == "CAIS" for route in routes)
