"""E-shard — parallel sharded ingest and checkpoint-bounded recovery.

PR 2 left one in-process projection fed one ``record()`` at a time over an
unboundedly growing log.  This benchmark proves the two scale properties
the sharded, checkpointed occupancy layer was built for:

* **Parallel ingest** — a ≥100k-event trace split into 4 tracker streams
  and ingested by 4 writer threads into a 4-shard
  :class:`~repro.storage.movement_db.ShardedInMemoryMovementDatabase`
  (partition once per batch, shard-local locks, hoisted batch fold) must
  run **≥2x** the throughput of the single-shard serial path (one
  ``record()`` per event, the pre-PR tracker interface) — measured ~2.5-3x
  locally.
* **Bounded recovery** — three SQLite databases with the *same* 110k-event
  total log but checkpoints covering different prefixes must recover
  (stale derived tables, the crash shape) in time that tracks **events
  since the checkpoint**, not total log length: replaying 10k costs
  measurably less than replaying 110k on an identically sized database.

Plus the safety net: sharded-vs-unsharded read parity on the same trace,
for the in-memory backend (parallel threads vs serial oracle) and the
SQLite backend (sharded projection vs plain).
"""

import sqlite3
import threading
import time as _time

import pytest

from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)
from repro.temporal.interval import TimeInterval

EVENT_COUNT = 120_000
SUBJECT_COUNT = 400
SHARDS = 4
TRACKERS = 4
SPEEDUP_FLOOR = 2.0

RECOVERY_BASE = 100_000
RECOVERY_TAIL = 10_000


@pytest.fixture(scope="module")
def trace():
    hierarchy = LocationHierarchy(grid_building("B", 6, 6))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=47)
    subjects = generate_subjects(SUBJECT_COUNT)
    events = generator.movement_events(subjects, EVENT_COUNT)
    streams = AuthorizationWorkloadGenerator(hierarchy, seed=47).movement_streams(
        subjects, EVENT_COUNT, trackers=TRACKERS
    )
    assert len(events) == EVENT_COUNT
    assert sum(len(stream) for stream in streams) == EVENT_COUNT
    return hierarchy, subjects, events, streams


def _ingest_serial(hierarchy, events):
    database = InMemoryMovementDatabase(hierarchy)
    started = _time.perf_counter()
    record = database.record
    for event in events:
        record(event)
    return _time.perf_counter() - started, database


def _ingest_parallel(hierarchy, streams):
    database = ShardedInMemoryMovementDatabase(hierarchy, shards=SHARDS)
    threads = [
        threading.Thread(target=database.record_many, args=(stream,)) for stream in streams
    ]
    started = _time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return _time.perf_counter() - started, database


def test_parallel_sharded_ingest_beats_serial_single_shard(trace, table_printer):
    hierarchy, _, events, streams = trace
    serial_time = parallel_time = float("inf")
    serial_db = parallel_db = None
    for _ in range(3):  # best-of-3 per path: amortize scheduler noise
        elapsed, serial_db = _ingest_serial(hierarchy, events)
        serial_time = min(serial_time, elapsed)
        elapsed, parallel_db = _ingest_parallel(hierarchy, streams)
        parallel_time = min(parallel_time, elapsed)

    speedup = serial_time / parallel_time
    table_printer(
        f"Ingest throughput, {EVENT_COUNT} events ({TRACKERS} tracker streams)",
        ["path", "seconds", "events/s"],
        [
            ["serial record(), 1 shard", f"{serial_time:.3f}", f"{EVENT_COUNT / serial_time:,.0f}"],
            [
                f"record_many, {SHARDS} shards x {TRACKERS} threads",
                f"{parallel_time:.3f}",
                f"{EVENT_COUNT / parallel_time:,.0f}",
            ],
            ["speedup", f"{speedup:.2f}x", f"(floor {SPEEDUP_FLOOR}x)"],
        ],
    )
    assert len(parallel_db) == EVENT_COUNT
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded parallel ingest only {speedup:.2f}x over the serial path "
        f"(floor {SPEEDUP_FLOOR}x): serial {serial_time:.3f}s vs parallel {parallel_time:.3f}s"
    )
    # Throughput without correctness is meaningless: same final state.
    assert parallel_db.subjects_inside() == serial_db.subjects_inside()
    assert (
        parallel_db.occupancy_service.entry_counts()
        == serial_db.occupancy_service.entry_counts()
    )


def test_sharded_vs_unsharded_read_parity(trace):
    hierarchy, subjects, events, streams = trace
    oracle = InMemoryMovementDatabase(hierarchy)
    oracle.record_many(events)
    _, sharded = _ingest_parallel(hierarchy, streams)

    assert sharded.subjects_inside() == oracle.subjects_inside()
    assert (
        sharded.occupancy_service.entry_counts() == oracle.occupancy_service.entry_counts()
    )
    locations = sorted({event.location for event in events})
    for location in locations:
        assert sharded.occupants(location) == oracle.occupants(location)
        assert sharded.occupancy(location) == oracle.occupancy(location)
    window = TimeInterval(1_000, 50_000)
    for subject in subjects[:100]:
        assert sharded.history(subject=subject) == oracle.history(subject=subject)
        for location in locations[:3]:
            assert sharded.entry_count(subject, location, window) == oracle.entry_count(
                subject, location, window
            )

    # SQLite: the sharded projection answers every read like the plain one.
    plain = SqliteMovementDatabase(":memory:", hierarchy)
    plain.record_many(events[:20_000])
    sharded_sql = SqliteMovementDatabase(":memory:", hierarchy, shards=SHARDS)
    sharded_sql.record_many(events[:20_000])
    assert sharded_sql.subjects_inside() == plain.subjects_inside()
    for subject in subjects[:50]:
        for location in locations[:3]:
            assert sharded_sql.entry_count(subject, location) == plain.entry_count(
                subject, location
            )
    plain.close()
    sharded_sql.close()


def _build_recovery_db(path, hierarchy, events, *, checkpoint_after):
    """A 110k-event SQLite log whose checkpoint covers *checkpoint_after* events.

    The first *checkpoint_after* events are checkpointed; the rest of the
    base lands normally; the tail is appended by a raw connection that
    maintains neither the derived tables nor the applied stamp — exactly
    the stale shape a crashed or legacy writer leaves behind.
    """
    database = SqliteMovementDatabase(path, hierarchy)
    base, tail = events[:RECOVERY_BASE], events[RECOVERY_BASE:]
    if checkpoint_after:
        database.record_many(base[:checkpoint_after])
        database.checkpoint()
        database.record_many(base[checkpoint_after:])
    else:
        database.record_many(base)
    database.close()
    raw = sqlite3.connect(path)
    raw.executemany(
        "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
        [(r.time, r.subject, r.location, r.kind.value) for r in tail],
    )
    raw.commit()
    raw.close()


def _measure_recovery(path, hierarchy, repeats=3):
    """Best-of-N stale-reopen time (re-staling the stamp between rounds)."""
    best = float("inf")
    for _ in range(repeats):
        raw = sqlite3.connect(path)
        raw.execute("UPDATE occ_meta SET value = 0 WHERE key = 'applied_seq'")
        raw.commit()
        raw.close()
        started = _time.perf_counter()
        database = SqliteMovementDatabase(path, hierarchy)
        best = min(best, _time.perf_counter() - started)
        database.close()
    return best


def test_recovery_cost_tracks_events_since_checkpoint(tmp_path, trace, table_printer):
    hierarchy, subjects, events, _ = trace
    events = events[: RECOVERY_BASE + RECOVERY_TAIL]
    total = len(events)

    scenarios = [
        ("checkpoint @ 100k (replay 10k)", RECOVERY_BASE, RECOVERY_TAIL),
        ("checkpoint @ 50k  (replay 60k)", 50_000, 60_000),
        ("no checkpoint     (replay 110k)", 0, total),
    ]
    timings = []
    for label, checkpoint_after, replay_span in scenarios:
        path = str(tmp_path / f"recovery-{checkpoint_after}.db")
        _build_recovery_db(path, hierarchy, events, checkpoint_after=checkpoint_after)
        elapsed = _measure_recovery(path, hierarchy)
        timings.append((label, checkpoint_after, replay_span, elapsed))

    table_printer(
        f"Stale reopen (crash recovery), identical {total}-event logs",
        ["scenario", "events since checkpoint", "seconds"],
        [[label, str(replay), f"{elapsed:.4f}"] for label, _, replay, elapsed in timings],
    )

    near, mid, none = (elapsed for _, _, _, elapsed in timings)
    # Cost must track the replay span (10k < 60k < 110k)...
    assert near < mid < none
    # ...and the headline claim: a near-tip checkpoint makes recovery on an
    # identically sized log at least 2x cheaper than the full replay.
    assert near < none / 2, (
        f"recovery after a 100k checkpoint took {near:.4f}s vs {none:.4f}s without "
        "one — replay cost is not bounded by events-since-checkpoint"
    )

    # Recovered state must equal a full-replay oracle's.
    oracle = InMemoryMovementDatabase(hierarchy)
    oracle.record_many(events)
    for _, checkpoint_after, _, _ in timings:
        path = str(tmp_path / f"recovery-{checkpoint_after}.db")
        database = SqliteMovementDatabase(path, hierarchy)
        assert database.subjects_inside() == oracle.subjects_inside()
        for subject in subjects[:25]:
            location = oracle.current_location(subject)
            if location is not None:
                assert database.entry_count(subject, location) == oracle.entry_count(
                    subject, location
                )
        database.close()
