"""E-batch — the batch decision API vs the per-request loop.

The PDP's :meth:`~repro.api.pdp.DecisionPoint.decide_many` evaluates the
whole batch against a memoizing snapshot of the policy-information point, so
candidate lookups and entry counts are shared across every request touching
the same ``(subject, location)`` pair.  The benchmark poses 10k synthetic
requests (with a seeded movement history) both ways and asserts that

* the two paths produce identical decisions,
* every batched decision carries a per-stage trace naming the deciding
  stage, and
* on the SQLite backend, the batch path is at least 1.5x faster than the
  per-request loop (~2x measured: the snapshot amortizes the per-request
  candidate-lookup queries), while on the in-memory backend it must simply
  never lose.

Cost-model note: when this benchmark was written the entry-count reads
replayed movement history, so the snapshot's memoization amortized O(n)
scans and bought 2-3x on *any* backend.  The event-indexed
:class:`~repro.storage.occupancy.OccupancyService` made those reads O(1) —
the per-request loop itself got ~50x faster — so on the in-memory backend
the batch advantage is now bounded by pipeline overhead (~1.2x measured),
and the strong floor moved to the backend where per-request lookups still
cost something.  The storage-read speedup itself is asserted in
``test_bench_occupancy_reads.py``.
"""

import random
import time as _time

import pytest

from repro.api import Ltam
from repro.core.requests import AccessRequest
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import (
    AuthorizationWorkloadGenerator,
    WorkloadConfig,
    generate_subjects,
)

REQUEST_COUNT = 10_000
SQLITE_SPEEDUP_FLOOR = 1.5
MEMORY_SPEEDUP_FLOOR = 0.9  # batching must never meaningfully lose


def targeted_requests(engine, generator, subjects, count: int, *, seed: int):
    """Mostly-plausible traffic: subjects request locations they hold grants on.

    90% of requests are drawn from the stored authorizations (a random grant
    of a random subject, at a time inside its entry window), which is what
    production traffic looks like — people go where they are allowed, when
    they are allowed, and the expensive entry-budget counting actually runs.
    The remaining 10% are fully random for denial coverage.
    """
    rng = random.Random(seed)
    pool = engine.authorization_db.all()
    horizon = generator.config.horizon
    requests = []
    random_fill = generator.requests(subjects, count)
    for index in range(count):
        if rng.random() < 0.9 and pool:
            auth = rng.choice(pool)
            start = auth.entry_duration.start
            end = min(int(auth.entry_duration.end), horizon - 1) if not auth.entry_duration.is_unbounded else horizon - 1
            time = rng.randint(start, max(start, end))
            requests.append(AccessRequest(time, auth.subject, auth.location))
        else:
            requests.append(random_fill[index])
    return requests


def build_deployment(
    request_count: int = REQUEST_COUNT, *, movement_count: int = 1_000, backend: str = "memory"
):
    """An engine with synthetic authorizations, movement history, and requests."""
    hierarchy = LocationHierarchy(grid_building("B", 5, 5))
    builder = Ltam.builder().hierarchy(hierarchy)
    if backend != "memory":
        builder = builder.backend(backend)
    engine = builder.build()
    subjects = generate_subjects(40)
    generator = AuthorizationWorkloadGenerator(
        hierarchy,
        config=WorkloadConfig(
            horizon=500, coverage=0.8, window_length=300, max_entries=3, unlimited_fraction=0.3
        ),
        seed=7,
    )
    engine.grant_all(generator.authorizations(subjects))
    # Seed the movement database so entry counting scans real history.
    for request in targeted_requests(engine, generator, subjects, movement_count, seed=13):
        if engine.decide(request).granted:
            engine.observe_entry(request.time, request.subject, request.location)
            engine.observe_exit(request.time, request.subject, request.location)
    requests = targeted_requests(engine, generator, subjects, request_count, seed=29)
    return engine, requests


def _best_of(runs: int, fn):
    """Minimum wall-clock over *runs* executions — robust to machine noise."""
    best_seconds, result = float("inf"), None
    for _ in range(runs):
        started = _time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, _time.perf_counter() - started)
    return best_seconds, result


def _compare_batch_to_loop(engine, requests, table_printer, *, label, floor):
    loop_seconds, loop_decisions = _best_of(
        3, lambda: [engine.decide(request) for request in requests]
    )
    batch_seconds, batch_decisions = _best_of(3, lambda: engine.decide_many(requests))

    # Identical outcomes, in the original request order.
    assert len(batch_decisions) == len(loop_decisions)
    for single, batched in zip(loop_decisions, batch_decisions):
        assert batched.granted == single.granted
        assert batched.reason == single.reason
        assert batched.entries_used == single.entries_used
        if single.granted:
            assert batched.authorization.auth_id == single.authorization.auth_id

    # Explainability: every decision names the stage that decided it.
    assert all(decision.trace for decision in batch_decisions)
    assert all(decision.deciding_stage is not None for decision in batch_decisions)

    speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    granted = sum(1 for decision in batch_decisions if decision.granted)
    table_printer(
        f"Batch decisions vs per-request loop (10k requests, {label})",
        ("path", "seconds", "decisions/s"),
        (
            ("per-request loop", f"{loop_seconds:.3f}", f"{len(requests) / loop_seconds:,.0f}"),
            ("decide_many", f"{batch_seconds:.3f}", f"{len(requests) / batch_seconds:,.0f}"),
            ("speedup", f"{speedup:.2f}x", f"granted {granted}/{len(requests)}"),
        ),
    )
    assert speedup >= floor, (
        f"[{label}] decide_many was only {speedup:.2f}x faster than the per-request "
        f"loop (floor: {floor}x)"
    )


def test_batch_matches_loop_and_is_faster_sqlite(table_printer):
    engine, requests = build_deployment(backend="sqlite")
    _compare_batch_to_loop(
        engine, requests, table_printer, label="sqlite", floor=SQLITE_SPEEDUP_FLOOR
    )


def test_batch_matches_loop_in_memory(table_printer):
    engine, requests = build_deployment()
    _compare_batch_to_loop(
        engine, requests, table_printer, label="memory", floor=MEMORY_SPEEDUP_FLOOR
    )


@pytest.fixture(scope="module")
def small_deployment():
    return build_deployment(request_count=2_000, movement_count=300)


def test_bench_decide_many(benchmark, small_deployment):
    engine, requests = small_deployment
    decisions = benchmark(engine.decide_many, requests)
    assert len(decisions) == len(requests)


def test_bench_per_request_loop(benchmark, small_deployment):
    engine, requests = small_deployment
    decisions = benchmark(lambda: [engine.decide(request) for request in requests])
    assert len(decisions) == len(requests)
