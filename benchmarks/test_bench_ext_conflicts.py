"""E10 — extension: conflict detection and resolution.

Section 4 observes that rules can derive conflicting authorizations and
leaves resolution to future work; the reproduction implements it.  The
benchmark measures detection and resolution cost on authorization sets with a
controlled fraction of overlapping grants, and asserts that resolution leaves
no conflicts behind.
"""

import random

import pytest

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.conflicts import ResolutionStrategy, detect_conflicts, resolve_conflicts


def conflicting_workload(pairs: int, layers: int, seed: int = 0):
    """*pairs* (subject, location) pairs, each with *layers* overlapping windows."""
    rng = random.Random(seed)
    authorizations = []
    for index in range(pairs):
        subject = f"user-{index % 10}"
        location = f"room-{index}"
        base_start = rng.randrange(0, 200)
        for layer in range(layers):
            start = base_start + layer * 5  # overlapping by construction
            authorizations.append(
                LocationTemporalAuthorization(
                    (subject, location), (start, start + 30), (start + 5, start + 60), 1 + layer
                )
            )
    return authorizations


@pytest.mark.parametrize("layers", [2, 4], ids=lambda n: f"layers={n}")
def test_conflict_detection(benchmark, layers):
    authorizations = conflicting_workload(pairs=100, layers=layers)
    conflicts = benchmark(detect_conflicts, authorizations)
    # Every pair of overlapping layers within a (subject, location) group conflicts.
    assert len(conflicts) == 100 * (layers * (layers - 1) // 2)


@pytest.mark.parametrize(
    "strategy", [ResolutionStrategy.MERGE, ResolutionStrategy.KEEP_FIRST, ResolutionStrategy.PREFER_EXPLICIT],
    ids=lambda s: s.value,
)
def test_conflict_resolution(benchmark, strategy, table_printer):
    authorizations = conflicting_workload(pairs=60, layers=3)
    resolved, found = benchmark(resolve_conflicts, authorizations, strategy=strategy)
    assert detect_conflicts(resolved) == []
    if strategy is ResolutionStrategy.MERGE:
        # One merged authorization per (subject, location) pair.
        assert len(resolved) == 60
    table_printer(
        f"E10 — conflict resolution ({strategy.value})",
        ("metric", "value"),
        [
            ("input authorizations", len(authorizations)),
            ("conflicts encountered", len(found)),
            ("authorizations after resolution", len(resolved)),
        ],
    )
