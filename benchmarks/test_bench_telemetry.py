"""Telemetry overhead — the observability layer must not tax the hot path.

PR 9 added always-on metrics plus a per-request span tree (op dispatch,
cache outcome, pipeline stages) that records whenever slow-request
sampling is armed or the caller forwards a trace context.  The contract
in ``service/telemetry.py`` is *zero overhead when disabled* and *cheap
when enabled*: pre-resolved counters and histograms on the always-on
side, one thread-local read on the disabled trace path, and plain
object-append span recording on the enabled path.

This benchmark holds the enabled path to that contract over the real
wire: a server with slow-request sampling armed (every request records
its full span tree; the threshold is set high enough that nothing is
ever dumped) must sustain ``decide_many`` throughput within **10%** of
an identical server with tracing disabled.  Rounds alternate between the
two servers so machine noise hits both alike.
"""

import time as _time

from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.service import DecisionCache, LtamServer, ServiceClient

SUBJECT_COUNT = 150
POOL_SIZE = 800
DECIDES_PER_ROUND = 6_000
DECIDE_CHUNK = 1_000
ROUNDS = 3
OVERHEAD_CEILING = 0.10  # instrumented may cost at most 10% throughput

#: Armed (every request traces) but far beyond any real latency, so the
#: sampler never dumps — the measured cost is span recording itself, not
#: log I/O.
NEVER_DUMP_MS = 1e9


def _hierarchy():
    return LocationHierarchy(grid_building("B", 5, 5))


def _seeded_engine(hierarchy):
    subjects = generate_subjects(SUBJECT_COUNT)
    engine = Ltam.builder().hierarchy(hierarchy).build()
    for seed in (29, 30):
        engine.grant_all(
            AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
        )
    return engine


def _wire_stream(hierarchy):
    """A read-heavy hot pool, pre-converted to wire dicts."""
    import random

    generator = AuthorizationWorkloadGenerator(hierarchy, seed=53)
    pool = [
        {"time": request.time, "subject": request.subject, "location": request.location}
        for request in generator.requests(generate_subjects(SUBJECT_COUNT), POOL_SIZE)
    ]
    rng = random.Random(7)
    return [pool[rng.randrange(POOL_SIZE)] for _ in range(DECIDES_PER_ROUND)]


def _round_throughput(client, stream):
    started = _time.perf_counter()
    decided = 0
    for start in range(0, len(stream), DECIDE_CHUNK):
        chunk = stream[start : start + DECIDE_CHUNK]
        decisions = client.call("decide_many", requests=chunk)["decisions"]
        decided += len(decisions)
    elapsed = _time.perf_counter() - started
    assert decided == len(stream)
    return decided / elapsed


def test_instrumented_decide_many_within_10pct(table_printer, bench_json):
    hierarchy = _hierarchy()
    stream = _wire_stream(hierarchy)

    plain_server = LtamServer(_seeded_engine(hierarchy), cache=DecisionCache())
    traced_server = LtamServer(
        _seeded_engine(hierarchy),
        cache=DecisionCache(),
        slow_request_ms=NEVER_DUMP_MS,
    )
    plain_server.start()
    traced_server.start()
    try:
        with ServiceClient(*plain_server.address, wire="binary") as plain_client, \
                ServiceClient(*traced_server.address, wire="binary") as traced_client:
            # Warm both caches outside the timed rounds: the steady state
            # (hot pool mostly cached) is the shape the ceiling protects.
            _round_throughput(plain_client, stream)
            _round_throughput(traced_client, stream)
            plain_best = 0.0
            traced_best = 0.0
            for _ in range(ROUNDS):
                plain_best = max(plain_best, _round_throughput(plain_client, stream))
                traced_best = max(traced_best, _round_throughput(traced_client, stream))
    finally:
        plain_server.stop()
        traced_server.stop()

    overhead = 1.0 - traced_best / plain_best
    table_printer(
        "decide_many throughput: tracing armed vs off (best of "
        f"{ROUNDS} alternating rounds)",
        ["variant", "ops/s", "overhead"],
        [
            ("tracing off", f"{plain_best:,.0f}", "-"),
            ("tracing armed", f"{traced_best:,.0f}", f"{overhead:+.1%}"),
        ],
    )
    bench_json(
        uninstrumented_ops_per_s=round(plain_best, 1),
        instrumented_ops_per_s=round(traced_best, 1),
        overhead_fraction=round(overhead, 4),
        overhead_ceiling=OVERHEAD_CEILING,
    )
    assert overhead <= OVERHEAD_CEILING, (
        f"telemetry costs {overhead:.1%} of decide_many throughput "
        f"({traced_best:,.0f} vs {plain_best:,.0f} ops/s) — the contract is "
        f"≤{OVERHEAD_CEILING:.0%}"
    )
