"""E11 — extension: query engine throughput and authorization-lookup index.

The paper defers the query language to future work; the reproduction
implements it, so this benchmark measures (a) end-to-end query evaluation
over a populated deployment and (b) the authorization database's
time-indexed lookup against a naive full scan — the index ablation called out
in DESIGN.md.
"""

import pytest

from repro.engine.access_control import AccessControlEngine
from repro.engine.query.evaluator import QueryEngine
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.storage.authorization_db import InMemoryAuthorizationDatabase

SEED = 5


@pytest.fixture(scope="module")
def deployment():
    hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=9, seed=SEED)
    subjects = generate_subjects(30)
    generator = AuthorizationWorkloadGenerator(
        hierarchy, config=WorkloadConfig(horizon=1_000, coverage=0.8), seed=SEED
    )
    authorizations = generator.authorizations(subjects)
    engine = AccessControlEngine(hierarchy)
    engine.grant_all(authorizations)
    trace = MovementSimulator(hierarchy, authorizations, seed=SEED).population_trace(
        subjects, steps=5, p_tailgate=0.1
    )
    # Batch observation path: the whole simulated trace lands in one
    # movement-database transaction.
    engine.observe_many(trace)
    return engine, subjects, authorizations


QUERIES = [
    "WHERE IS {subject}",
    "WHO IS IN {location}",
    "AUTHORIZATIONS FOR {subject}",
    "CAN {subject} ENTER {location} AT 200",
    "ENTRIES OF {subject} INTO {location}",
    "VIOLATIONS BETWEEN 0 AND 500",
]


def test_query_mix_throughput(benchmark, deployment, table_printer):
    engine, subjects, _ = deployment
    queries = QueryEngine(engine)
    location = sorted(engine.hierarchy.primitive_names)[0]
    texts = [
        template.format(subject=subjects[index % len(subjects)], location=location)
        for index, template in enumerate(QUERIES * 20)
    ]

    def run_all():
        return [queries.evaluate(text) for text in texts]

    results = benchmark(run_all)
    assert len(results) == len(texts)
    table_printer(
        "E11 — query mix",
        ("queries evaluated", "distinct forms"),
        [(len(texts), len(QUERIES))],
    )


def test_reasoning_query_inaccessible(benchmark, deployment):
    engine, subjects, _ = deployment
    queries = QueryEngine(engine)
    result = benchmark(queries.evaluate, f"INACCESSIBLE FOR {subjects[0]}")
    assert result.kind == "inaccessible"


def test_indexed_lookup_vs_full_scan(benchmark, deployment, table_printer):
    """Ablation: the interval-indexed ``enterable_at`` vs scanning every record."""
    _, subjects, authorizations = deployment
    db = InMemoryAuthorizationDatabase(authorizations)
    probes = [(time, subjects[time % len(subjects)]) for time in range(0, 1_000, 7)]

    def indexed():
        return sum(len(db.enterable_at(time, subject=subject)) for time, subject in probes)

    def full_scan():
        total = 0
        for time, subject in probes:
            total += sum(
                1
                for auth in db.all()
                if auth.subject == subject and auth.permits_entry_at(time)
            )
        return total

    indexed_total = benchmark(indexed)
    assert indexed_total == full_scan()


def test_full_scan_baseline(benchmark, deployment):
    """The unindexed counterpart of test_indexed_lookup_vs_full_scan."""
    _, subjects, authorizations = deployment
    db = InMemoryAuthorizationDatabase(authorizations)
    probes = [(time, subjects[time % len(subjects)]) for time in range(0, 1_000, 7)]

    def full_scan():
        total = 0
        for time, subject in probes:
            total += sum(
                1
                for auth in db.all()
                if auth.subject == subject and auth.permits_entry_at(time)
            )
        return total

    assert benchmark(full_scan) >= 0
