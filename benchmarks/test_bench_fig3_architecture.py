"""E5 — Figure 3: the end-to-end enforcement architecture.

Figure 3 wires users, the three databases, the access-control engine and the
query engine together.  The benchmark drives the whole pipeline — tracking
observations for a population of subjects flowing through the movement
monitor into the databases, followed by administrator queries — on a
synthetic campus, once with the in-memory backends and once with SQLite.
"""

import pytest

from repro.engine.access_control import AccessControlEngine
from repro.engine.query.evaluator import QueryEngine
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.storage.authorization_db import SqliteAuthorizationDatabase
from repro.storage.movement_db import MovementKind, SqliteMovementDatabase
from repro.storage.profile_db import SqliteUserProfileDatabase

SEED = 42
SUBJECTS = 50


@pytest.fixture(scope="module")
def scenario():
    hierarchy = campus_hierarchy("Campus", 4, rooms_per_building=9, seed=SEED)
    subjects = generate_subjects(SUBJECTS)
    generator = AuthorizationWorkloadGenerator(
        hierarchy,
        config=WorkloadConfig(horizon=2_000, coverage=0.7, wide_open_entries=True),
        seed=SEED,
    )
    authorizations = generator.authorizations(subjects)
    trace = MovementSimulator(hierarchy, authorizations, seed=SEED).population_trace(
        subjects, steps=6, p_tailgate=0.1, p_overstay=0.1
    )
    return hierarchy, subjects, authorizations, trace


def run_pipeline(hierarchy, subjects, authorizations, trace, *, sqlite=False):
    if sqlite:
        engine = AccessControlEngine(
            hierarchy,
            authorization_db=SqliteAuthorizationDatabase(),
            movement_db=SqliteMovementDatabase(":memory:", hierarchy),
            profile_db=SqliteUserProfileDatabase(),
        )
    else:
        engine = AccessControlEngine(hierarchy)
    engine.grant_all(authorizations)
    last_time = 0
    for record in trace:
        last_time = max(last_time, record.time)
        if record.kind is MovementKind.ENTER:
            engine.observe_entry(record.time, record.subject, record.location)
        else:
            engine.observe_exit(record.time, record.subject, record.location)
    engine.monitor.check_overstays(last_time + 1_000)

    queries = QueryEngine(engine)
    answers = [
        queries.evaluate(f"WHERE IS {subjects[0]}"),
        queries.evaluate("VIOLATIONS"),
        queries.evaluate(f"AUTHORIZATIONS FOR {subjects[1]}"),
        queries.evaluate(f"ACCESSIBLE FOR {subjects[2]}"),
    ]
    return engine, answers


def test_architecture_pipeline_in_memory(benchmark, scenario, table_printer):
    hierarchy, subjects, authorizations, trace = scenario
    engine, answers = benchmark(run_pipeline, hierarchy, subjects, authorizations, trace)

    assert len(engine.authorization_db) == len(authorizations)
    assert len(engine.movement_db) == len(trace)
    assert len(answers[2]) > 0
    table_printer(
        "Figure 3 — architecture pipeline (in-memory backends)",
        ("component", "volume"),
        [
            ("authorization database", f"{len(engine.authorization_db)} authorizations"),
            ("movement database", f"{len(engine.movement_db)} observations"),
            ("alert sink", f"{len(engine.alerts)} alerts"),
            ("audit log", f"{len(engine.audit)} entries"),
        ],
    )


def test_architecture_pipeline_sqlite(benchmark, scenario):
    hierarchy, subjects, authorizations, trace = scenario
    engine, _ = benchmark(run_pipeline, hierarchy, subjects, authorizations, trace, sqlite=True)
    assert len(engine.authorization_db) == len(authorizations)
    assert len(engine.movement_db) == len(trace)
