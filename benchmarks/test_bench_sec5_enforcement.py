"""E4 — Section 5: the access-request worked example.

The paper walks through five events (four requests, one exit) against
authorizations A1 and A2 and states the expected outcome of each.  The
benchmark times a full replay of the timeline through the access-control
engine and asserts every decision, then times raw request throughput on a
larger synthetic request stream.
"""

import pytest

from repro.engine.access_control import AccessControlEngine
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


def replay_timeline(campus):
    engine = AccessControlEngine(campus)
    engine.grant_all(paper.section5_authorizations())
    outcomes = []
    for step in paper.section5_timeline():
        if step.action == "request":
            decision = engine.request_access(step.time, step.subject, step.location)
            outcomes.append(decision.granted)
            if decision.granted:
                engine.observe_entry(step.time, step.subject, step.location)
        else:
            engine.observe_exit(step.time, step.subject, step.location)
    return outcomes


def test_section5_timeline(benchmark, campus, table_printer):
    outcomes = benchmark(replay_timeline, campus)
    expected = [step.expected_granted for step in paper.section5_timeline() if step.action == "request"]
    assert outcomes == expected

    rows = []
    index = 0
    for step in paper.section5_timeline():
        if step.action == "request":
            rows.append(
                (f"t={step.time}", f"({step.subject}, {step.location})", step.note,
                 "granted" if outcomes[index] else "denied")
            )
            index += 1
        else:
            rows.append((f"t={step.time}", f"{step.subject} leaves {step.location}", step.note, "—"))
    table_printer("Section 5 — access request timeline", ("time", "event", "paper says", "reproduced"), rows)


def test_request_throughput_on_synthetic_workload(benchmark, campus):
    subjects = generate_subjects(30)
    generator = AuthorizationWorkloadGenerator(
        campus, config=WorkloadConfig(horizon=1_000, coverage=0.8), seed=17
    )
    engine = AccessControlEngine(campus)
    engine.grant_all(generator.authorizations(subjects))
    requests = generator.requests(subjects, 500)

    def evaluate_all():
        granted = 0
        for request in requests:
            if engine.check_request(request).granted:
                granted += 1
        return granted

    granted = benchmark(evaluate_all)
    assert 0 < granted <= len(requests)
