"""E6 — Figure 4, Table 1 and Table 2: the FindInaccessible worked example.

The paper traces Algorithm 1 on a four-location graph with the Table 1
authorization set and concludes that only location C is inaccessible, giving
the final overall grant/departure times per location (Table 2's last row).
The benchmark times the algorithm on that exact input, asserts the final
values, and prints the reconstructed trace next to the paper's.
"""

from repro.core.accessibility import find_inaccessible
from repro.locations.layouts import figure4_hierarchy
from repro.paper import fixtures as paper


def test_figure4_find_inaccessible(benchmark, table_printer):
    hierarchy = figure4_hierarchy()
    authorizations = paper.table1_authorizations()

    report = benchmark(find_inaccessible, hierarchy, "Alice", authorizations)

    assert report.inaccessible == paper.figure4_expected_inaccessible() == {"C"}
    expected = paper.table2_expected_times()
    for location, (grant, departure) in expected.items():
        assert report.grant_time(location) == grant
        assert report.departure_time(location) == departure

    table_printer(
        "Table 1 — authorizations (paper, reproduced verbatim)",
        ("location", "authorization"),
        [(auth.location, str(auth)) for auth in authorizations],
    )
    table_printer(
        "Table 2 (final row) — overall grant/departure times",
        ("location", "paper T_g", "paper T_d", "reproduced T_g", "reproduced T_d"),
        [
            (
                location,
                str(expected[location][0]),
                str(expected[location][1]),
                str(report.grant_time(location)),
                str(report.departure_time(location)),
            )
            for location in sorted(expected)
        ],
    )


def test_figure4_trace_generation(benchmark, table_printer):
    hierarchy = figure4_hierarchy()
    authorizations = paper.table1_authorizations()

    report = benchmark(
        find_inaccessible, hierarchy, "Alice", authorizations, trace=True
    )
    assert report.trace
    assert report.trace[0].updated == "A"
    table_printer(
        "Table 2 — update trace (reproduced; ordering of same-sweep updates may differ)",
        ("step", "updated", "state"),
        [(row.step, row.updated, row.describe().split(": ", 1)[1][:100]) for row in report.trace],
    )
