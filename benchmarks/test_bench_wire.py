"""E-wire — the serving fleet's decisions/sec/core budget.

PR 7 gave the service a negotiated compact binary wire format with interned
ids and trace elision by default, plus an end-to-end vectorized
``decide_many`` path (one frame in, one batched cache pass over
pre-serialized fragments, one frame out).  The motivating observation: the
NDJSON protocol round-tripped the full per-stage decision trace on every
response, so a gate fleet's steady-state cost was dominated by formatting
bytes nobody read.

This benchmark measures the whole matrix the budget is written in —
**cached and uncached × binary vs NDJSON × point vs ``decide_many``** — in
both decisions per wall-second and decisions per CPU-second ("per core":
client and server share this process, so ``time.process_time`` captures the
full cost of a decision crossing the wire).  The asserted floor: on the
uncached ``decide_many`` path, the binary protocol in its default elided
form must sustain **≥2x** the throughput of the legacy NDJSON protocol in
*its* default form (traced responses — exactly what every pre-PR-7 client
received).  Everything measured lands in ``BENCH_wire.json``.
"""

import time as _time

import pytest

from repro.locations.multilevel import LocationHierarchy
from repro.service import DecisionCache, LtamServer, ServiceClient
from repro.service.protocol import request_to_dict
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam

SUBJECT_COUNT = 200
HISTORY_EVENTS = 20_000
POOL_SIZE = 1_000
BATCH_DECIDES = 12_000
POINT_DECIDES = 1_500
DECIDE_CHUNK = 2_000
#: Uncached decide_many: binary (elided, the new default) vs NDJSON
#: (traced, the legacy default) must clear this throughput ratio.
BINARY_BATCH_FLOOR = 2.0


def _hierarchy():
    return LocationHierarchy(grid_building("B", 6, 6))


def _seeded_engine(hierarchy):
    subjects = generate_subjects(SUBJECT_COUNT)
    engine = Ltam.builder().hierarchy(hierarchy).build()
    # Overlapping grant sets: every decide scans several candidates (the
    # production shape), so evaluation is not trivially cheap relative to
    # serialization.
    for seed in (29, 30, 31):
        engine.grant_all(
            AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
        )
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=29)
    engine.movement_db.record_many(generator.movement_events(subjects, HISTORY_EVENTS))
    return engine


def _streams(hierarchy):
    """A hot pool sampled with repetition: batch and point request streams."""
    import random

    generator = AuthorizationWorkloadGenerator(hierarchy, seed=53)
    pool = generator.requests(generate_subjects(SUBJECT_COUNT), POOL_SIZE)
    rng = random.Random(7)
    batch = [request_to_dict(pool[rng.randrange(POOL_SIZE)]) for _ in range(BATCH_DECIDES)]
    point = [request_to_dict(pool[rng.randrange(POOL_SIZE)]) for _ in range(POINT_DECIDES)]
    return pool, batch, point


def _timed(run):
    """Best-of-2 wall time, with the CPU time of the best attempt."""
    best_wall = float("inf")
    best_cpu = float("inf")
    for _ in range(2):
        cpu_started = _time.process_time()
        wall_started = _time.perf_counter()
        run()
        wall = _time.perf_counter() - wall_started
        cpu = _time.process_time() - cpu_started
        if wall < best_wall:
            best_wall, best_cpu = wall, cpu
    return best_wall, best_cpu


def _batch_decides(client, stream, trace):
    def run():
        decided = 0
        for start in range(0, len(stream), DECIDE_CHUNK):
            result = client.call(
                "decide_many", requests=stream[start : start + DECIDE_CHUNK], trace=trace
            )
            decided += len(result["decisions"])
        assert decided == len(stream)

    return run


def _point_decides(client, stream, trace):
    def run():
        for request in stream:
            client.call("decide", request=request, trace=trace)

    return run


def test_binary_wire_decide_throughput_budget(table_printer, bench_json):
    hierarchy = _hierarchy()
    pool, batch_stream, point_stream = _streams(hierarchy)

    cells = {}
    rows = []
    for cache_label, cache in (("uncached", None), ("cached", DecisionCache(maxsize=1 << 17))):
        engine = _seeded_engine(hierarchy)
        with LtamServer(engine, cache=cache) as server:
            with ServiceClient(*server.address, wire="json") as json_client, ServiceClient(
                *server.address, wire="binary"
            ) as binary_client:
                assert json_client.wire == "json" and binary_client.wire == "binary"
                # Warm connections (and, on the cached server, prime the
                # cache so "cached" measures the hit path for both codecs).
                for client in (json_client, binary_client):
                    client.call(
                        "decide_many",
                        requests=[request_to_dict(request) for request in pool],
                        trace=False,
                    )
                # wire -> (client, trace flag): each codec's *default* shape —
                # NDJSON as the legacy protocol shipped it (traced), binary as
                # PR 7 ships it (elided; traces on request only).
                for wire, client, trace in (
                    ("json", json_client, True),
                    ("binary", binary_client, False),
                ):
                    for mode, stream, timed in (
                        ("batch", batch_stream, _batch_decides),
                        ("point", point_stream, _point_decides),
                    ):
                        wall, cpu = _timed(timed(client, stream, trace))
                        count = len(stream)
                        cells[f"{cache_label}_{mode}_{wire}"] = {
                            "decisions": count,
                            "seconds": wall,
                            "cpu_seconds": cpu,
                            "decisions_per_sec": count / wall,
                            "decisions_per_cpu_sec": count / cpu,
                            "trace": trace,
                        }
                        rows.append(
                            [
                                cache_label,
                                mode,
                                f"{wire} ({'traced' if trace else 'elided'})",
                                f"{count / wall:,.0f}",
                                f"{count / cpu:,.0f}",
                            ]
                        )

    ratios = {
        f"binary_over_json_{cache}_{mode}": (
            cells[f"{cache}_{mode}_binary"]["decisions_per_sec"]
            / cells[f"{cache}_{mode}_json"]["decisions_per_sec"]
        )
        for cache in ("uncached", "cached")
        for mode in ("batch", "point")
    }
    headline = ratios["binary_over_json_uncached_batch"]
    rows.append(
        ["uncached", "batch", "binary/json", f"{headline:.2f}x", f"(floor {BINARY_BATCH_FLOOR}x)"]
    )
    table_printer(
        f"Wire-format decide throughput, {BATCH_DECIDES} batch / {POINT_DECIDES} point decides",
        ["cache", "mode", "wire", "decides/s", "decides/cpu-s"],
        rows,
    )
    bench_json(cells=cells, ratios=ratios, floor=BINARY_BATCH_FLOOR)

    assert headline >= BINARY_BATCH_FLOOR, (
        f"binary decide_many only {headline:.2f}x the NDJSON protocol on the "
        f"uncached path (floor {BINARY_BATCH_FLOOR}x): "
        f"{cells['uncached_batch_binary']['decisions_per_sec']:,.0f}/s vs "
        f"{cells['uncached_batch_json']['decisions_per_sec']:,.0f}/s"
    )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    pytest.main([__file__, "-q", "-s"])
