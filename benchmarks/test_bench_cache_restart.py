"""E-cache-restart — the post-restart latency cliff, and its removal.

Before PR 8 every server restart threw the decision cache away: the first
window of traffic after a deploy/crash paid full-pipeline evaluation *and*
full response re-encoding for every request, exactly when a recovering
fleet can least afford it.  The durable tier
(:class:`~repro.service.cache_store.TieredDecisionCache`) persists admitted
entries — pre-serialized wire fragments included — to a SQLite sidecar, and
``LtamServer.start()`` re-admits whatever the movement store can prove
survived the downtime.

This benchmark stages the cliff explicitly: prime a server through the wire,
kill it, then serve the same first window of traffic from (a) a **cold**
restart with a fresh cache file and (b) a **warmed** restart reusing the
sidecar.  Both restarts rebuild the engine from the same SQLite movement
file; the only difference is the cache tier's starting state.  The asserted
floor: the warmed restart must sustain **≥3x** the cold restart's
first-window throughput.  Results land in ``BENCH_cache_restart.json``.
"""

import time as _time

import pytest

from repro.api import Ltam
from repro.locations.multilevel import LocationHierarchy
from repro.service import LtamServer, ServiceClient
from repro.service.cache_store import TieredDecisionCache
from repro.service.protocol import request_to_dict
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects

SUBJECT_COUNT = 120
HISTORY_EVENTS = 12_000
#: Distinct requests in the "first window" — the post-restart burst.
WINDOW = 1_200
DECIDE_CHUNK = 400
#: Warmed restart must beat cold restart by this factor on the first window.
WARM_FLOOR = 3.0


def _hierarchy():
    return LocationHierarchy(grid_building("B", 6, 6))


def _engine(hierarchy, db_path, seed_grants=False):
    """A sqlite-backed engine; grants persist in the file, so only the
    first boot seeds them — a restart re-reads them (re-granting would
    read as config drift and purge the warm tier, correctly)."""
    engine = Ltam.builder().hierarchy(hierarchy).backend("sqlite", db_path).build()
    if seed_grants:
        subjects = generate_subjects(SUBJECT_COUNT)
        # Overlapping grant sets so each uncached decide scans several
        # candidates — the production shape of the cliff.
        for seed in (29, 30, 31):
            engine.grant_all(
                AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
            )
    return engine


def _window_requests(hierarchy):
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=53)
    pool = generator.requests(generate_subjects(SUBJECT_COUNT), WINDOW)
    return [request_to_dict(request) for request in pool]


def _serve_window(client, window):
    """Decide the whole first window, returning (seconds, decisions)."""
    started = _time.perf_counter()
    decided = 0
    for start in range(0, len(window), DECIDE_CHUNK):
        result = client.call(
            "decide_many", requests=window[start : start + DECIDE_CHUNK], trace=False
        )
        decided += len(result["decisions"])
    elapsed = _time.perf_counter() - started
    assert decided == len(window)
    return elapsed, decided


def test_warm_restart_kills_the_first_window_cliff(tmp_path, table_printer, bench_json):
    hierarchy = _hierarchy()
    db_path = str(tmp_path / "deploy.db")
    warm_cache_path = str(tmp_path / "decisions.cache.db")
    cold_cache_path = str(tmp_path / "cold.cache.db")
    window = _window_requests(hierarchy)

    # ---- boot 1: prime the durable cache through the wire, then kill. ----
    engine = _engine(hierarchy, db_path, seed_grants=True)
    engine.movement_db.record_many(
        AuthorizationWorkloadGenerator(hierarchy, seed=29).movement_events(
            generate_subjects(SUBJECT_COUNT), HISTORY_EVENTS
        )
    )
    cache = TieredDecisionCache(warm_cache_path, maxsize=1 << 17)
    with LtamServer(engine, cache=cache) as server:
        with ServiceClient(*server.address, wire="binary") as client:
            _serve_window(client, window)
        primed = cache.stats["size"]
    cache.close()
    assert primed > 0, "priming stored nothing in the durable tier"

    runs = {}
    for label, cache_path in (("cold", cold_cache_path), ("warm", warm_cache_path)):
        engine = _engine(hierarchy, db_path)  # fresh process stand-in
        cache = TieredDecisionCache(cache_path, maxsize=1 << 17)
        with LtamServer(engine, cache=cache) as server:
            report = dict(server.warm_report or {})
            with ServiceClient(*server.address, wire="binary") as client:
                seconds, decided = _serve_window(client, window)
            hits = cache.stats["hits"]
        cache.close()
        runs[label] = {
            "seconds": seconds,
            "decisions": decided,
            "decisions_per_sec": decided / seconds,
            "readmitted": report.get("readmitted", 0),
            "dropped": report.get("dropped", 0),
            "first_window_hits": hits,
        }

    assert runs["cold"]["readmitted"] == 0
    assert runs["warm"]["readmitted"] > 0, "warm restart re-admitted nothing"
    assert runs["warm"]["first_window_hits"] >= runs["warm"]["readmitted"] // 2, (
        "re-admitted entries were not actually serving the first window"
    )

    ratio = runs["warm"]["decisions_per_sec"] / runs["cold"]["decisions_per_sec"]
    table_printer(
        "Post-restart first window: cold vs warmed cache",
        ["restart", "re-admitted", "window hits", "seconds", "decisions/sec"],
        [
            [
                label,
                runs[label]["readmitted"],
                runs[label]["first_window_hits"],
                f"{runs[label]['seconds']:.3f}",
                f"{runs[label]['decisions_per_sec']:,.0f}",
            ]
            for label in ("cold", "warm")
        ],
    )
    bench_json(
        window=WINDOW,
        primed_entries=primed,
        cold=runs["cold"],
        warm=runs["warm"],
        warm_over_cold=ratio,
        floor=WARM_FLOOR,
    )
    assert ratio >= WARM_FLOOR, (
        f"warmed restart only {ratio:.2f}x cold on the first window "
        f"(floor {WARM_FLOOR}x)"
    )
