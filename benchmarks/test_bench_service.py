"""E-service — the network boundary: cached decides and multi-process ingest.

PR 4 put the PDP/PEP behind a TCP service (``repro.service``).  This
benchmark proves the two properties the boundary was built for:

* **Cached decide throughput** — on a read-heavy workload (a hot pool of
  requests re-checked many times, the gate-fleet shape), a server with a
  :class:`~repro.service.cache.DecisionCache` must sustain **≥3x** the
  decide throughput of an identical uncached server — *while staying
  parity-correct*: after every round of interleaved invalidating observes,
  the cached server's decisions are compared field-by-field against an
  embedded oracle engine, and zero divergences are tolerated.

* **Remote multi-process ingest** — ≥2 client *processes* shipping a
  ≥50k-event trace through ``observe_batch`` (the log-shipping ``record``
  sink) into one SQLite-backed server must land the full trace within
  **2x** of what a single in-process ``record_many`` costs on the same
  backend — the ROADMAP's "multi-process ingest" item: tracker fleets pay
  the wire, not a new storage discipline.
"""

import multiprocessing
import time as _time

import pytest

from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.service import DecisionCache, LtamServer, ServiceClient
from repro.storage.movement_db import SqliteMovementDatabase

SUBJECT_COUNT = 200
HISTORY_EVENTS = 20_000
POOL_SIZE = 1_200
HOT_DECIDES = 16_000
DECIDE_CHUNK = 2_000
CACHE_SPEEDUP_FLOOR = 3.0

INGEST_EVENTS = 60_000
INGEST_SUBJECTS = 400
TRACKER_PROCESSES = 2
INGEST_CHUNK = 8_192
INGEST_OVERHEAD_CEILING = 2.0


def _hierarchy():
    return LocationHierarchy(grid_building("B", 6, 6))


def _seeded_engine(hierarchy, *, backend=None, path=None):
    subjects = generate_subjects(SUBJECT_COUNT)
    builder = Ltam.builder().hierarchy(hierarchy)
    if backend is not None:
        builder = builder.backend(backend, path)
    engine = builder.build()
    # Three overlapping grant sets per subject (direct + derived + renewal is
    # the production shape): every decide scans several candidates through
    # the window and budget stages instead of one.
    for seed in (29, 30, 31):
        engine.grant_all(
            AuthorizationWorkloadGenerator(hierarchy, seed=seed).authorizations(subjects)
        )
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=29)
    engine.movement_db.record_many(generator.movement_events(subjects, HISTORY_EVENTS))
    return engine


def _hot_stream(hierarchy):
    """A read-heavy request stream: a hot pool sampled with repetition."""
    import random

    generator = AuthorizationWorkloadGenerator(hierarchy, seed=53)
    pool = generator.requests(generate_subjects(SUBJECT_COUNT), POOL_SIZE)
    rng = random.Random(7)
    return pool, [pool[rng.randrange(POOL_SIZE)] for _ in range(HOT_DECIDES)]


def _timed_decides(client, wire_stream):
    """Time raw decide_many round trips (full wire, parsed envelopes).

    This measures *server* throughput: requests are shipped and responses
    parsed, but client-side ``Decision`` materialization — identical for
    both servers — is left out of the timed loop (the parity phase rebuilds
    and compares full decisions).
    """
    started = _time.perf_counter()
    decided = 0
    for start in range(0, len(wire_stream), DECIDE_CHUNK):
        result = client.call(
            "decide_many", requests=wire_stream[start : start + DECIDE_CHUNK], trace=False
        )
        decided += len(result["decisions"])
    elapsed = _time.perf_counter() - started
    assert decided == len(wire_stream)
    return elapsed


def _decision_key(decision):
    authorization = decision.authorization
    return (
        decision.granted,
        decision.reason,
        decision.entries_used,
        None
        if authorization is None
        else (
            authorization.subject,
            authorization.location,
            str(authorization.entry_duration),
            str(authorization.exit_duration),
            authorization.max_entries,
        ),
    )


def _ship_stream(host, port, stream, barrier):
    """One tracker process: connect, sync on the barrier, ship, flush."""
    with ServiceClient(host, port, timeout=120.0) as client:
        barrier.wait()
        for start in range(0, len(stream), INGEST_CHUNK):
            client.observe_batch(stream[start : start + INGEST_CHUNK], mode="record")
        client.flush(mode="record")


def test_remote_multiprocess_ingest_within_2x_of_in_process(tmp_path, table_printer):
    hierarchy = _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=83)
    subjects = generate_subjects(INGEST_SUBJECTS)
    events = generator.movement_events(subjects, INGEST_EVENTS)
    streams = AuthorizationWorkloadGenerator(hierarchy, seed=83).movement_streams(
        subjects, INGEST_EVENTS, trackers=TRACKER_PROCESSES
    )
    assert sum(len(stream) for stream in streams) == INGEST_EVENTS

    # In-process baseline: one record_many on the same (SQLite-file) backend.
    inproc_time = float("inf")
    baseline = None
    for attempt in range(2):
        if baseline is not None:
            baseline.close()
        baseline = SqliteMovementDatabase(str(tmp_path / f"base-{attempt}.db"), hierarchy)
        started = _time.perf_counter()
        baseline.record_many(events)
        inproc_time = min(inproc_time, _time.perf_counter() - started)

    # Remote: two tracker processes ship their streams into one server
    # (best-of-2 attempts, like the baseline, to amortize scheduler noise).
    context = multiprocessing.get_context("fork")
    remote_time = float("inf")
    for attempt in range(2):
        engine = (
            Ltam.builder()
            .hierarchy(hierarchy)
            .backend("sqlite", str(tmp_path / f"served-{attempt}.db"))
            .build()
        )
        with LtamServer(engine, ingest_batch_size=INGEST_CHUNK) as server:
            host, port = server.address
            barrier = context.Barrier(TRACKER_PROCESSES + 1)
            workers = [
                context.Process(target=_ship_stream, args=(host, port, stream, barrier))
                for stream in streams
            ]
            for worker in workers:
                worker.start()
            barrier.wait()  # every worker is connected; start the clock
            started = _time.perf_counter()
            for worker in workers:
                worker.join()
            remote_time = min(remote_time, _time.perf_counter() - started)
            assert all(worker.exitcode == 0 for worker in workers)

            # Throughput without correctness is meaningless: the served
            # store must equal the in-process one, every attempt.
            served = engine.movement_db
            assert len(served) == INGEST_EVENTS
            assert served.subjects_inside() == baseline.subjects_inside()
            assert (
                served.occupancy_service.entry_counts()
                == baseline.occupancy_service.entry_counts()
            )
    baseline.close()

    overhead = remote_time / inproc_time
    table_printer(
        f"Ingest of {INGEST_EVENTS} events into SQLite",
        ["path", "seconds", "events/s"],
        [
            ["in-process record_many", f"{inproc_time:.3f}", f"{INGEST_EVENTS / inproc_time:,.0f}"],
            [
                f"remote observe_batch, {TRACKER_PROCESSES} processes",
                f"{remote_time:.3f}",
                f"{INGEST_EVENTS / remote_time:,.0f}",
            ],
            ["overhead", f"{overhead:.2f}x", f"(ceiling {INGEST_OVERHEAD_CEILING}x)"],
        ],
    )

    assert overhead <= INGEST_OVERHEAD_CEILING, (
        f"remote ingest from {TRACKER_PROCESSES} processes took {remote_time:.3f}s vs "
        f"{inproc_time:.3f}s in-process ({overhead:.2f}x > {INGEST_OVERHEAD_CEILING}x ceiling)"
    )


def test_cached_decide_throughput_with_parity_under_invalidation(table_printer):
    from repro.service.protocol import request_to_dict

    hierarchy = _hierarchy()
    pool, stream = _hot_stream(hierarchy)
    wire_stream = [request_to_dict(request) for request in stream]

    cached_engine = _seeded_engine(hierarchy)
    uncached_engine = _seeded_engine(hierarchy)
    oracle = _seeded_engine(hierarchy)

    generator = AuthorizationWorkloadGenerator(hierarchy, seed=61)
    future = generator.movement_events(
        generate_subjects(SUBJECT_COUNT), 3_000, start_time=100
    )

    with LtamServer(cached_engine, cache=DecisionCache(maxsize=1 << 17)) as cached_server:
        with LtamServer(uncached_engine) as uncached_server:
            with ServiceClient(*cached_server.address) as cached_client, ServiceClient(
                *uncached_server.address
            ) as uncached_client:
                # Warm both paths once (connection + cache priming).
                cached_client.decide_many(pool, trace=False)
                uncached_client.decide_many(pool[:200], trace=False)

                uncached_time = cached_time = float("inf")
                for _ in range(2):  # best-of-2: amortize scheduler noise
                    uncached_time = min(
                        uncached_time, _timed_decides(uncached_client, wire_stream)
                    )
                    cached_time = min(cached_time, _timed_decides(cached_client, wire_stream))
                speedup = uncached_time / cached_time

                # Parity under invalidation: interleave observes that evict
                # hot keys with full-pool decides, comparing every decision
                # against the embedded oracle.
                violations = 0
                rounds = 3
                for round_index in range(rounds):
                    chunk = future[round_index * 1_000 : (round_index + 1) * 1_000]
                    cached_client.observe_batch(chunk, mode="record", wait=True)
                    oracle.movement_db.record_many(chunk)
                    remote = cached_client.decide_many(pool)
                    local = oracle.decide_many(pool)
                    violations += sum(
                        _decision_key(r) != _decision_key(l) for r, l in zip(remote, local)
                    )
                cache_stats = cached_server.cache.stats

    table_printer(
        f"Server decide throughput, {HOT_DECIDES} hot decides over a {POOL_SIZE}-request pool",
        ["path", "seconds", "decides/s"],
        [
            ["uncached server", f"{uncached_time:.3f}", f"{HOT_DECIDES / uncached_time:,.0f}"],
            ["cached server", f"{cached_time:.3f}", f"{HOT_DECIDES / cached_time:,.0f}"],
            ["speedup", f"{speedup:.2f}x", f"(floor {CACHE_SPEEDUP_FLOOR}x)"],
            [
                "parity",
                f"{violations} violation(s)",
                f"{rounds} invalidating rounds, {cache_stats['invalidated']} evictions",
            ],
        ],
    )
    assert violations == 0, (
        f"{violations} cached decisions diverged from the embedded oracle "
        "after interleaved invalidating observes"
    )
    assert cache_stats["invalidated"] > 0, "the observes never invalidated anything"
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cached server decide throughput only {speedup:.2f}x the uncached server "
        f"(floor {CACHE_SPEEDUP_FLOOR}x): {cached_time:.3f}s vs {uncached_time:.3f}s"
    )



if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    pytest.main([__file__, "-q", "-s"])
