"""The trace-free decide fast path must be decision-equivalent to the
traced evaluator on every workload — same grant, same reason, same
authorization, same budget arithmetic.  The traced pipeline is the
semantics; ``trace=False`` is purely a cost knob (it feeds the binary
wire protocol's elided responses, where per-stage ``StageResult``
formatting would dominate the evaluation itself)."""

from __future__ import annotations

from repro.core.requests import AccessRequest
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.api.stages import (
    CandidateLookupStage,
    CapacityStage,
    EntryBudgetStage,
    EntryWindowStage,
    KnownLocationStage,
)


def _engine(*, time_first: bool = False, capacity: bool = False) -> Ltam:
    hierarchy = LocationHierarchy(grid_building("B", 5, 5))
    builder = Ltam.builder().hierarchy(hierarchy)
    if time_first:
        builder.pipeline(
            KnownLocationStage(),
            CandidateLookupStage(time_first=True),
            EntryWindowStage(),
            EntryBudgetStage(),
        )
    if capacity:
        builder.stage(CapacityStage())
    engine = builder.build()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=11)
    subjects = generate_subjects(160)
    engine.grant_all(generator.authorizations(subjects))
    engine.movement_db.record_many(generator.movement_events(subjects, 12_000))
    return engine


def _requests(engine, count=500, seed=23):
    generator = AuthorizationWorkloadGenerator(engine.hierarchy, seed=seed)
    return generator.requests(generate_subjects(160), count)


def _auth_key(authorization):
    if authorization is None:
        return None
    return (
        authorization.subject,
        authorization.location,
        str(authorization.entry_duration),
        str(authorization.exit_duration),
        authorization.max_entries,
    )


def assert_equivalent(lean, traced):
    assert lean.granted == traced.granted
    assert lean.reason == traced.reason
    assert lean.entries_used == traced.entries_used
    assert _auth_key(lean.authorization) == _auth_key(traced.authorization)
    assert lean.trace == ()


class TestLeanParity:
    def test_default_pipeline_parity_on_workload(self):
        engine = _engine()
        assert engine.pdp._lean_shape
        for request in _requests(engine):
            assert_equivalent(
                engine.pdp.decide(request, trace=False), engine.pdp.decide(request)
            )

    def test_time_first_pipeline_parity_on_workload(self):
        engine = _engine(time_first=True)
        assert engine.pdp._lean_shape and engine.pdp._lean_time_first
        for request in _requests(engine, seed=29):
            assert_equivalent(
                engine.pdp.decide(request, trace=False), engine.pdp.decide(request)
            )

    def test_unknown_location_and_unknown_subject(self):
        engine = _engine()
        off_map = AccessRequest(50, "user-000", "B.Nowhere")
        unknown = AccessRequest(50, "nobody", "B.R0C0")
        assert_equivalent(
            engine.pdp.decide(off_map, trace=False), engine.pdp.decide(off_map)
        )
        assert_equivalent(
            engine.pdp.decide(unknown, trace=False), engine.pdp.decide(unknown)
        )

    def test_custom_pipeline_falls_back_to_traced_evaluation(self):
        """A capacity-extended pipeline is not the lean shape; trace=False
        must still answer through the traced evaluator (minus the trace)."""
        engine = _engine(capacity=True)
        assert not engine.pdp._lean_shape
        for request in _requests(engine, count=150, seed=31):
            lean = engine.pdp.decide(request, trace=False)
            traced = engine.pdp.decide(request)
            assert lean.granted == traced.granted and lean.reason == traced.reason
            assert lean.entries_used == traced.entries_used
            # The fallback is the full evaluator: the trace comes along.
            assert (len(lean.trace) > 0) == (len(traced.trace) > 0)

    def test_decide_many_threads_trace_flag(self):
        engine = _engine()
        requests = _requests(engine, count=200, seed=37)
        lean_batch = engine.pdp.decide_many(requests, trace=False)
        traced_batch = engine.pdp.decide_many(requests)
        for lean, traced in zip(lean_batch, traced_batch):
            assert_equivalent(lean, traced)
