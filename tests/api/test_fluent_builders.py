"""Tests for the fluent construction layer: Ltam.builder() and grant()."""

import pytest

from repro.errors import EnforcementError, InvalidAuthorizationError
from repro.core.authorization import UNLIMITED_ENTRIES
from repro.temporal.chronon import FOREVER
from repro.api import CapacityStage, EntryBudgetStage, KnownLocationStage, Ltam, grant
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.storage.authorization_db import SqliteAuthorizationDatabase
from repro.storage.movement_db import SqliteMovementDatabase
from repro.storage.profile_db import SqliteUserProfileDatabase


class TestLtamBuilder:
    def test_minimal_build(self):
        engine = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
        assert engine.hierarchy.is_primitive("CAIS")
        assert [stage.name for stage in engine.pdp.stages] == [
            "known-location",
            "candidate-lookup",
            "entry-window",
            "entry-budget",
        ]

    def test_hierarchy_required(self):
        with pytest.raises(EnforcementError):
            Ltam.builder().build()

    def test_accepts_raw_graph(self):
        from repro.locations.layouts import ntu_campus

        engine = Ltam.builder().hierarchy(ntu_campus()).build()
        assert engine.hierarchy.is_primitive("CAIS")

    def test_sqlite_backend(self, tmp_path):
        path = str(tmp_path / "ltam.db")
        engine = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .backend("sqlite", path)
            .grant(grant("Alice").at("CAIS").during(10, 20).entries(2))
            .build()
        )
        assert isinstance(engine.authorization_db, SqliteAuthorizationDatabase)
        assert isinstance(engine.movement_db, SqliteMovementDatabase)
        assert isinstance(engine.profile_db, SqliteUserProfileDatabase)
        assert engine.decide((15, "Alice", "CAIS")).granted
        # The three stores share one file and survive a reopen.
        reopened = SqliteAuthorizationDatabase(path)
        assert len(reopened) == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(EnforcementError):
            Ltam.builder().backend("redis")
        with pytest.raises(EnforcementError):
            Ltam.builder().backend("memory", "/some/path")

    def test_stage_inserts_before_terminal_stage(self):
        engine = (
            Ltam.builder().hierarchy(ntu_campus_hierarchy()).stage(CapacityStage()).build()
        )
        names = [stage.name for stage in engine.pdp.stages]
        assert names == [
            "known-location",
            "candidate-lookup",
            "entry-window",
            "capacity",
            "entry-budget",
        ]

    def test_pipeline_replaces_stages(self):
        engine = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .pipeline(KnownLocationStage(), EntryBudgetStage())
            .build()
        )
        assert [stage.name for stage in engine.pdp.stages] == ["known-location", "entry-budget"]

    def test_pipeline_without_window_stage_judges_raw_candidates(self):
        from repro.api import CandidateLookupStage

        engine = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .pipeline(KnownLocationStage(), CandidateLookupStage(), EntryBudgetStage())
            .grant(grant("alice").at("CAIS"))
            .build()
        )
        # No EntryWindowStage: the budget stage falls back to the raw
        # candidates instead of denying on an empty admissible set.
        decision = engine.decide((10, "alice", "CAIS"))
        assert decision.granted
        assert decision.deciding_stage == "entry-budget"

    def test_rules_derive_at_build_time(self):
        base = paper.example_base_authorization_a1()
        builder = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .grant(base)
            .rule(paper.example_rule_r1(base))
        )
        engine = builder.build()
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)  # the rule is specified at t=7
        engine.derive_authorizations()
        assert engine.authorization_db.for_subject_location("Bob", "CAIS")

    def test_capacity_configured_at_build_time(self):
        engine = (
            Ltam.builder().hierarchy(ntu_campus_hierarchy()).capacity("CAIS", 3).build()
        )
        assert engine.monitor.capacity_of("CAIS") == 3


class TestAuthorizationBuilder:
    def test_full_sentence(self):
        auth = (
            grant("alice")
            .at("CAIS")
            .during(9, 17)
            .exit_between(9, 20)
            .entries(3)
            .created_at(1)
            .with_id("g-1")
            .build()
        )
        assert auth.subject == "alice"
        assert auth.location == "CAIS"
        assert (auth.entry_duration.start, auth.entry_duration.end) == (9, 17)
        assert (auth.exit_duration.start, auth.exit_duration.end) == (9, 20)
        assert auth.max_entries == 3
        assert auth.created_at == 1
        assert auth.auth_id == "g-1"

    def test_definition4_defaults(self):
        auth = grant("alice").at("CAIS").created_at(5).build()
        assert auth.entry_duration.start == 5
        assert auth.entry_duration.end is FOREVER
        assert auth.exit_duration.end is FOREVER
        assert auth.max_entries is UNLIMITED_ENTRIES

    def test_until_shorthand(self):
        auth = grant("alice").at("CAIS").during(9, 17).until(25).build()
        assert (auth.exit_duration.start, auth.exit_duration.end) == (9, 25)

    def test_until_is_clause_order_independent(self):
        before = grant("alice").at("CAIS").until(25).during(9, 17).build()
        after = grant("alice").at("CAIS").during(9, 17).until(25).build()
        assert before == after
        assert (before.exit_duration.start, before.exit_duration.end) == (9, 25)

    def test_exit_between_overrides_until(self):
        auth = grant("alice").at("CAIS").during(9, 17).until(25).exit_between(10, 30).build()
        assert (auth.exit_duration.start, auth.exit_duration.end) == (10, 30)

    def test_unlimited_entries_reset(self):
        auth = grant("alice").at("CAIS").entries(2).unlimited_entries().build()
        assert auth.max_entries is UNLIMITED_ENTRIES

    def test_location_required(self):
        with pytest.raises(EnforcementError):
            grant("alice").build()

    def test_definition4_constraints_still_enforced(self):
        with pytest.raises(InvalidAuthorizationError):
            grant("alice").at("CAIS").during(10, 20).exit_between(0, 5).build()

    def test_engine_accepts_builder_directly(self):
        engine = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
        stored = engine.grant(grant("alice").at("CAIS").during(0, 10))
        assert engine.authorization_db.get(stored.auth_id).subject == "alice"

    def test_engine_rejects_unknown_location(self):
        engine = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
        with pytest.raises(EnforcementError):
            engine.grant(grant("alice").at("Narnia").during(0, 10))
