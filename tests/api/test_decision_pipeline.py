"""Tests for the PDP: stage pipeline, traces, and extension stages."""

import pytest

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.api import (
    CandidateLookupStage,
    CapacityStage,
    ConflictResolutionStage,
    Decision,
    DecisionPoint,
    EntryBudgetStage,
    EntryWindowStage,
    KnownLocationStage,
    Ltam,
    StageOutcome,
    default_pipeline,
    grant,
)
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper


@pytest.fixture
def engine():
    built = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
    built.grant_all(paper.section5_authorizations())
    return built


class TestClassicPipeline:
    def test_decision_is_an_access_decision(self, engine):
        decision = engine.decide((15, "Alice", "CAIS"))
        assert isinstance(decision, Decision)
        assert isinstance(decision, AccessDecision)
        assert decision.granted

    def test_trace_names_the_granting_stage(self, engine):
        decision = engine.decide((15, "Alice", "CAIS"))
        assert decision.deciding_stage == "entry-budget"
        assert [result.stage for result in decision.trace] == [
            "known-location",
            "candidate-lookup",
            "entry-window",
            "entry-budget",
        ]
        assert decision.trace[-1].outcome is StageOutcome.GRANT
        assert decision.trace[-1].authorization is decision.authorization

    def test_unknown_location_denied_by_first_stage(self, engine):
        decision = engine.decide((15, "Alice", "Narnia"))
        assert decision.reason is DenialReason.UNKNOWN_LOCATION
        assert decision.deciding_stage == "known-location"
        assert len(decision.trace) == 1

    def test_no_authorization_denied_by_lookup_stage(self, engine):
        decision = engine.decide((15, "Mallory", "CAIS"))
        assert decision.reason is DenialReason.NO_AUTHORIZATION
        assert decision.deciding_stage == "candidate-lookup"

    def test_outside_window_denied_by_window_stage(self, engine):
        decision = engine.decide((5, "Alice", "CAIS"))
        assert decision.reason is DenialReason.OUTSIDE_ENTRY_DURATION
        assert decision.deciding_stage == "entry-window"

    def test_exhausted_budget_denied_by_budget_stage(self, engine):
        engine.observe_entry(11, "Alice", "CAIS")
        engine.observe_exit(12, "Alice", "CAIS")
        engine.observe_entry(13, "Alice", "CAIS")
        engine.observe_exit(14, "Alice", "CAIS")
        decision = engine.decide((15, "Alice", "CAIS"))
        assert decision.reason is DenialReason.ENTRY_LIMIT_EXHAUSTED
        assert decision.deciding_stage == "entry-budget"
        assert decision.entries_used == 2

    def test_explain_renders_every_stage(self, engine):
        text = engine.decide((15, "Alice", "CAIS")).explain()
        for stage in ("known-location", "candidate-lookup", "entry-window", "entry-budget"):
            assert stage in text

    def test_parity_with_legacy_check_request(self, engine):
        from repro.engine.access_control import AccessControlEngine

        legacy = AccessControlEngine(ntu_campus_hierarchy())
        legacy.grant_all(paper.section5_authorizations())
        for time in (0, 5, 10, 15, 25, 60):
            for subject in ("Alice", "Bob", "Mallory"):
                new = engine.decide((time, subject, "CAIS"))
                old = legacy.check_request(AccessRequest(time, subject, "CAIS"))
                assert new.granted == old.granted
                assert new.reason == old.reason
                assert new.entries_used == old.entries_used


class TestPipelineConfiguration:
    def test_pipeline_must_end_with_a_verdict(self):
        hierarchy = ntu_campus_hierarchy()
        engine = Ltam(hierarchy)
        pdp = DecisionPoint.for_components(
            hierarchy,
            engine.authorization_db,
            engine.movement_db,
            stages=[KnownLocationStage()],
        )
        with pytest.raises(EnforcementError):
            pdp.decide(AccessRequest(5, "Alice", "CAIS"))

    def test_empty_pipeline_rejected(self):
        engine = Ltam(ntu_campus_hierarchy())
        with pytest.raises(EnforcementError):
            DecisionPoint(engine.pdp.info, stages=[])

    def test_non_stage_rejected(self):
        engine = Ltam(ntu_campus_hierarchy())
        with pytest.raises(EnforcementError):
            DecisionPoint(engine.pdp.info, stages=[object()])

    def test_default_pipeline_shape(self):
        names = [stage.name for stage in default_pipeline()]
        assert names == ["known-location", "candidate-lookup", "entry-window", "entry-budget"]


class TestCapacityStage:
    @pytest.fixture
    def engine(self):
        built = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .stage(CapacityStage())
            .capacity("CAIS", 1)
            .build()
        )
        for subject in ("Alice", "Bob"):
            built.grant(grant(subject).at("CAIS").during(0, 100))
        return built

    def test_denies_when_full(self, engine):
        assert engine.decide((10, "Alice", "CAIS")).granted
        engine.observe_entry(10, "Alice", "CAIS")
        decision = engine.decide((11, "Bob", "CAIS"))
        assert not decision.granted
        assert decision.reason is DenialReason.OVER_CAPACITY
        assert decision.deciding_stage == "capacity"

    def test_admits_again_after_exit(self, engine):
        engine.observe_entry(10, "Alice", "CAIS")
        engine.observe_exit(12, "Alice", "CAIS")
        assert engine.decide((13, "Bob", "CAIS")).granted

    def test_skips_unlimited_locations(self, engine):
        decision = engine.decide((10, "Alice", "CAIS"))
        skipped = {result.stage: result.outcome for result in decision.trace}
        assert skipped["capacity"] is StageOutcome.CONTINUE
        engine.grant(grant("Alice").at("CHIPES").during(0, 100))
        other = engine.decide((10, "Alice", "CHIPES"))
        outcomes = {result.stage: result.outcome for result in other.trace}
        assert outcomes["capacity"] is StageOutcome.SKIP


class TestConflictResolutionStage:
    def test_merges_overlapping_candidates(self):
        engine = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .stage(ConflictResolutionStage())
            .grant(grant("Alice").at("CAIS").during(0, 10).entries(1))
            .grant(grant("Alice").at("CAIS").during(5, 20).entries(1))
            .build()
        )
        # t=7 lies in both entry windows, so both candidates are admissible
        # and the stage merges them into their hull.
        decision = engine.decide((7, "Alice", "CAIS"))
        assert decision.granted
        conflict_result = next(r for r in decision.trace if r.stage == "conflict-resolution")
        assert "resolved" in conflict_result.detail
        assert decision.authorization.entry_duration.start == 0
        assert int(decision.authorization.entry_duration.end) == 20

    def test_skips_single_candidate(self):
        engine = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .stage(ConflictResolutionStage())
            .grant(grant("Alice").at("CAIS").during(0, 10))
            .build()
        )
        decision = engine.decide((5, "Alice", "CAIS"))
        outcomes = {result.stage: result.outcome for result in decision.trace}
        assert outcomes["conflict-resolution"] is StageOutcome.SKIP


class TestTimeFirstCandidateLookup:
    """CandidateLookupStage(time_first=True): interval-stab candidate lookup.

    Decisions (outcome, reason, granting authorization) must match the
    storage-order pipeline on every request; the expired grants are simply
    never materialized.
    """

    def _engines(self, grants):
        classic = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
        time_first = (
            Ltam.builder()
            .hierarchy(ntu_campus_hierarchy())
            .pipeline(
                KnownLocationStage(),
                CandidateLookupStage(time_first=True),
                EntryWindowStage(),
                EntryBudgetStage(),
            )
            .build()
        )
        for engine in (classic, time_first):
            engine.grant_all(list(grants))
        return classic, time_first

    def _many_expired_grants(self):
        grants = []
        for index in range(40):  # long-dead windows
            grants.append(
                grant("alice")
                .at("CAIS")
                .during(index, index + 1)
                .entries(1)
                .with_id(f"expired-{index}")
                .build()
            )
        grants.append(
            grant("alice").at("CAIS").during(500, 600).entries(2).with_id("live").build()
        )
        return grants

    def test_decision_parity_across_a_request_sweep(self):
        classic, time_first = self._engines(self._many_expired_grants())
        for time in range(0, 700, 7):
            lhs = classic.decide((time, "alice", "CAIS"))
            rhs = time_first.decide((time, "alice", "CAIS"))
            assert lhs.granted == rhs.granted, time
            if lhs.granted:
                assert lhs.authorization.auth_id == rhs.authorization.auth_id
            else:
                assert lhs.reason == rhs.reason

    def test_expired_grants_are_not_materialized(self):
        _, time_first = self._engines(self._many_expired_grants())
        decision = time_first.decide((550, "alice", "CAIS"))
        assert decision.granted
        lookup = next(r for r in decision.trace if r.stage == "candidate-lookup")
        assert "time-first" in lookup.detail
        assert "1 candidate(s)" in lookup.detail  # 40 expired grants pruned

    def test_denial_reasons_survive_the_fast_path(self):
        classic, time_first = self._engines(self._many_expired_grants())
        # All grants expired at t=300: outside-entry-duration, not no-auth.
        for engine in (classic, time_first):
            decision = engine.decide((300, "alice", "CAIS"))
            assert not decision.granted
            assert decision.reason is DenialReason.OUTSIDE_ENTRY_DURATION
        # No grants at all for Bob at CAIS.
        for engine in (classic, time_first):
            decision = engine.decide((300, "bob", "CAIS"))
            assert not decision.granted
            assert decision.reason is DenialReason.NO_AUTHORIZATION

    def test_grant_selection_follows_storage_order(self):
        # Two live overlapping grants: the first stored must win on both paths.
        grants = [
            grant("alice").at("CAIS").during(0, 100).entries(1).with_id("first").build(),
            grant("alice").at("CAIS").during(0, 100).entries(1).with_id("second").build(),
        ]
        classic, time_first = self._engines(grants)
        assert classic.decide((10, "alice", "CAIS")).authorization.auth_id == "first"
        assert time_first.decide((10, "alice", "CAIS")).authorization.auth_id == "first"

    def test_parity_after_revocation(self):
        classic, time_first = self._engines(self._many_expired_grants())
        for engine in (classic, time_first):
            engine.revoke("live")
        for engine in (classic, time_first):
            decision = engine.decide((550, "alice", "CAIS"))
            assert not decision.granted
            assert decision.reason is DenialReason.OUTSIDE_ENTRY_DURATION

    def test_batch_path_memoizes_time_first_lookups(self):
        _, time_first = self._engines(self._many_expired_grants())
        requests = [AccessRequest(550, "alice", "CAIS") for _ in range(100)]
        decisions = time_first.decide_many(requests)
        assert all(decision.granted for decision in decisions)

    def test_time_first_without_pip_support_falls_back(self):
        from repro.api.pdp import PolicyInformationPoint
        from repro.api.stages import EvaluationContext

        info = PolicyInformationPoint(
            is_primitive=lambda location: True,
            candidates_for=lambda subject, location: [],
            entry_count=lambda subject, location, window: 0,
        )
        assert info.enterable_candidates is None
        stage = CandidateLookupStage(time_first=True)
        result = stage.evaluate(EvaluationContext(AccessRequest(5, "alice", "CAIS"), info))
        assert result.outcome is StageOutcome.DENY
        assert result.reason is DenialReason.NO_AUTHORIZATION
