"""Tests for the batch decision API: parity with per-request evaluation."""

import pytest

from repro.api import Ltam
from repro.core.requests import AccessRequest
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import (
    AuthorizationWorkloadGenerator,
    WorkloadConfig,
    generate_subjects,
)


@pytest.fixture
def deployment():
    hierarchy = LocationHierarchy(grid_building("B", 4, 4))
    engine = Ltam.builder().hierarchy(hierarchy).build()
    subjects = generate_subjects(12)
    generator = AuthorizationWorkloadGenerator(
        hierarchy,
        config=WorkloadConfig(horizon=300, coverage=0.7, max_entries=2, unlimited_fraction=0.1),
        seed=11,
    )
    engine.grant_all(generator.authorizations(subjects))
    # Consume some entry budget so the budget stage has real counts to check.
    for request in generator.requests(subjects, 150):
        if engine.decide(request).granted:
            engine.observe_entry(request.time, request.subject, request.location)
            engine.observe_exit(request.time, request.subject, request.location)
    requests = generator.requests(subjects, 600)
    return engine, requests


class TestDecideMany:
    def test_parity_with_per_request_loop(self, deployment):
        engine, requests = deployment
        loop = [engine.decide(request) for request in requests]
        batch = engine.decide_many(requests)
        assert len(batch) == len(loop)
        for single, batched in zip(loop, batch):
            assert batched.request is single.request or batched.request == single.request
            assert batched.granted == single.granted
            assert batched.reason == single.reason
            assert batched.entries_used == single.entries_used
            if single.granted:
                assert batched.authorization.auth_id == single.authorization.auth_id

    def test_preserves_request_order(self, deployment):
        engine, requests = deployment
        batch = engine.decide_many(requests)
        assert [decision.request for decision in batch] == requests

    def test_every_decision_carries_a_trace(self, deployment):
        engine, requests = deployment
        for decision in engine.decide_many(requests):
            assert decision.trace
            assert decision.deciding_stage is not None

    def test_is_pure(self, deployment):
        engine, requests = deployment
        engine.decide_many(requests)
        assert len(engine.audit.decisions()) == 0

    def test_empty_batch(self, deployment):
        engine, _ = deployment
        assert engine.decide_many([]) == []

    def test_accepts_triples(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam.builder().hierarchy(hierarchy).build()
        decisions = engine.decide_many([(5, "alice", "B.R0C0"), (6, "alice", "B.R0C1")])
        assert all(isinstance(d.request, AccessRequest) for d in decisions)
