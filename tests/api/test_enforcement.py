"""Tests for the PEP: audit/alert ownership and observation guarding."""

import pytest

from repro.core.requests import AccessRequest
from repro.engine.alerts import AlertKind
from repro.engine.audit import AuditEntryKind
from repro.api import Ltam, grant
from repro.locations.layouts import ntu_campus_hierarchy
from repro.storage.movement_db import InMemoryMovementDatabase


@pytest.fixture
def engine():
    built = Ltam.builder().hierarchy(ntu_campus_hierarchy()).build()
    built.grant(grant("Alice").at("CAIS").during(10, 20).exit_between(10, 50).entries(2))
    return built


class TestEnforce:
    def test_enforce_audits_the_decision(self, engine):
        decision = engine.enforce((15, "Alice", "CAIS"))
        assert decision.granted
        assert len(engine.audit.decisions()) == 1
        assert engine.audit.decisions()[0] is decision

    def test_denials_alert_and_audit(self, engine):
        engine.enforce((15, "Bob", "CAIS"))
        assert [alert.kind for alert in engine.alerts] == [AlertKind.DENIED_REQUEST]
        assert len(engine.audit.decisions(granted=False)) == 1

    def test_decide_is_pure(self, engine):
        engine.decide((15, "Bob", "CAIS"))
        assert len(engine.audit) == 0
        assert len(engine.alerts) == 0

    def test_enforce_many_audits_every_decision(self, engine):
        requests = [(15, "Alice", "CAIS"), (15, "Bob", "CAIS"), (5, "Alice", "CAIS")]
        decisions = engine.enforce_many(requests)
        assert [decision.granted for decision in decisions] == [True, False, False]
        assert len(engine.audit.decisions()) == 3
        assert len(engine.alerts) == 2

    def test_enforce_and_enter_records_the_entry(self, engine):
        decision = engine.enforce_and_enter(AccessRequest(15, "Alice", "CAIS"))
        assert decision.granted
        assert engine.where_is("Alice") == "CAIS"
        assert engine.movement_db.entry_count("Alice", "CAIS") == 1


class _DroppingMovementDatabase(InMemoryMovementDatabase):
    """A movement backend that acknowledges but never stores records."""

    def record(self, record):
        return record


class TestObservationGuard:
    def test_observation_with_empty_history_audits_a_note(self):
        hierarchy = ntu_campus_hierarchy()
        engine = Ltam(hierarchy, movement_db=_DroppingMovementDatabase(hierarchy))
        engine.grant(grant("Alice").at("CAIS").during(10, 20))
        # The seed engine crashed with IndexError here (history(...)[-1] on
        # an empty history); the PEP audits the miss instead.
        engine.observe_entry(15, "Alice", "CAIS")
        notes = engine.audit.of_kind(AuditEntryKind.NOTE)
        assert len(notes) == 1
        assert "recorded nothing" in str(notes[0].payload)
        assert engine.audit.of_kind(AuditEntryKind.MOVEMENT) == []

    def test_observation_with_history_audits_the_movement(self, engine):
        engine.observe_entry(15, "Alice", "CAIS")
        movements = engine.audit.of_kind(AuditEntryKind.MOVEMENT)
        assert len(movements) == 1
        assert movements[0].subject == "Alice"

    def test_exit_observation_guarded_too(self):
        hierarchy = ntu_campus_hierarchy()
        engine = Ltam(hierarchy, movement_db=_DroppingMovementDatabase(hierarchy))
        engine.grant(grant("Alice").at("CAIS").during(10, 20))
        engine.observe_exit(16, "Alice", "CAIS")
        assert len(engine.audit.of_kind(AuditEntryKind.NOTE)) == 1
