"""Unit tests for co-location analysis (contact tracing)."""

import pytest

from repro.analysis.contacts import contact_graph, find_contacts, stays_of
from repro.storage.movement_db import InMemoryMovementDatabase
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture
def movements():
    db = InMemoryMovementDatabase()
    # Patient zero: WardA 10-40, Cafeteria 50-70.
    db.record_entry(10, "patient", "WardA")
    db.record_exit(40, "patient", "WardA")
    db.record_entry(50, "patient", "Cafeteria")
    db.record_exit(70, "patient", "Cafeteria")
    # Nurse: WardA 20-30 (overlaps patient), Cafeteria 80-90 (no overlap).
    db.record_entry(20, "nurse", "WardA")
    db.record_exit(30, "nurse", "WardA")
    db.record_entry(80, "nurse", "Cafeteria")
    db.record_exit(90, "nurse", "Cafeteria")
    # Porter: Cafeteria 65-75 (brief overlap with the patient), still inside WardB.
    db.record_entry(65, "porter", "Cafeteria")
    db.record_exit(75, "porter", "Cafeteria")
    db.record_entry(100, "porter", "WardB")
    return db


class TestStays:
    def test_stays_are_reconstructed(self, movements):
        stays = stays_of(movements, "patient")
        assert [(s.location, s.start, s.end) for s in stays] == [("WardA", 10, 40), ("Cafeteria", 50, 70)]

    def test_open_stay_ends_at_forever(self, movements):
        porter_stays = stays_of(movements, "porter")
        open_stay = [s for s in porter_stays if s.location == "WardB"][0]
        assert open_stay.end is FOREVER

    def test_unmatched_reentry_closes_previous_stay(self):
        db = InMemoryMovementDatabase()
        db.record_entry(0, "x", "Room")
        db.record_entry(10, "x", "Room")  # tracker missed the exit
        db.record_exit(20, "x", "Room")
        stays = stays_of(db, "x")
        assert [(s.start, s.end) for s in stays] == [(0, 10), (10, 20)]

    def test_all_subjects(self, movements):
        assert {s.subject for s in stays_of(movements)} == {"patient", "nurse", "porter"}


class TestFindContacts:
    def test_contacts_of_the_patient(self, movements):
        contacts = find_contacts(movements, "patient")
        by_other = {(c.other, c.location): c for c in contacts}
        assert set(by_other) == {("nurse", "WardA"), ("porter", "Cafeteria")}
        assert by_other[("nurse", "WardA")].overlap == TimeInterval(20, 30)
        assert by_other[("porter", "Cafeteria")].overlap == TimeInterval(65, 70)

    def test_min_overlap_filter(self, movements):
        contacts = find_contacts(movements, "patient", min_overlap=8)
        assert {c.other for c in contacts} == {"nurse"}

    def test_window_restriction(self, movements):
        # Only the cafeteria period of the patient.
        contacts = find_contacts(movements, "patient", window=TimeInterval(45, 80))
        assert {c.other for c in contacts} == {"porter"}

    def test_subject_with_no_contacts(self, movements):
        db = InMemoryMovementDatabase()
        db.record_entry(0, "loner", "Room")
        assert find_contacts(db, "loner") == []

    def test_contact_durations(self, movements):
        contacts = find_contacts(movements, "patient")
        assert all(int(c.duration) >= 1 for c in contacts)


class TestContactGraph:
    def test_pairwise_totals_are_symmetric(self, movements):
        graph = contact_graph(movements)
        assert graph["patient"]["nurse"] == graph["nurse"]["patient"] == 11  # chronons 20..30
        assert graph["patient"]["porter"] == 6  # chronons 65..70
        assert "porter" not in graph.get("nurse", {})

    def test_min_overlap(self, movements):
        graph = contact_graph(movements, min_overlap=8)
        assert "porter" not in graph.get("patient", {})
        assert graph["patient"]["nurse"] == 11
