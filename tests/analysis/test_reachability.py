"""Unit tests for the reachability matrix report."""

import pytest

from repro.analysis.reachability import build_reachability_matrix
from repro.core.authorization import LocationTemporalAuthorization
from repro.locations.layouts import figure4_hierarchy
from repro.paper import fixtures as paper


@pytest.fixture
def matrix():
    hierarchy = figure4_hierarchy()
    auths = list(paper.table1_authorizations())
    # Bob can only reach the entry location A.
    auths.append(LocationTemporalAuthorization(("Bob", "A"), (0, 10), (0, 20)))
    return build_reachability_matrix(hierarchy, ["Alice", "Bob", "Mallory"], auths)


class TestMatrix:
    def test_per_subject_summaries(self, matrix):
        alice = matrix.per_subject["Alice"]
        assert alice.accessible == {"A", "B", "D"}
        assert alice.inaccessible == {"C"}
        assert alice.coverage == pytest.approx(0.75)

        bob = matrix.per_subject["Bob"]
        assert bob.accessible == {"A"}
        assert bob.coverage == pytest.approx(0.25)

        mallory = matrix.per_subject["Mallory"]
        assert mallory.accessible == frozenset()
        assert mallory.coverage == 0.0

    def test_reachable_by(self, matrix):
        assert matrix.reachable_by("A") == ["Alice", "Bob"]
        assert matrix.reachable_by("B") == ["Alice"]
        assert matrix.reachable_by("C") == []

    def test_dead_locations(self, matrix):
        assert matrix.dead_locations() == ["C"]

    def test_coverage_by_subject(self, matrix):
        coverage = matrix.coverage_by_subject()
        assert set(coverage) == {"Alice", "Bob", "Mallory"}
        assert coverage["Alice"] > coverage["Bob"] > coverage["Mallory"]

    def test_to_rows(self, matrix):
        rows = matrix.to_rows()
        assert rows[0][0] == "Alice"
        assert rows[0][1] == 3 and rows[0][2] == 1
        assert all(len(row) == 4 for row in rows)

    def test_hierarchy_name_and_locations(self, matrix):
        assert matrix.hierarchy_name == "Figure4"
        assert matrix.locations == ("A", "B", "C", "D")
