"""Unit tests for violation reports and detection statistics."""

import pytest

from repro.analysis.reports import (
    build_violation_report,
    busiest_locations,
    detection_stats,
)
from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import Alert, AlertKind
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.simulation.movement import GroundTruth
from repro.storage.movement_db import InMemoryMovementDatabase


@pytest.fixture
def engine_after_timeline():
    engine = AccessControlEngine(ntu_campus_hierarchy())
    engine.grant_all(paper.section5_authorizations())
    for step in paper.section5_timeline():
        if step.action == "request":
            decision = engine.request_access(step.time, step.subject, step.location)
            if decision.granted:
                engine.observe_entry(step.time, step.subject, step.location)
        else:
            engine.observe_exit(step.time, step.subject, step.location)
    return engine


class TestViolationReport:
    def test_aggregates_decisions_and_alerts(self, engine_after_timeline):
        report = build_violation_report(engine_after_timeline.audit)
        assert report.total_decisions == 4
        assert report.granted == 2
        assert report.denied == 2
        assert report.grant_rate == pytest.approx(0.5)
        assert report.alerts_by_kind.get(AlertKind.DENIED_REQUEST) == 2
        assert report.alerts_by_subject.get("Bob") == 2
        assert report.total_alerts == 2

    def test_empty_audit(self):
        from repro.engine.audit import AuditLog

        report = build_violation_report(AuditLog())
        assert report.total_decisions == 0
        assert report.grant_rate == 0.0
        assert report.total_alerts == 0


class TestDetectionStats:
    def test_full_recall(self):
        truth = GroundTruth(((5, "Eve", "CAIS"),), (("Alice", "Lab1", 40),))
        alerts = [
            Alert(5, AlertKind.UNAUTHORIZED_ENTRY, "Eve", "CAIS"),
            Alert(60, AlertKind.OVERSTAY, "Alice", "Lab1"),
        ]
        stats = detection_stats(alerts, truth)
        assert stats.unauthorized_recall == 1.0
        assert stats.overstay_recall == 1.0
        assert stats.overall_recall == 1.0

    def test_partial_recall(self):
        truth = GroundTruth(((5, "Eve", "CAIS"), (9, "Mallory", "Lab1")), ())
        alerts = [Alert(5, AlertKind.UNAUTHORIZED_ENTRY, "Eve", "CAIS")]
        stats = detection_stats(alerts, truth)
        assert stats.unauthorized_recall == pytest.approx(0.5)
        assert stats.overall_recall == pytest.approx(0.5)

    def test_exit_outside_duration_counts_as_overstay_detection(self):
        truth = GroundTruth((), (("Alice", "Lab1", 40),))
        alerts = [Alert(55, AlertKind.EXIT_OUTSIDE_DURATION, "Alice", "Lab1")]
        assert detection_stats(alerts, truth).overstay_recall == 1.0

    def test_no_injected_violations_gives_perfect_recall(self):
        stats = detection_stats([], GroundTruth((), ()))
        assert stats.overall_recall == 1.0

    def test_zero_detection(self):
        truth = GroundTruth(((5, "Eve", "CAIS"),), ())
        assert detection_stats([], truth).overall_recall == 0.0


class TestBusiestLocations:
    def test_ranking(self):
        db = InMemoryMovementDatabase()
        for time, subject, location in [
            (1, "a", "X"),
            (2, "b", "X"),
            (3, "c", "Y"),
            (4, "a", "Z"),
            (5, "a", "X"),
        ]:
            db.record_entry(time, subject, location)
        db.record_exit(6, "a", "X")  # exits do not count
        ranking = busiest_locations(db, top=2)
        assert ranking == [("X", 3), ("Y", 1)]

    def test_empty_database(self):
        assert busiest_locations(InMemoryMovementDatabase()) == []
