"""Unit tests for TimeInterval, including the paper's UNION/INTERSECTION semantics."""

import pytest

from repro.errors import InvalidIntervalError, TemporalError
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


class TestConstruction:
    def test_basic_interval(self):
        interval = TimeInterval(5, 40)
        assert interval.start == 5
        assert interval.end == 40

    def test_instant(self):
        assert TimeInterval.instant(7) == TimeInterval(7, 7)

    def test_from_onwards_is_unbounded(self):
        assert TimeInterval.from_onwards(3).is_unbounded

    def test_from_tuple(self):
        assert TimeInterval.from_tuple((1, 2)) == TimeInterval(1, 2)

    def test_inverted_endpoints_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(10, 5)

    def test_negative_start_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(-1, 5)

    def test_forever_start_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(FOREVER, FOREVER)

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(1.5, 3)


class TestProperties:
    def test_size_counts_inclusive_units(self):
        # Section 3.1: the size is the number of time units in the interval.
        assert TimeInterval(5, 9).size == 5
        assert TimeInterval(3, 3).size == 1

    def test_unbounded_size_is_forever(self):
        assert TimeInterval(0, FOREVER).size is FOREVER

    def test_contains_endpoints(self):
        interval = TimeInterval(5, 10)
        assert interval.contains(5)
        assert interval.contains(10)
        assert 7 in interval
        assert 4 not in interval
        assert 11 not in interval

    def test_unbounded_contains_everything_after_start(self):
        interval = TimeInterval(5, FOREVER)
        assert interval.contains(10**9)
        assert not interval.contains(4)
        assert FOREVER in interval

    def test_contains_rejects_invalid_time(self):
        with pytest.raises(TemporalError):
            TimeInterval(0, 1).contains(-2)

    def test_contains_interval(self):
        assert TimeInterval(0, 10).contains_interval(TimeInterval(2, 8))
        assert not TimeInterval(0, 10).contains_interval(TimeInterval(2, 12))
        assert TimeInterval(0, FOREVER).contains_interval(TimeInterval(5, FOREVER))
        assert not TimeInterval(0, 10).contains_interval(TimeInterval(0, FOREVER))


class TestRelations:
    def test_overlaps(self):
        assert TimeInterval(0, 5).overlaps(TimeInterval(5, 9))
        assert not TimeInterval(0, 5).overlaps(TimeInterval(6, 9))
        assert TimeInterval(0, FOREVER).overlaps(TimeInterval(100, 200))

    def test_adjacency_in_discrete_time(self):
        assert TimeInterval(1, 5).is_adjacent_to(TimeInterval(6, 9))
        assert TimeInterval(6, 9).is_adjacent_to(TimeInterval(1, 5))
        assert not TimeInterval(1, 5).is_adjacent_to(TimeInterval(7, 9))
        assert not TimeInterval(1, 5).is_adjacent_to(TimeInterval(5, 9))

    def test_precedes(self):
        assert TimeInterval(0, 4).precedes(TimeInterval(5, 9))
        assert not TimeInterval(0, 5).precedes(TimeInterval(5, 9))
        assert not TimeInterval(0, FOREVER).precedes(TimeInterval(5, 9))


class TestPaperOperators:
    """The UNION and INTERSECTION semantics given verbatim in Section 4."""

    def test_union_merges_when_t2_le_t1(self):
        # UNION([t0,t1],[t2,t3]) = [t0,t3] if t2 <= t1
        assert TimeInterval(0, 10).union(TimeInterval(5, 20)) == [TimeInterval(0, 20)]

    def test_union_keeps_both_when_disjoint(self):
        assert TimeInterval(0, 4).union(TimeInterval(10, 20)) == [
            TimeInterval(0, 4),
            TimeInterval(10, 20),
        ]

    def test_union_merges_adjacent_intervals(self):
        assert TimeInterval(0, 4).union(TimeInterval(5, 9)) == [TimeInterval(0, 9)]

    def test_union_with_unbounded(self):
        assert TimeInterval(0, 10).union(TimeInterval(5, FOREVER)) == [TimeInterval(0, FOREVER)]

    def test_intersection_when_overlapping(self):
        # INTERSECTION([t0,t1],[t2,t3]) = [t2,t1] if t2 <= t1
        assert TimeInterval(0, 10).intersect(TimeInterval(5, 20)) == TimeInterval(5, 10)

    def test_intersection_null_when_disjoint(self):
        assert TimeInterval(0, 4).intersect(TimeInterval(10, 20)) is None

    def test_intersection_example2_of_paper(self):
        # Example 2: INTERSECTION([10, 30]) applied to [5, 20] gives [10, 20].
        assert TimeInterval(5, 20).intersect(TimeInterval(10, 30)) == TimeInterval(10, 20)

    def test_intersection_commutes(self):
        a, b = TimeInterval(3, 12), TimeInterval(7, 30)
        assert a.intersect(b) == b.intersect(a)

    def test_intersection_with_unbounded(self):
        assert TimeInterval(5, FOREVER).intersect(TimeInterval(0, 10)) == TimeInterval(5, 10)
        assert TimeInterval(5, FOREVER).intersect(TimeInterval(10, FOREVER)) == TimeInterval(10, FOREVER)


class TestDifferenceShiftClamp:
    def test_difference_middle_cut(self):
        assert TimeInterval(0, 10).difference(TimeInterval(3, 6)) == [
            TimeInterval(0, 2),
            TimeInterval(7, 10),
        ]

    def test_difference_no_overlap(self):
        assert TimeInterval(0, 5).difference(TimeInterval(10, 20)) == [TimeInterval(0, 5)]

    def test_difference_total_cover(self):
        assert TimeInterval(3, 6).difference(TimeInterval(0, 10)) == []

    def test_difference_of_unbounded(self):
        assert TimeInterval(0, FOREVER).difference(TimeInterval(5, 10)) == [
            TimeInterval(0, 4),
            TimeInterval(11, FOREVER),
        ]

    def test_shift(self):
        assert TimeInterval(5, 10).shift(3) == TimeInterval(8, 13)
        assert TimeInterval(5, 10).shift(-5) == TimeInterval(0, 5)

    def test_shift_below_zero_rejected(self):
        with pytest.raises(InvalidIntervalError):
            TimeInterval(2, 5).shift(-3)

    def test_clamp(self):
        assert TimeInterval(0, 100).clamp(10, 20) == TimeInterval(10, 20)
        assert TimeInterval(0, 5).clamp(10, 20) is None


class TestMisc:
    def test_iter_chronons(self):
        assert list(TimeInterval(3, 6).iter_chronons()) == [3, 4, 5, 6]

    def test_iter_chronons_unbounded_rejected(self):
        with pytest.raises(TemporalError):
            TimeInterval(0, FOREVER).iter_chronons()

    def test_str_uses_infinity_symbol(self):
        assert str(TimeInterval(1, FOREVER)) == "[1, ∞]"
        assert str(TimeInterval(1, 9)) == "[1, 9]"

    def test_ordering_by_start(self):
        assert sorted([TimeInterval(5, 6), TimeInterval(1, 9)])[0] == TimeInterval(1, 9)

    def test_to_tuple(self):
        assert TimeInterval(1, 2).to_tuple() == (1, 2)
