"""Unit tests for periodic temporal expressions (calendar extension)."""

import pytest

from repro.errors import TemporalError
from repro.temporal.calendar import (
    CalendarScale,
    DailyWindow,
    WeeklyWindow,
    business_hours,
    expand_all,
)
from repro.temporal.interval_set import IntervalSet


class TestCalendarScale:
    def test_default_scale(self):
        scale = CalendarScale()
        assert scale.minute == 1
        assert scale.hour == 60
        assert scale.day == 1440
        assert scale.week == 7 * 1440

    def test_scaled_chronons(self):
        scale = CalendarScale(chronons_per_minute=2)
        assert scale.hour == 120
        assert scale.day == 2880

    def test_invalid_scale(self):
        with pytest.raises(TemporalError):
            CalendarScale(0)


class TestDailyWindow:
    def test_single_day_expansion(self):
        window = DailyWindow(start_minute=60, end_minute=119)  # 01:00-01:59
        expanded = window.expand(0, 1439)
        assert expanded == IntervalSet([(60, 119)])

    def test_multiple_days(self):
        window = DailyWindow(start_minute=0, end_minute=59)
        expanded = window.expand(0, 2 * 1440 - 1)
        assert expanded == IntervalSet([(0, 59), (1440, 1499)])

    def test_horizon_clipping(self):
        window = DailyWindow(start_minute=0, end_minute=1439 // 1)
        with pytest.raises(TemporalError):
            DailyWindow(start_minute=0, end_minute=1440)
        clipped = DailyWindow(start_minute=100, end_minute=200).expand(150, 180)
        assert clipped == IntervalSet([(150, 180)])

    def test_invalid_window(self):
        with pytest.raises(TemporalError):
            DailyWindow(start_minute=10, end_minute=5)

    def test_inverted_horizon_rejected(self):
        with pytest.raises(TemporalError):
            DailyWindow(0, 10).expand(100, 50)


class TestWeeklyWindow:
    def test_only_selected_days_appear(self):
        window = WeeklyWindow(days_of_week=(0, 2), start_minute=0, end_minute=59)
        expanded = window.expand(0, 3 * 1440 - 1)  # days 0, 1, 2
        assert expanded == IntervalSet([(0, 59), (2 * 1440, 2 * 1440 + 59)])

    def test_wraps_after_a_week(self):
        window = WeeklyWindow(days_of_week=(0,), start_minute=0, end_minute=0)
        expanded = window.expand(0, 8 * 1440)
        assert expanded == IntervalSet([(0, 0), (7 * 1440, 7 * 1440)])

    def test_invalid_day(self):
        with pytest.raises(TemporalError):
            WeeklyWindow(days_of_week=(7,), start_minute=0, end_minute=10)

    def test_empty_days(self):
        with pytest.raises(TemporalError):
            WeeklyWindow(days_of_week=(), start_minute=0, end_minute=10)


class TestBusinessHoursAndExpandAll:
    def test_business_hours_skips_weekend_days(self):
        expression = business_hours()
        expanded = expression.expand(0, 7 * 1440 - 1)
        # Five working days in the first week.
        assert len(expanded.intervals) == 5

    def test_business_hours_window_minutes(self):
        expression = business_hours(days=(0,), start_minute=540, end_minute=1019)
        expanded = expression.expand(0, 1439)
        assert expanded == IntervalSet([(540, 1019)])

    def test_expand_all_unions_expressions(self):
        morning = DailyWindow(0, 59)
        evening = DailyWindow(1200, 1259)
        combined = expand_all([morning, evening], 0, 1439)
        assert combined == IntervalSet([(0, 59), (1200, 1259)])
