"""Unit tests for IntervalSet, the data structure behind Algorithm 1's T_g / T_d."""

import pytest

from repro.errors import TemporalError
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet


class TestNormalization:
    def test_overlapping_inputs_coalesce(self):
        assert IntervalSet([(0, 10), (5, 20)]) == IntervalSet([(0, 20)])

    def test_adjacent_inputs_coalesce(self):
        assert IntervalSet([(1, 5), (6, 9)]) == IntervalSet([(1, 9)])

    def test_disjoint_inputs_stay_separate(self):
        interval_set = IntervalSet([(10, 20), (0, 5)])
        assert interval_set.intervals == (TimeInterval(0, 5), TimeInterval(10, 20))

    def test_input_order_is_irrelevant(self):
        assert IntervalSet([(10, 20), (0, 5)]) == IntervalSet([(0, 5), (10, 20)])

    def test_accepts_timeinterval_objects_and_tuples(self):
        assert IntervalSet([TimeInterval(0, 5)]) == IntervalSet([(0, 5)])

    def test_rejects_garbage(self):
        with pytest.raises(TemporalError):
            IntervalSet(["nonsense"])

    def test_unbounded_absorbs_later_intervals(self):
        assert IntervalSet([(0, FOREVER), (10, 20)]) == IntervalSet([(0, FOREVER)])


class TestIntrospection:
    def test_empty_set(self):
        empty = IntervalSet.empty()
        assert empty.is_empty
        assert not empty
        assert len(empty) == 0
        assert empty.earliest is None
        assert empty.latest is None
        assert empty.total_size == 0

    def test_everything(self):
        everything = IntervalSet.everything()
        assert everything.is_unbounded
        assert everything.contains(0)
        assert everything.contains(10**9)

    def test_single_and_from_interval(self):
        assert IntervalSet.single(3, 9) == IntervalSet([(3, 9)])
        assert IntervalSet.from_interval(None) == IntervalSet.empty()
        assert IntervalSet.from_interval(TimeInterval(1, 2)) == IntervalSet([(1, 2)])

    def test_earliest_latest_total_size(self):
        interval_set = IntervalSet([(0, 4), (10, 14)])
        assert interval_set.earliest == 0
        assert interval_set.latest == 14
        assert interval_set.total_size == 10

    def test_contains_and_membership(self):
        interval_set = IntervalSet([(0, 4), (10, 14)])
        assert 3 in interval_set
        assert 10 in interval_set
        assert 7 not in interval_set

    def test_covers(self):
        big = IntervalSet([(0, 20)])
        small = IntervalSet([(2, 4), (10, 12)])
        assert big.covers(small)
        assert not small.covers(big)

    def test_first_contained_time(self):
        interval_set = IntervalSet([(5, 8), (20, 30)])
        assert interval_set.first_contained_time() == 5
        assert interval_set.first_contained_time(7) == 7
        assert interval_set.first_contained_time(10) == 20
        assert interval_set.first_contained_time(31) is None


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(10, 15)])
        assert (a | b) == IntervalSet([(0, 5), (10, 15)])

    def test_union_with_single_interval(self):
        assert IntervalSet([(0, 5)]).union((3, 12)) == IntervalSet([(0, 12)])

    def test_intersection(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert (a & b) == IntervalSet([(5, 10), (20, 25)])

    def test_intersection_empty_when_disjoint(self):
        assert (IntervalSet([(0, 5)]) & IntervalSet([(10, 20)])).is_empty

    def test_difference(self):
        a = IntervalSet([(0, 20)])
        b = IntervalSet([(5, 8), (15, 30)])
        assert (a - b) == IntervalSet([(0, 4), (9, 14)])

    def test_difference_with_unbounded(self):
        assert IntervalSet([(0, FOREVER)]) - IntervalSet([(10, FOREVER)]) == IntervalSet([(0, 9)])

    def test_complement(self):
        interval_set = IntervalSet([(5, 10)])
        assert interval_set.complement(0, 20) == IntervalSet([(0, 4), (11, 20)])
        assert interval_set.complement() == IntervalSet([(0, 4), (11, FOREVER)])

    def test_shift(self):
        assert IntervalSet([(0, 5), (10, 12)]).shift(3) == IntervalSet([(3, 8), (13, 15)])

    def test_clamp(self):
        assert IntervalSet([(0, 5), (10, 20)]).clamp(4, 12) == IntervalSet([(4, 5), (10, 12)])

    def test_set_identities(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        # A = (A ∩ B) ∪ (A \ B)
        assert (a & b) | (a - b) == a

    def test_empty_is_identity_for_union(self):
        a = IntervalSet([(3, 9)])
        assert a | IntervalSet.empty() == a

    def test_empty_is_absorbing_for_intersection(self):
        a = IntervalSet([(3, 9)])
        assert (a & IntervalSet.empty()).is_empty


class TestDunderAndSerialization:
    def test_equality_and_hash(self):
        a = IntervalSet([(0, 5), (6, 9)])
        b = IntervalSet([(0, 9)])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_yields_sorted_intervals(self):
        interval_set = IntervalSet([(10, 12), (0, 2)])
        assert list(interval_set) == [TimeInterval(0, 2), TimeInterval(10, 12)]

    def test_repr_of_empty_uses_phi(self):
        assert "φ" in repr(IntervalSet.empty())

    def test_pairs_roundtrip(self):
        interval_set = IntervalSet([(0, 5), (10, FOREVER)])
        assert IntervalSet.from_pairs(interval_set.to_pairs()) == interval_set

    def test_equality_against_other_types(self):
        assert IntervalSet([(0, 1)]) != "not a set"
