"""Unit tests for chronons, the FOREVER sentinel and the simulation clock."""

import pickle

import pytest

from repro.errors import TemporalError
from repro.temporal.chronon import CHRONON, FOREVER, Clock, TimeUnit, is_time_point, validate_time_point


class TestForever:
    def test_forever_is_greater_than_any_int(self):
        assert FOREVER > 0
        assert FOREVER > 10**12
        assert not (FOREVER < 5)

    def test_forever_compares_with_itself(self):
        assert FOREVER == FOREVER
        assert FOREVER >= FOREVER
        assert FOREVER <= FOREVER
        assert not (FOREVER > FOREVER)
        assert not (FOREVER < FOREVER)

    def test_int_comparisons_against_forever(self):
        assert 5 < FOREVER
        assert 5 <= FOREVER
        assert not (5 > FOREVER)
        assert not (5 >= FOREVER)
        assert 5 != FOREVER

    def test_forever_is_a_singleton_even_after_pickling(self):
        clone = pickle.loads(pickle.dumps(FOREVER))
        assert clone is FOREVER

    def test_forever_arithmetic_saturates(self):
        assert FOREVER + 5 is FOREVER
        assert 5 + FOREVER is FOREVER
        assert FOREVER - 3 is FOREVER

    def test_forever_repr_and_str(self):
        assert repr(FOREVER) == "FOREVER"
        assert str(FOREVER) == "∞"

    def test_forever_hash_is_stable(self):
        assert hash(FOREVER) == hash(FOREVER)


class TestTimePointValidation:
    def test_non_negative_ints_are_time_points(self):
        assert is_time_point(0)
        assert is_time_point(42)

    def test_forever_is_a_time_point(self):
        assert is_time_point(FOREVER)

    @pytest.mark.parametrize("bad", [-1, 1.5, "5", None, True, False])
    def test_invalid_time_points(self, bad):
        assert not is_time_point(bad)

    def test_validate_raises_with_name(self):
        with pytest.raises(TemporalError, match="entry time"):
            validate_time_point(-3, name="entry time")

    def test_validate_passes_through_valid_values(self):
        assert validate_time_point(7) == 7
        assert validate_time_point(FOREVER) is FOREVER


class TestTimeUnit:
    def test_chronon_constant(self):
        assert CHRONON.chronons == 1

    def test_conversion_roundtrip(self):
        minute = TimeUnit(60, "minute")
        assert minute.to_chronons(5) == 300
        assert minute.from_chronons(300) == 5

    def test_from_chronons_truncates(self):
        minute = TimeUnit(60, "minute")
        assert minute.from_chronons(119) == 1

    @pytest.mark.parametrize("bad", [0, -2, 1.5, True])
    def test_invalid_unit_size(self, bad):
        with pytest.raises(TemporalError):
            TimeUnit(bad)

    def test_negative_unit_count_rejected(self):
        with pytest.raises(TemporalError):
            TimeUnit(10).to_chronons(-1)

    def test_from_chronons_rejects_forever(self):
        with pytest.raises(TemporalError):
            TimeUnit(10).from_chronons(FOREVER)


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0

    def test_advance_returns_new_time(self):
        clock = Clock()
        assert clock.advance(5) == 5
        assert clock.advance() == 6

    def test_advance_to_absolute_time(self):
        clock = Clock(now=3)
        assert clock.advance_to(10) == 10

    def test_cannot_move_backwards(self):
        clock = Clock(now=10)
        with pytest.raises(TemporalError):
            clock.advance_to(5)

    def test_cannot_advance_by_negative_delta(self):
        with pytest.raises(TemporalError):
            Clock().advance(-1)

    def test_cannot_start_negative(self):
        with pytest.raises(TemporalError):
            Clock(now=-1)

    def test_observers_are_notified(self):
        clock = Clock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(2)
        clock.advance(3)
        assert seen == [2, 5]

    def test_ticks_iterates_in_steps(self):
        clock = Clock()
        assert list(clock.ticks(10, step=4)) == [4, 8, 10]
        assert clock.now == 10

    def test_ticks_rejects_nonpositive_step(self):
        with pytest.raises(TemporalError):
            list(Clock().ticks(5, step=0))
