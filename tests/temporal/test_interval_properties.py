"""Property-based tests for the interval and interval-set algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet

MAX_T = 200


@st.composite
def intervals(draw, max_time=MAX_T, allow_unbounded=True):
    start = draw(st.integers(min_value=0, max_value=max_time))
    if allow_unbounded and draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return TimeInterval(start, FOREVER)
    end = draw(st.integers(min_value=start, max_value=max_time + 50))
    return TimeInterval(start, end)


@st.composite
def interval_sets(draw, max_intervals=5):
    return IntervalSet(draw(st.lists(intervals(), max_size=max_intervals)))


def chronons_of(interval_set: IntervalSet, horizon: int = MAX_T + 60) -> set:
    """Reference semantics: the set of chronons (up to a horizon) in the interval set."""
    return {t for t in range(horizon) if interval_set.contains(t)}


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_intersection_is_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_intersection_is_contained_in_both(self, a, b):
        overlap = a.intersect(b)
        if overlap is not None:
            assert a.contains_interval(overlap)
            assert b.contains_interval(overlap)

    @given(intervals(), intervals())
    def test_union_covers_both_inputs(self, a, b):
        union_set = IntervalSet(a.union(b))
        assert union_set.covers(IntervalSet([a]))
        assert union_set.covers(IntervalSet([b]))

    @given(intervals(), intervals())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(intervals(), intervals())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        for piece in a.difference(b):
            assert piece.intersect(b) is None
            assert a.contains_interval(piece)


class TestIntervalSetProperties:
    @given(interval_sets())
    def test_normalization_is_idempotent(self, interval_set):
        assert IntervalSet(interval_set.intervals) == interval_set

    @given(interval_sets())
    def test_intervals_are_sorted_and_disjoint(self, interval_set):
        items = interval_set.intervals
        for first, second in zip(items, items[1:]):
            assert first.start <= second.start
            assert not first.meets_or_overlaps(second)

    @given(interval_sets(), interval_sets())
    def test_union_matches_chronon_semantics(self, a, b):
        assert chronons_of(a | b) == chronons_of(a) | chronons_of(b)

    @given(interval_sets(), interval_sets())
    def test_intersection_matches_chronon_semantics(self, a, b):
        assert chronons_of(a & b) == chronons_of(a) & chronons_of(b)

    @given(interval_sets(), interval_sets())
    def test_difference_matches_chronon_semantics(self, a, b):
        assert chronons_of(a - b) == chronons_of(a) - chronons_of(b)

    @given(interval_sets(), interval_sets())
    def test_union_is_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(interval_sets(), interval_sets(), interval_sets())
    def test_union_is_associative(self, a, b, c):
        assert ((a | b) | c) == (a | (b | c))

    @given(interval_sets(), interval_sets(), interval_sets())
    def test_intersection_distributes_over_union(self, a, b, c):
        assert (a & (b | c)) == ((a & b) | (a & c))

    @given(interval_sets())
    def test_difference_with_self_is_empty(self, a):
        assert (a - a).is_empty

    @given(interval_sets())
    def test_union_with_self_is_identity(self, a):
        assert (a | a) == a

    @given(interval_sets())
    def test_complement_partitions_the_horizon(self, a):
        bounded = a.clamp(0, MAX_T)
        complement = bounded.complement(0, MAX_T)
        assert (bounded & complement).is_empty
        assert (bounded | complement) == IntervalSet([(0, MAX_T)])

    @given(interval_sets(), st.integers(min_value=0, max_value=MAX_T))
    def test_contains_agrees_with_membership_of_some_interval(self, a, t):
        assert a.contains(t) == any(interval.contains(t) for interval in a.intervals)
