"""Unit tests for the synthetic building and campus generators."""

import pytest

from repro.errors import SimulationError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import (
    campus,
    campus_hierarchy,
    corridor_building,
    grid_building,
    random_building,
    tree_building,
)


class TestCorridorBuilding:
    def test_structure(self):
        graph = corridor_building("B", 3)
        assert len(graph) == 6
        assert graph.entry_locations == {"B.Corridor0"}
        assert graph.is_connected()
        assert graph.has_edge("B.Corridor0", "B.Room0")
        assert graph.has_edge("B.Corridor0", "B.Corridor1")

    def test_invalid_size(self):
        with pytest.raises(SimulationError):
            corridor_building("B", 0)


class TestGridBuilding:
    def test_structure_and_entries(self):
        graph = grid_building("G", 3, 4, entries=2)
        assert len(graph) == 12
        assert graph.entry_locations == {"G.R0C0", "G.R0C1"}
        assert graph.is_connected()
        # 4-neighbour connectivity, not diagonal.
        assert graph.has_edge("G.R0C0", "G.R0C1")
        assert graph.has_edge("G.R0C0", "G.R1C0")
        assert not graph.has_edge("G.R0C0", "G.R1C1")

    def test_single_cell(self):
        graph = grid_building("G", 1, 1)
        assert len(graph) == 1

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            grid_building("G", 0, 3)
        with pytest.raises(SimulationError):
            grid_building("G", 2, 3, entries=5)


class TestTreeAndRandomBuildings:
    def test_tree_is_connected_and_acyclic(self):
        graph = tree_building("T", 15, seed=3)
        assert len(graph) == 15
        assert graph.is_connected()
        assert len(graph.edges) == 14  # a tree has n-1 edges

    def test_tree_determinism(self):
        a = tree_building("T", 10, seed=5)
        b = tree_building("T", 10, seed=5)
        assert {e.key for e in a.edges} == {e.key for e in b.edges}

    def test_random_building_connected_with_extra_edges(self):
        graph = random_building("R", 12, extra_edges=5, seed=9)
        assert graph.is_connected()
        assert len(graph.edges) >= 11
        assert len(graph.edges) <= 16

    def test_random_building_multiple_entries(self):
        graph = random_building("R", 6, entries=3, seed=1)
        assert len(graph.entry_locations) == 3

    def test_random_building_invalid_parameters(self):
        with pytest.raises(SimulationError):
            random_building("R", 3, extra_edges=-1)
        with pytest.raises(SimulationError):
            random_building("R", 3, entries=9)


class TestCampus:
    def test_campus_structure(self):
        top = campus("C", 4, rooms_per_building=4, style="grid")
        assert len(top) == 4
        hierarchy = LocationHierarchy(top)
        assert hierarchy.connected()
        assert len(hierarchy) == 16

    @pytest.mark.parametrize("style", ["grid", "corridor", "tree", "random"])
    def test_all_styles_build_valid_hierarchies(self, style):
        hierarchy = campus_hierarchy("C", 3, rooms_per_building=5, seed=2, style=style)
        assert hierarchy.connected()
        assert hierarchy.entry_locations

    def test_single_building_campus(self):
        hierarchy = campus_hierarchy("C", 1, rooms_per_building=4)
        assert hierarchy.connected()

    def test_unknown_style_rejected(self):
        with pytest.raises(SimulationError):
            campus("C", 2, style="escher")

    def test_determinism(self):
        a = campus_hierarchy("C", 3, rooms_per_building=6, seed=4, style="random")
        b = campus_hierarchy("C", 3, rooms_per_building=6, seed=4, style="random")
        assert a.primitive_names == b.primitive_names
        for name in a.primitive_names:
            assert a.neighbors(name) == b.neighbors(name)
