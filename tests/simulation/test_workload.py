"""Unit tests for the authorization and request workload generators."""

import pytest

from repro.errors import SimulationError
from repro.core.authorization import UNLIMITED_ENTRIES
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.workload import (
    AuthorizationWorkloadGenerator,
    WorkloadConfig,
    generate_subjects,
)


@pytest.fixture(scope="module")
def hierarchy():
    return campus_hierarchy("C", 3, rooms_per_building=6, seed=1)


class TestGenerateSubjects:
    def test_names_are_unique_and_ordered(self):
        subjects = generate_subjects(12)
        assert len(subjects) == len(set(subjects)) == 12
        assert subjects[0] == "user-000"
        assert subjects[11] == "user-011"

    def test_custom_prefix(self):
        assert generate_subjects(2, prefix="guard") == ["guard-000", "guard-001"]

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            generate_subjects(-1)


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0},
            {"coverage": 1.5},
            {"coverage": -0.1},
            {"window_length": 0},
            {"dwell_allowance": -1},
            {"max_entries": 0},
            {"unlimited_fraction": 2.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            WorkloadConfig(**kwargs)


class TestAuthorizationGeneration:
    def test_every_subject_gets_entry_location_grants(self, hierarchy):
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=3)
        auths = generator.authorizations_for_subject("user-001")
        granted_locations = {auth.location for auth in auths}
        assert hierarchy.entry_locations <= granted_locations

    def test_coverage_controls_interior_grants(self, hierarchy):
        sparse = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(coverage=0.0), seed=3
        ).authorizations_for_subject("u")
        dense = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(coverage=1.0), seed=3
        ).authorizations_for_subject("u")
        assert len(sparse) == len(hierarchy.entry_locations)
        assert len(dense) == len(hierarchy.primitive_names)

    def test_generated_authorizations_satisfy_definition4(self, hierarchy):
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=11)
        for auth in generator.authorizations(generate_subjects(4)):
            assert auth.exit_duration.start >= auth.entry_duration.start
            assert auth.exit_duration.end >= auth.entry_duration.end
            assert auth.max_entries is UNLIMITED_ENTRIES or auth.max_entries >= 1
            assert hierarchy.is_primitive(auth.location)

    def test_determinism(self, hierarchy):
        a = AuthorizationWorkloadGenerator(hierarchy, seed=7).authorizations(["x", "y"])
        b = AuthorizationWorkloadGenerator(hierarchy, seed=7).authorizations(["x", "y"])
        assert a == b

    def test_different_seeds_differ(self, hierarchy):
        a = AuthorizationWorkloadGenerator(hierarchy, seed=1).authorizations(["x"])
        b = AuthorizationWorkloadGenerator(hierarchy, seed=2).authorizations(["x"])
        assert a != b

    def test_wide_open_entries_flag(self, hierarchy):
        config = WorkloadConfig(wide_open_entries=True, horizon=300)
        generator = AuthorizationWorkloadGenerator(hierarchy, config=config, seed=5)
        for auth in generator.authorizations_for_subject("u"):
            if auth.location in hierarchy.entry_locations:
                assert auth.entry_duration.start == 0
                assert int(auth.entry_duration.end) == 300


class TestRequestGeneration:
    def test_requests_respect_horizon_and_pools(self, hierarchy):
        generator = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(horizon=100), seed=13
        )
        requests = generator.requests(["a", "b"], 50)
        assert len(requests) == 50
        assert all(0 <= request.time < 100 for request in requests)
        assert all(request.subject in {"a", "b"} for request in requests)
        assert all(hierarchy.is_primitive(request.location) for request in requests)

    def test_requests_with_location_pool(self, hierarchy):
        some = sorted(hierarchy.primitive_names)[:2]
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=13)
        requests = generator.requests(["a"], 20, locations=some)
        assert {request.location for request in requests} <= set(some)

    def test_invalid_request_parameters(self, hierarchy):
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=13)
        with pytest.raises(SimulationError):
            generator.requests([], 5)
        with pytest.raises(SimulationError):
            generator.requests(["a"], -1)
