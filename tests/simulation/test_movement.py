"""Unit tests for the movement simulator (compliant walks and injected violations)."""

import pytest

from repro.errors import SimulationError
from repro.core.authorization import LocationTemporalAuthorization
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.storage.movement_db import MovementKind


@pytest.fixture(scope="module")
def hierarchy():
    return campus_hierarchy("C", 2, rooms_per_building=6, seed=5)


@pytest.fixture(scope="module")
def permissive_auths(hierarchy):
    # Unlimited access everywhere: compliant walks never get stuck.
    return [
        LocationTemporalAuthorization(("walker", location), (0, 10_000), (0, 20_000))
        for location in hierarchy.primitive_names
    ]


class TestCompliantWalks:
    def test_walk_produces_alternating_consistent_records(self, hierarchy, permissive_auths):
        simulator = MovementSimulator(hierarchy, permissive_auths, seed=1)
        trace = simulator.walk("walker", steps=8, dwell=2)
        assert len(trace) >= 2
        # Every ENTER is eventually matched; times never decrease.
        times = [record.time for record in trace]
        assert times == sorted(times)
        # Consecutive entered locations are adjacent in the hierarchy.
        entered = [r.location for r in trace if r.kind is MovementKind.ENTER]
        for a, b in zip(entered, entered[1:]):
            assert hierarchy.are_adjacent(a, b)

    def test_compliant_walk_has_no_violations(self, hierarchy, permissive_auths):
        simulator = MovementSimulator(hierarchy, permissive_auths, seed=2)
        trace = simulator.walk("walker", steps=10)
        assert trace.truth.violation_count == 0

    def test_walk_without_authorizations_never_starts(self, hierarchy):
        simulator = MovementSimulator(hierarchy, [], seed=3)
        trace = simulator.walk("stranger", steps=5, p_tailgate=0.0)
        assert len(trace) == 0
        assert trace.truth.violation_count == 0

    def test_walk_determinism(self, hierarchy, permissive_auths):
        a = MovementSimulator(hierarchy, permissive_auths, seed=9).walk("walker", steps=6)
        b = MovementSimulator(hierarchy, permissive_auths, seed=9).walk("walker", steps=6)
        assert a.records == b.records

    def test_invalid_parameters(self, hierarchy, permissive_auths):
        simulator = MovementSimulator(hierarchy, permissive_auths)
        with pytest.raises(SimulationError):
            simulator.walk("walker", steps=-1)
        with pytest.raises(SimulationError):
            simulator.walk("walker", dwell=0)
        with pytest.raises(SimulationError):
            simulator.walk("walker", p_tailgate=2.0)


class TestInjectedViolations:
    def test_tailgating_produces_ground_truth_entries(self, hierarchy):
        simulator = MovementSimulator(hierarchy, [], seed=4)
        trace = simulator.walk("intruder", steps=6, p_tailgate=1.0)
        assert len(trace) > 0
        assert len(trace.truth.unauthorized_entries) >= 1
        # Every labelled unauthorized entry corresponds to an ENTER record.
        entered = {(r.time, r.subject, r.location) for r in trace if r.kind is MovementKind.ENTER}
        assert set(trace.truth.unauthorized_entries) <= entered

    def test_overstay_injection(self, hierarchy):
        auths = [
            LocationTemporalAuthorization(("sleepy", location), (0, 100), (0, 120))
            for location in hierarchy.primitive_names
        ]
        simulator = MovementSimulator(hierarchy, auths, seed=5)
        trace = simulator.walk("sleepy", steps=4, p_overstay=1.0)
        assert len(trace.truth.overstays) >= 1
        # The labelled overstay exits after the recorded deadline.
        for subject, location, deadline in trace.truth.overstays:
            exits = [
                r for r in trace
                if r.kind is MovementKind.EXIT and r.subject == subject and r.location == location
            ]
            assert any(r.time > deadline for r in exits)

    def test_entry_budget_is_respected_by_compliant_walker(self, hierarchy):
        # One-entry budgets: once used, the walker cannot re-enter, so at most
        # one ENTER per location appears in a fully compliant walk.
        auths = [
            LocationTemporalAuthorization(("walker", location), (0, 10_000), (0, 20_000), 1)
            for location in hierarchy.primitive_names
        ]
        simulator = MovementSimulator(hierarchy, auths, seed=6)
        trace = simulator.walk("walker", steps=20, p_tailgate=0.0)
        entered = [r.location for r in trace if r.kind is MovementKind.ENTER]
        assert len(entered) == len(set(entered))


class TestPopulationTraces:
    def test_population_trace_merges_and_sorts(self, hierarchy):
        subjects = generate_subjects(6)
        generator = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(horizon=400, coverage=0.9), seed=8
        )
        auths = generator.authorizations(subjects)
        simulator = MovementSimulator(hierarchy, auths, seed=8)
        trace = simulator.population_trace(subjects, steps=5, p_tailgate=0.2, p_overstay=0.2)
        times = [record.time for record in trace]
        assert times == sorted(times)
        assert {record.subject for record in trace} <= set(subjects)
        assert trace.truth.violation_count >= 0
