"""Unit tests for the four operator families of Definition 5."""

import pytest

from repro.errors import RuleError
from repro.core.authorization import UNLIMITED_ENTRIES
from repro.core.operators.location import (
    AllRouteFrom,
    CustomLocationOperator,
    EntryLocationsOf,
    LocationsWithTag,
    MembersOfComposite,
    NeighborsOf,
    SAME_LOCATION,
)
from repro.core.operators.numeric import (
    AddEntries,
    ConstantEntries,
    CustomEntryExpression,
    SAME_ENTRIES,
    ScaleEntries,
    UnlimitedEntries,
)
from repro.core.operators.subject import (
    CustomSubjectOperator,
    ManagementChainOf,
    MembersOfGroup,
    SAME_SUBJECT,
    SubjectsWithRole,
    SubordinatesOf,
    SupervisorOf,
)
from repro.core.operators.temporal import (
    CustomTemporalOperator,
    Intersection,
    Union_,
    WHENEVER,
    Whenever,
    WheneverNot,
)
from repro.core.subjects import SubjectDirectory
from repro.locations.layouts import ntu_campus_hierarchy
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


@pytest.fixture
def directory():
    d = SubjectDirectory()
    d.set_supervisor("Alice", "Bob")
    d.set_supervisor("Bob", "Carol")
    d.add_to_group("cleaners", "Dave", "Eve")
    d.add_subject("Guard1", roles={"guard"})
    return d


class TestTemporalOperators:
    def test_whenever_returns_input(self):
        assert Whenever()((5, 20)) == [TimeInterval(5, 20)]
        assert WHENEVER(TimeInterval(0, FOREVER)) == [TimeInterval(0, FOREVER)]

    def test_whenever_not_two_pieces(self):
        # WHENEVERNOT([t0,t1]) = [t_r, t0-1] and [t1+1, ∞]
        assert WheneverNot()((10, 20), 3) == [TimeInterval(3, 9), TimeInterval(21, FOREVER)]

    def test_whenever_not_when_base_starts_at_rule_validity(self):
        assert WheneverNot()((0, 20), 0) == [TimeInterval(21, FOREVER)]

    def test_whenever_not_of_unbounded_interval(self):
        assert WheneverNot()(TimeInterval(10, FOREVER), 0) == [TimeInterval(0, 9)]

    def test_union_merging_and_disjoint(self):
        assert Union_((15, 30))((5, 20)) == [TimeInterval(5, 30)]
        assert Union_((40, 50))((5, 20)) == [TimeInterval(5, 20), TimeInterval(40, 50)]

    def test_intersection_example2(self):
        assert Intersection((10, 30))((5, 20)) == [TimeInterval(10, 20)]

    def test_intersection_disjoint_gives_nothing(self):
        assert Intersection((30, 40))((5, 20)) == []

    def test_custom_temporal_operator(self):
        shift = CustomTemporalOperator(lambda interval, t_r: interval.shift(5), "SHIFT5")
        assert shift((0, 10)) == [TimeInterval(5, 15)]
        assert shift.name == "SHIFT5"
        nothing = CustomTemporalOperator(lambda interval, t_r: None)
        assert nothing((0, 10)) == []
        many = CustomTemporalOperator(lambda interval, t_r: [(0, 1), (3, 4)])
        assert many((0, 10)) == [TimeInterval(0, 1), TimeInterval(3, 4)]

    def test_coercion_error(self):
        with pytest.raises(RuleError):
            Whenever()("garbage")


class TestSubjectOperators:
    def test_same_subject(self, directory):
        assert SAME_SUBJECT("Alice", directory) == ["Alice"]

    def test_supervisor_of(self, directory):
        assert SupervisorOf()("Alice", directory) == ["Bob"]
        assert SupervisorOf()("Carol", directory) == []

    def test_subordinates_of(self, directory):
        assert SubordinatesOf()("Bob", directory) == ["Alice"]

    def test_management_chain(self, directory):
        assert ManagementChainOf()("Alice", directory) == ["Bob", "Carol"]

    def test_members_of_group(self, directory):
        assert MembersOfGroup("cleaners")("Alice", directory) == ["Dave", "Eve"]
        assert "cleaners" in MembersOfGroup("cleaners").name

    def test_subjects_with_role(self, directory):
        assert SubjectsWithRole("guard")("Alice", directory) == ["Guard1"]

    def test_custom_subject_operator(self, directory):
        buddy = CustomSubjectOperator(lambda subject, d: f"{subject}-buddy", "BUDDY")
        assert buddy("Alice", directory) == ["Alice-buddy"]
        nobody = CustomSubjectOperator(lambda subject, d: None)
        assert nobody("Alice", directory) == []


class TestLocationOperators:
    def test_same_location(self, campus):
        assert SAME_LOCATION("CAIS", campus) == ["CAIS"]

    def test_all_route_from_shortest(self, campus):
        # Example 3: grant all locations on the route from SCE.GO to CAIS.
        derived = AllRouteFrom("SCE.GO")("CAIS", campus)
        assert derived == ["CAIS", "SCE.GO", "SCE.SectionA", "SCE.SectionB"]

    def test_all_route_from_all_routes(self, campus):
        derived = AllRouteFrom("SCE.GO", shortest_only=False, max_length=5)("CAIS", campus)
        assert {"CAIS", "SCE.GO", "SCE.SectionA", "SCE.SectionB"} <= set(derived)

    def test_neighbors_of(self, campus):
        derived = NeighborsOf()("CAIS", campus)
        assert derived == ["CAIS", "SCE.SectionB"]
        without_base = NeighborsOf(include_base=False)("CAIS", campus)
        assert without_base == ["SCE.SectionB"]

    def test_members_of_composite(self, campus):
        derived = MembersOfComposite("SCE")("CAIS", campus)
        assert set(derived) == campus.members_of("SCE")
        implicit = MembersOfComposite()("Lab1", campus)
        assert set(implicit) == campus.members_of("EEE")

    def test_locations_with_tag(self, campus):
        labs = LocationsWithTag("lab")("CAIS", campus)
        assert set(labs) == {"CAIS", "CHIPES", "Lab1", "Lab2"}

    def test_entry_locations_of(self, campus):
        assert set(EntryLocationsOf()("CAIS", campus)) == set(campus.entry_locations)
        assert set(EntryLocationsOf("EEE")("CAIS", campus)) == {"EEE.GO", "EEE.SectionC"}

    def test_custom_location_operator(self, campus):
        upper = CustomLocationOperator(lambda location, h: [location], "ID")
        assert upper("CAIS", campus) == ["CAIS"]
        nothing = CustomLocationOperator(lambda location, h: None)
        assert nothing("CAIS", campus) == []


class TestEntryExpressions:
    def test_same_entries(self):
        assert SAME_ENTRIES(3) == 3
        assert SAME_ENTRIES(UNLIMITED_ENTRIES) is UNLIMITED_ENTRIES

    def test_constant(self):
        assert ConstantEntries(2)(99) == 2
        with pytest.raises(RuleError):
            ConstantEntries(0)

    def test_unlimited(self):
        assert UnlimitedEntries()(1) is UNLIMITED_ENTRIES

    def test_add(self):
        assert AddEntries(2)(3) == 5
        assert AddEntries(-10)(3) == 1  # floored at one entry
        assert AddEntries(1)(UNLIMITED_ENTRIES) is UNLIMITED_ENTRIES

    def test_scale(self):
        assert ScaleEntries(2.0)(3) == 6
        assert ScaleEntries(0.1)(3) == 1
        assert ScaleEntries(0.5)(UNLIMITED_ENTRIES) is UNLIMITED_ENTRIES
        with pytest.raises(RuleError):
            ScaleEntries(0)

    def test_custom_expression_is_validated(self):
        doubler = CustomEntryExpression(lambda n: n * 2, "DOUBLE")
        assert doubler(2) == 4
        broken = CustomEntryExpression(lambda n: -1)
        with pytest.raises(RuleError):
            broken(2)
