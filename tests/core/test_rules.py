"""Unit tests for authorization rules (Definition 5) and the paper's Examples 1-3."""

import pytest

from repro.errors import RuleError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.operators.location import AllRouteFrom
from repro.core.operators.numeric import ConstantEntries
from repro.core.operators.subject import SupervisorOf
from repro.core.operators.temporal import Intersection, WheneverNot, Whenever
from repro.core.rules import AuthorizationRule, OperatorTuple, RuleContext
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


@pytest.fixture
def context(campus):
    return RuleContext(paper.paper_directory(), campus, now=10)


@pytest.fixture
def a1():
    return paper.example_base_authorization_a1()


class TestOperatorTuple:
    def test_defaults_are_identity_operators(self):
        operators = OperatorTuple()
        assert operators.op_entry((1, 2)) == [TimeInterval(1, 2)]
        assert operators.op_subject.name == "SAME_SUBJECT"
        assert operators.op_location.name == "SAME_LOCATION"
        assert operators.exp_n(5) == 5

    def test_type_checking(self):
        with pytest.raises(RuleError):
            OperatorTuple(op_entry="WHENEVER")
        with pytest.raises(RuleError):
            OperatorTuple(op_subject="Supervisor_Of")
        with pytest.raises(RuleError):
            OperatorTuple(op_location=42)
        with pytest.raises(RuleError):
            OperatorTuple(exp_n=2)


class TestRuleConstruction:
    def test_sequence_form_of_operators(self, a1):
        rule = AuthorizationRule(7, a1, (Whenever(), Whenever(), SupervisorOf(), None, ConstantEntries(2)))
        assert rule.operators.op_subject.name == "Supervisor_Of"
        assert rule.operators.op_location.name == "SAME_LOCATION"

    def test_too_many_operators_rejected(self, a1):
        with pytest.raises(RuleError):
            AuthorizationRule(7, a1, (None,) * 6)

    def test_invalid_valid_from(self, a1):
        with pytest.raises(RuleError):
            AuthorizationRule(-1, a1)

    def test_invalid_base(self):
        with pytest.raises(RuleError):
            AuthorizationRule(0, 42)

    def test_base_by_id_requires_binding(self, context):
        rule = AuthorizationRule(0, "a1")
        assert rule.base is None
        with pytest.raises(RuleError):
            rule.derive(context)

    def test_bind_base(self, a1, context):
        rule = AuthorizationRule(0, "a1")
        rule.bind_base(a1)
        assert rule.base is a1
        assert len(rule.derive(context)) >= 1

    def test_rebinding_conflicting_base_rejected(self, a1):
        rule = AuthorizationRule(0, a1)
        other = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 1), (0, 2), auth_id="other")
        with pytest.raises(RuleError):
            rule.bind_base(other)

    def test_string_forms(self, a1):
        rule = paper.example_rule_r1(a1)
        assert "a1" in str(rule)
        assert "r1" in repr(rule)


class TestPaperExamples:
    def test_example1_supervisor_gets_same_authorization(self, a1, context):
        batch = paper.example_rule_r1(a1).derive(context)
        assert len(batch) == 1
        derived = batch.derived[0]
        assert derived == paper.expected_derived_a2()
        assert derived.subject == "Bob"
        assert derived.derived_from == "a1"
        assert derived.rule_id == "r1"

    def test_example2_intersection_narrows_entry_window(self, a1, context):
        batch = paper.example_rule_r2(a1).derive(context)
        assert len(batch) == 1
        assert batch.derived[0] == paper.expected_derived_a3()
        assert batch.derived[0].entry_duration == TimeInterval(10, 20)

    def test_example3_all_route_from(self, a1, context):
        batch = paper.example_rule_r3(a1).derive(context)
        derived_locations = {auth.location for auth in batch.derived}
        # The route from SCE.GO to CAIS covers these locations (see
        # EXPERIMENTS.md for the discrepancy with the paper's listed set).
        assert derived_locations == {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}
        assert all(auth.subject == "Alice" for auth in batch.derived)
        assert all(auth.max_entries == 2 for auth in batch.derived)

    def test_rule_not_yet_valid_derives_nothing(self, a1, campus):
        early = RuleContext(paper.paper_directory(), campus, now=3)
        batch = paper.example_rule_r1(a1).derive(early)
        assert len(batch) == 0

    def test_supervisor_change_changes_derivation(self, a1, campus):
        directory = paper.paper_directory()
        directory.set_supervisor("Alice", "Carol")
        context = RuleContext(directory, campus, now=10)
        batch = paper.example_rule_r1(a1).derive(context)
        assert [auth.subject for auth in batch.derived] == ["Carol"]


class TestDerivationMechanics:
    def test_missing_supervisor_derives_nothing(self, a1, campus):
        directory = paper.paper_directory()
        # Carol has no supervisor on record.
        base = LocationTemporalAuthorization(("Carol", "CAIS"), (5, 20), (15, 50), 2)
        directory.add_subject("Carol")
        rule = AuthorizationRule(0, base, OperatorTuple(op_subject=SupervisorOf()))
        batch = rule.derive(RuleContext(directory, campus, now=5))
        assert len(batch) == 0

    def test_whenever_not_produces_multiple_derived_authorizations(self, campus):
        base = LocationTemporalAuthorization(("Alice", "CAIS"), (10, 20), (10, 50), 2)
        rule = AuthorizationRule(
            0,
            base,
            OperatorTuple(op_entry=WheneverNot(), op_exit=Whenever()),
        )
        context = RuleContext(paper.paper_directory(), campus, now=0)
        batch = rule.derive(context)
        # WHENEVERNOT([10,20]) = [0,9] and [21,∞]; only the combinations that
        # satisfy Definition 4 (exit not before entry) survive.
        entries = {auth.entry_duration for auth in batch.derived}
        assert TimeInterval(0, 9) in entries
        total_combinations = len(batch.derived) + len(batch.skipped)
        assert total_combinations == 2
        assert all(
            skip.reason for skip in batch.skipped
        )

    def test_cartesian_product_over_subjects_and_locations(self, campus):
        directory = paper.paper_directory()
        directory.set_supervisor("Dave", "Bob")
        base = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 20), (15, 50), 2, auth_id="base")
        rule = AuthorizationRule(
            0,
            base,
            OperatorTuple(op_subject=SupervisorOf(), op_location=AllRouteFrom("SCE.SectionB")),
        )
        batch = rule.derive(RuleContext(directory, campus, now=1))
        # One supervisor x two locations on the route (SectionB, CAIS).
        assert {(auth.subject, auth.location) for auth in batch.derived} == {
            ("Bob", "SCE.SectionB"),
            ("Bob", "CAIS"),
        }

    def test_derived_authorizations_inherit_created_at(self, a1, context):
        batch = paper.example_rule_r1(a1).derive(context)
        assert all(auth.created_at == a1.created_at for auth in batch.derived)
