"""Unit tests for subjects and the subject directory (user profiles)."""

import pytest

from repro.errors import AuthorizationError, UnknownSubjectError
from repro.core.subjects import Subject, SubjectDirectory, subject_name


class TestSubject:
    def test_basic(self):
        alice = Subject("Alice", "Alice L.", {"researcher"}, {"office": "CAIS"})
        assert alice.name == "Alice"
        assert alice.has_role("researcher")
        assert not alice.has_role("guard")
        assert alice.attribute("office") == "CAIS"
        assert alice.attribute("missing", "default") == "default"
        assert str(alice) == "Alice"

    def test_equality_and_hash(self):
        assert Subject("Alice") == Subject("Alice")
        assert hash(Subject("Alice")) == hash(Subject("Alice"))

    @pytest.mark.parametrize("bad", ["", " padded", None, 42])
    def test_invalid_names(self, bad):
        with pytest.raises(AuthorizationError):
            Subject(bad)

    def test_subject_name_helper(self):
        assert subject_name("Bob") == "Bob"
        assert subject_name(Subject("Bob")) == "Bob"
        with pytest.raises(AuthorizationError):
            subject_name("")


class TestDirectoryRegistration:
    def test_add_and_get(self):
        directory = SubjectDirectory()
        directory.add_subject("Alice", roles={"researcher"})
        assert directory.get("Alice").has_role("researcher")
        assert "Alice" in directory
        assert len(directory) == 1

    def test_idempotent_re_registration(self):
        directory = SubjectDirectory()
        directory.add_subject(Subject("Alice"))
        directory.add_subject(Subject("Alice"))
        assert len(directory) == 1

    def test_conflicting_re_registration_rejected(self):
        directory = SubjectDirectory()
        directory.add_subject(Subject("Alice"))
        with pytest.raises(AuthorizationError):
            directory.add_subject(Subject("Alice", roles={"guard"}))

    def test_unknown_subject_lookup(self):
        with pytest.raises(UnknownSubjectError):
            SubjectDirectory().get("Ghost")

    def test_iteration_and_names(self):
        directory = SubjectDirectory()
        directory.add_subject("Alice")
        directory.add_subject("Bob")
        assert {subject.name for subject in directory} == {"Alice", "Bob"}
        assert directory.subject_names == {"Alice", "Bob"}


class TestSupervision:
    def test_supervisor_of(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        assert directory.supervisor_of("Alice").name == "Bob"
        assert directory.supervisor_of("Bob") is None

    def test_subordinates_of(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        directory.set_supervisor("Carol", "Bob")
        assert [s.name for s in directory.subordinates_of("Bob")] == ["Alice", "Carol"]
        assert directory.subordinates_of("Alice") == []

    def test_management_chain(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        directory.set_supervisor("Bob", "Carol")
        assert [s.name for s in directory.management_chain_of("Alice")] == ["Bob", "Carol"]

    def test_self_supervision_rejected(self):
        directory = SubjectDirectory()
        with pytest.raises(AuthorizationError):
            directory.set_supervisor("Alice", "Alice")

    def test_cycles_rejected(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        directory.set_supervisor("Bob", "Carol")
        with pytest.raises(AuthorizationError):
            directory.set_supervisor("Carol", "Alice")

    def test_supervisor_of_unknown_subject(self):
        with pytest.raises(UnknownSubjectError):
            SubjectDirectory().supervisor_of("Ghost")

    def test_reassigning_supervisor(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        directory.set_supervisor("Alice", "Carol")
        assert directory.supervisor_of("Alice").name == "Carol"
        assert directory.subordinates_of("Bob") == []


class TestGroupsAndRoles:
    def test_groups(self):
        directory = SubjectDirectory()
        directory.add_to_group("cleaners", "Dave", "Eve")
        assert [s.name for s in directory.members_of("cleaners")] == ["Dave", "Eve"]
        assert directory.groups_of("Dave") == {"cleaners"}
        assert directory.groups() == {"cleaners"}
        assert directory.members_of("unknown") == []

    def test_invalid_group_name(self):
        with pytest.raises(AuthorizationError):
            SubjectDirectory().add_to_group("", "Dave")

    def test_groups_of_unknown_subject(self):
        with pytest.raises(UnknownSubjectError):
            SubjectDirectory().groups_of("Ghost")

    def test_with_role(self):
        directory = SubjectDirectory()
        directory.add_subject("Guard1", roles={"guard"})
        directory.add_subject("Guard2", roles={"guard"})
        directory.add_subject("Alice")
        assert [s.name for s in directory.with_role("guard")] == ["Guard1", "Guard2"]
        assert directory.with_role("janitor") == []
