"""Unit tests for JSON (de)serialization of authorizations."""

import json

import pytest

from repro.errors import InvalidAuthorizationError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.serialization import (
    authorization_from_dict,
    authorization_to_dict,
    dumps_authorizations,
    load_authorizations,
    loads_authorizations,
    save_authorizations,
)
from repro.paper import fixtures as paper
from repro.temporal.chronon import FOREVER


class TestRoundTrips:
    def test_single_authorization_roundtrip(self):
        original = LocationTemporalAuthorization(
            ("Alice", "CAIS"), (5, 40), (20, 100), 2, created_at=3, auth_id="A1", derived_from="base", rule_id="r1"
        )
        restored = authorization_from_dict(authorization_to_dict(original))
        assert restored == original
        assert restored.auth_id == "A1"
        assert restored.derived_from == "base"
        assert restored.rule_id == "r1"
        assert restored.created_at == 3

    def test_unbounded_and_unlimited_roundtrip(self):
        original = LocationTemporalAuthorization(("Alice", "CAIS"), (5, FOREVER), None)
        restored = authorization_from_dict(authorization_to_dict(original))
        assert restored.entry_duration.is_unbounded
        assert restored.exit_duration.is_unbounded
        assert restored.max_entries is UNLIMITED_ENTRIES

    def test_list_roundtrip_via_strings(self):
        originals = paper.section5_authorizations() + paper.table1_authorizations()
        restored = loads_authorizations(dumps_authorizations(originals))
        assert sorted(restored, key=lambda a: a.auth_id) == sorted(originals, key=lambda a: a.auth_id)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "auths.json")
        save_authorizations(paper.table1_authorizations(), path)
        restored = load_authorizations(path)
        assert {auth.auth_id for auth in restored} == {"T1-A", "T1-B", "T1-C", "T1-D"}


class TestDocumentFormat:
    def test_json_shape(self):
        text = dumps_authorizations(paper.section5_authorizations())
        documents = json.loads(text)
        assert isinstance(documents, list)
        assert {"auth_id", "subject", "location", "entry_duration", "exit_duration", "max_entries"} <= set(
            documents[0]
        )
        # Stable ordering by auth_id.
        assert [d["auth_id"] for d in documents] == sorted(d["auth_id"] for d in documents)

    def test_defaults_in_sparse_documents(self):
        auth = authorization_from_dict(
            {"subject": "Alice", "location": "CAIS", "entry_duration": [5, 40]}
        )
        assert auth.exit_duration.start == 5
        assert auth.exit_duration.is_unbounded
        assert auth.max_entries is UNLIMITED_ENTRIES

    @pytest.mark.parametrize(
        "document",
        [
            "not a dict",
            {},
            {"subject": "Alice"},
            {"subject": "Alice", "location": "CAIS", "entry_duration": [5]},
            {"subject": "Alice", "location": "CAIS", "entry_duration": "soon"},
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(InvalidAuthorizationError):
            authorization_from_dict(document)

    def test_non_list_top_level_rejected(self):
        with pytest.raises(InvalidAuthorizationError):
            loads_authorizations('{"subject": "Alice"}')
