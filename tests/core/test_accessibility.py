"""Unit tests for Algorithm 1 (FindInaccessible) including the Table 2 reproduction."""

import pytest

from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex
from repro.locations.builder import LocationGraphBuilder
from repro.locations.layouts import figure4_graph, figure4_hierarchy, ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.storage.authorization_db import InMemoryAuthorizationDatabase
from repro.temporal.interval_set import IntervalSet


class TestFigure4WorkedExample:
    """The paper's Section 6 example: Table 1 authorizations on the Figure 4 graph."""

    def test_only_c_is_inaccessible(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        assert report.inaccessible == paper.figure4_expected_inaccessible()
        assert report.accessible == {"A", "B", "D"}

    def test_final_grant_and_departure_times_match_table2(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        for location, (grant, departure) in paper.table2_expected_times().items():
            assert report.grant_time(location) == grant, location
            assert report.departure_time(location) == departure, location

    def test_accepts_bare_location_graph(self):
        report = find_inaccessible(figure4_graph(), "Alice", paper.table1_authorizations())
        assert report.inaccessible == {"C"}

    def test_accepts_authorization_database_source(self):
        db = InMemoryAuthorizationDatabase(paper.table1_authorizations())
        report = find_inaccessible(figure4_hierarchy(), "Alice", db)
        assert report.inaccessible == {"C"}

    def test_trace_reproduces_the_update_sequence(self):
        report = find_inaccessible(
            figure4_hierarchy(), "Alice", paper.table1_authorizations(), trace=True
        )
        assert report.trace, "trace requested but empty"
        updated = [row.updated for row in report.trace]
        # The entry location is processed first, then B and D, then their
        # neighbours; every location is updated at least once.
        assert updated[0] == "A"
        assert set(updated) == {"A", "B", "C", "D"}
        # After the update of B the value matches the Table 2 row for B.
        row_after_b = next(row for row in report.trace if row.updated == "B")
        assert row_after_b.grants["B"] == IntervalSet([(40, 50)])
        assert row_after_b.departures["B"] == IntervalSet([(55, 80)])
        # C stays null through the whole trace.
        assert all(row.grants["C"].is_empty for row in report.trace)
        # Rows render to text for the benchmark report.
        assert "Update" in report.trace[0].describe()

    def test_trace_disabled_by_default(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        assert report.trace == ()

    def test_report_helpers(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        assert report.is_inaccessible("C")
        assert not report.is_inaccessible("A")
        assert report.iterations >= 1
        assert report.subject == "Alice"
        assert report.times["A"].accessible


class TestDegenerateAndEdgeCases:
    def test_no_authorizations_means_everything_inaccessible(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", [])
        assert report.inaccessible == {"A", "B", "C", "D"}

    def test_other_subjects_authorizations_are_ignored(self):
        report = find_inaccessible(figure4_hierarchy(), "Mallory", paper.table1_authorizations())
        assert report.inaccessible == {"A", "B", "C", "D"}

    def test_entry_location_with_null_exit_blocks_the_rest(self):
        # "an entry location is inaccessible to a subject if it has null exit
        # duration for its authorization" — here A has no authorization at
        # all, so A itself and everything beyond is inaccessible.
        auths = [
            LocationTemporalAuthorization(("Alice", "B"), (0, 10), (0, 20)),
            LocationTemporalAuthorization(("Alice", "C"), (0, 10), (0, 20)),
            LocationTemporalAuthorization(("Alice", "D"), (0, 10), (0, 20)),
        ]
        report = find_inaccessible(figure4_hierarchy(), "Alice", auths)
        assert report.inaccessible == {"A", "B", "C", "D"}

    def test_unlimited_defaults_make_everything_reachable(self):
        hierarchy = ntu_campus_hierarchy()
        auths = [
            LocationTemporalAuthorization(("Alice", location), None, None)
            for location in hierarchy.primitive_names
        ]
        report = find_inaccessible(hierarchy, "Alice", auths)
        assert report.inaccessible == frozenset()

    def test_missing_interior_authorization_blocks_only_unreachable_part(self):
        # Line graph E - F - G where F has no authorization: G becomes
        # unreachable even though G itself is authorized.
        graph = (
            LocationGraphBuilder("Line")
            .add_path("E", "F", "G")
            .mark_entry("E")
            .build()
        )
        auths = [
            LocationTemporalAuthorization(("Alice", "E"), (0, 10), (0, 20)),
            LocationTemporalAuthorization(("Alice", "G"), (0, 10), (0, 20)),
        ]
        report = find_inaccessible(graph, "Alice", auths)
        assert report.inaccessible == {"F", "G"}
        assert report.accessible == {"E"}

    def test_second_entry_location_rescues_reachability(self):
        # Same line graph but with G also an entry location: G is reachable
        # directly, F stays unreachable (no authorization).
        graph = (
            LocationGraphBuilder("Line")
            .add_path("E", "F", "G")
            .mark_entry("E", "G")
            .build()
        )
        auths = [
            LocationTemporalAuthorization(("Alice", "E"), (0, 10), (0, 20)),
            LocationTemporalAuthorization(("Alice", "G"), (0, 10), (0, 20)),
        ]
        report = find_inaccessible(graph, "Alice", auths)
        assert report.inaccessible == {"F"}

    def test_time_gap_makes_destination_unreachable(self):
        # E reachable only during [0,10] with exit by 20, but F's entry window
        # opens at 50 — too late to get there through E.
        graph = LocationGraphBuilder("Gap").add_path("E", "F").mark_entry("E").build()
        auths = [
            LocationTemporalAuthorization(("Alice", "E"), (0, 10), (0, 20)),
            LocationTemporalAuthorization(("Alice", "F"), (50, 60), (50, 80)),
        ]
        report = find_inaccessible(graph, "Alice", auths)
        assert report.inaccessible == {"F"}

    def test_multiple_routes_are_considered(self):
        # C unreachable via B (timing) but reachable via D.
        hierarchy = figure4_hierarchy()
        auths = [
            LocationTemporalAuthorization(("Alice", "A"), (0, 10), (5, 30)),
            LocationTemporalAuthorization(("Alice", "B"), (100, 110), (100, 120)),
            LocationTemporalAuthorization(("Alice", "D"), (10, 30), (15, 40)),
            LocationTemporalAuthorization(("Alice", "C"), (20, 45), (20, 60)),
        ]
        report = find_inaccessible(hierarchy, "Alice", auths)
        assert "C" in report.accessible
        assert "B" in report.inaccessible

    def test_order_key_changes_trace_not_result(self):
        auths = paper.table1_authorizations()
        default = find_inaccessible(figure4_hierarchy(), "Alice", auths, trace=True)
        reordered = find_inaccessible(
            figure4_hierarchy(), "Alice", auths, trace=True, order_key=lambda name: -ord(name[0])
        )
        assert default.inaccessible == reordered.inaccessible
        for location in "ABCD":
            assert default.grant_time(location) == reordered.grant_time(location)

    def test_index_source_equivalent_to_list_source(self):
        auths = paper.table1_authorizations()
        from_list = find_inaccessible(figure4_hierarchy(), "Alice", auths)
        from_index = find_inaccessible(figure4_hierarchy(), "Alice", AuthorizationIndex(auths))
        assert from_list.inaccessible == from_index.inaccessible
