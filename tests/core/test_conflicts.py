"""Unit tests for conflict detection and resolution (the paper's deferred future work)."""

import pytest

from repro.errors import ConflictError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.conflicts import (
    ConflictKind,
    ResolutionStrategy,
    detect_conflicts,
    merge_pair,
    resolve_conflicts,
)
from repro.temporal.interval import TimeInterval


def auth(subject, location, entry, exit_, n=1, **kwargs):
    return LocationTemporalAuthorization((subject, location), entry, exit_, n, **kwargs)


class TestDetection:
    def test_paper_example_overlap(self):
        # The paper's example: Alice may enter CAIS during [5, 10] per one
        # authorization and during [10, 11] per another.
        first = auth("Alice", "CAIS", (5, 10), (5, 20))
        second = auth("Alice", "CAIS", (10, 11), (10, 30))
        conflicts = detect_conflicts([first, second])
        assert len(conflicts) == 1
        assert conflicts[0].kind is ConflictKind.OVERLAPPING_ENTRY
        assert conflicts[0].subject == "Alice"
        assert conflicts[0].location == "CAIS"
        assert conflicts[0].involves(first.auth_id)

    def test_duplicates_detected(self):
        first = auth("Alice", "CAIS", (5, 10), (5, 20))
        second = auth("Alice", "CAIS", (5, 10), (5, 20))
        conflicts = detect_conflicts([first, second])
        assert conflicts[0].kind is ConflictKind.DUPLICATE

    def test_adjacent_detected_and_optional(self):
        first = auth("Alice", "CAIS", (5, 9), (5, 20))
        second = auth("Alice", "CAIS", (10, 11), (10, 30))
        assert detect_conflicts([first, second])[0].kind is ConflictKind.ADJACENT_ENTRY
        assert detect_conflicts([first, second], include_adjacent=False) == []

    def test_different_subjects_or_locations_never_conflict(self):
        conflicts = detect_conflicts(
            [
                auth("Alice", "CAIS", (5, 10), (5, 20)),
                auth("Bob", "CAIS", (5, 10), (5, 20)),
                auth("Alice", "CHIPES", (5, 10), (5, 20)),
            ]
        )
        assert conflicts == []

    def test_disjoint_windows_do_not_conflict(self):
        conflicts = detect_conflicts(
            [
                auth("Alice", "CAIS", (5, 10), (5, 20)),
                auth("Alice", "CAIS", (50, 60), (50, 80)),
            ]
        )
        assert conflicts == []


class TestMerge:
    def test_merge_combines_windows_and_budget(self):
        first = auth("Alice", "CAIS", (5, 10), (5, 20), 1)
        second = auth("Alice", "CAIS", (10, 11), (10, 30), 2)
        merged = merge_pair(first, second)
        assert merged.entry_duration == TimeInterval(5, 11)
        assert merged.exit_duration == TimeInterval(5, 30)
        assert merged.max_entries == 2
        assert merged.subject == "Alice"

    def test_merge_with_unlimited_budget(self):
        first = auth("Alice", "CAIS", (5, 10), (5, 20), 1)
        second = LocationTemporalAuthorization(("Alice", "CAIS"), (8, 12), (8, 30))
        assert merge_pair(first, second).max_entries is UNLIMITED_ENTRIES

    def test_merge_across_pairs_rejected(self):
        with pytest.raises(ConflictError):
            merge_pair(
                auth("Alice", "CAIS", (5, 10), (5, 20)),
                auth("Bob", "CAIS", (5, 10), (5, 20)),
            )


class TestResolution:
    def test_merge_strategy_collapses_chain(self):
        chain = [
            auth("Alice", "CAIS", (1, 5), (1, 10)),
            auth("Alice", "CAIS", (4, 8), (4, 12)),
            auth("Alice", "CAIS", (7, 12), (7, 20)),
        ]
        resolved, conflicts = resolve_conflicts(chain, strategy=ResolutionStrategy.MERGE)
        assert len(resolved) == 1
        assert resolved[0].entry_duration == TimeInterval(1, 12)
        assert conflicts  # at least the conflicts that were fixed

    def test_keep_first_strategy(self):
        older = auth("Alice", "CAIS", (5, 10), (5, 20), created_at=0)
        newer = auth("Alice", "CAIS", (8, 12), (8, 30), created_at=5)
        resolved, _ = resolve_conflicts([newer, older], strategy=ResolutionStrategy.KEEP_FIRST)
        assert resolved == [older]

    def test_prefer_explicit_strategy(self):
        explicit = auth("Alice", "CAIS", (5, 10), (5, 20), created_at=5)
        derived = LocationTemporalAuthorization(
            ("Alice", "CAIS"), (8, 12), (8, 30), 1, created_at=0, derived_from="base", rule_id="r"
        )
        resolved, _ = resolve_conflicts([derived, explicit], strategy=ResolutionStrategy.PREFER_EXPLICIT)
        assert resolved == [explicit]

    def test_prefer_explicit_falls_back_to_created_at(self):
        older = auth("Alice", "CAIS", (5, 10), (5, 20), created_at=0)
        newer = auth("Alice", "CAIS", (8, 12), (8, 30), created_at=3)
        resolved, _ = resolve_conflicts([newer, older], strategy=ResolutionStrategy.PREFER_EXPLICIT)
        assert resolved == [older]

    def test_no_conflicts_returns_input_unchanged(self):
        pool = [auth("Alice", "CAIS", (1, 5), (1, 10)), auth("Bob", "CAIS", (1, 5), (1, 10))]
        resolved, conflicts = resolve_conflicts(pool)
        assert resolved == pool
        assert conflicts == []

    def test_resolution_result_has_no_remaining_conflicts(self):
        pool = [
            auth("Alice", "CAIS", (1, 5), (1, 10)),
            auth("Alice", "CAIS", (3, 9), (3, 12)),
            auth("Alice", "CHIPES", (1, 5), (1, 10)),
            auth("Alice", "CHIPES", (5, 9), (5, 12)),
        ]
        for strategy in ResolutionStrategy:
            resolved, _ = resolve_conflicts(pool, strategy=strategy)
            assert detect_conflicts(resolved) == []
