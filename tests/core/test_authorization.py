"""Unit tests for Definitions 3 and 4: location(-temporal) authorizations."""

import pytest

from repro.errors import InvalidAuthorizationError
from repro.core.authorization import (
    UNLIMITED_ENTRIES,
    LocationAuthorization,
    LocationTemporalAuthorization,
    departure_duration,
    grant_duration,
)
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


class TestLocationAuthorization:
    def test_definition3_pair(self):
        auth = LocationAuthorization("Alice", "CAIS")
        assert auth.subject == "Alice"
        assert auth.location == "CAIS"
        assert str(auth) == "(Alice, CAIS)"

    def test_equality(self):
        assert LocationAuthorization("Alice", "CAIS") == LocationAuthorization("Alice", "CAIS")

    def test_invalid_names_rejected(self):
        with pytest.raises(Exception):
            LocationAuthorization("", "CAIS")


class TestLocationTemporalAuthorization:
    def test_section32_example(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 1)
        assert auth.subject == "Alice"
        assert auth.location == "CAIS"
        assert auth.entry_duration == TimeInterval(5, 40)
        assert auth.exit_duration == TimeInterval(20, 100)
        assert auth.max_entries == 1

    def test_accepts_location_authorization_object(self):
        auth = LocationTemporalAuthorization(LocationAuthorization("Alice", "CAIS"), (0, 10), (0, 20))
        assert auth.auth.location == "CAIS"

    def test_default_entry_duration_starts_at_creation(self):
        # "If the entry duration is not specified ... the subject can enter at
        # any time after the creation of the authorization."
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), None, None, created_at=7)
        assert auth.entry_duration == TimeInterval(7, FOREVER)
        assert auth.exit_duration == TimeInterval(7, FOREVER)

    def test_default_exit_duration_is_entry_start_to_forever(self):
        # "the default value will be [t_i_1, ∞]"
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40))
        assert auth.exit_duration == TimeInterval(5, FOREVER)

    def test_default_entry_count_is_unlimited(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100))
        assert auth.max_entries is UNLIMITED_ENTRIES
        assert not auth.has_entry_limit

    def test_exit_cannot_start_before_entry(self):
        # Definition 4: t_o_s >= t_i_s.
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization(("Alice", "CAIS"), (10, 40), (5, 100))

    def test_exit_cannot_end_before_entry_end(self):
        # Definition 4: t_o_e >= t_i_e.
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization(("Alice", "CAIS"), (10, 40), (15, 30))

    def test_bounded_exit_with_unbounded_entry_rejected(self):
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization(("Alice", "CAIS"), (10, FOREVER), (15, 30))

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_entry_budget(self, bad):
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization(("Alice", "CAIS"), (0, 10), (0, 20), bad)

    def test_invalid_auth_argument(self):
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization("just a string", (0, 10), (0, 20))

    def test_negative_created_at_rejected(self):
        with pytest.raises(InvalidAuthorizationError):
            LocationTemporalAuthorization(("Alice", "CAIS"), (0, 10), (0, 20), created_at=-1)

    def test_permits_entry_and_exit(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 1)
        assert auth.permits_entry_at(5)
        assert auth.permits_entry_at(40)
        assert not auth.permits_entry_at(41)
        assert auth.permits_exit_at(20)
        assert not auth.permits_exit_at(101)

    def test_entries_remaining(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 2)
        assert auth.entries_remaining(0) == 2
        assert auth.entries_remaining(1) == 1
        assert auth.entries_remaining(2) == 0
        assert auth.entries_remaining(5) == 0

    def test_entries_remaining_unlimited(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100))
        assert auth.entries_remaining(1_000_000) is UNLIMITED_ENTRIES

    def test_entries_remaining_rejects_negative(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 2)
        with pytest.raises(InvalidAuthorizationError):
            auth.entries_remaining(-1)

    def test_equality_ignores_generated_ids(self):
        a = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 1)
        b = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a.auth_id != b.auth_id

    def test_ids_are_unique_by_default_but_can_be_fixed(self):
        fixed = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 1), (0, 2), auth_id="A1")
        assert fixed.auth_id == "A1"

    def test_replace_produces_derived_copy(self):
        base = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 20), (15, 50), 2, auth_id="a1")
        derived = base.replace(subject="Bob", derived_from="a1", rule_id="r1")
        assert derived.subject == "Bob"
        assert derived.location == "CAIS"
        assert derived.entry_duration == base.entry_duration
        assert derived.is_derived
        assert derived.rule_id == "r1"
        assert not base.is_derived

    def test_str_uses_paper_notation(self):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100), 1)
        assert str(auth) == "([5, 40], [20, 100], (Alice, CAIS), 1)"
        unlimited = LocationTemporalAuthorization(("Alice", "CAIS"), (5, 40), (20, 100))
        assert "∞" in str(unlimited)


class TestGrantAndDepartureDurations:
    """Section 6's definitions, on the fixture values of Table 1/Table 2."""

    def make(self, entry, exit_):
        return LocationTemporalAuthorization(("Alice", "X"), entry, exit_, 1)

    def test_grant_duration_clips_to_window(self):
        # B's authorization [40,60]/[55,80] examined in the window [20,50]
        # (A's departure duration) gives grant [40,50] — the Table 2 value.
        auth = self.make((40, 60), (55, 80))
        assert grant_duration(auth, TimeInterval(20, 50)) == TimeInterval(40, 50)

    def test_departure_duration_from_window(self):
        auth = self.make((40, 60), (55, 80))
        assert departure_duration(auth, TimeInterval(20, 50)) == TimeInterval(55, 80)

    def test_grant_duration_null_when_disjoint(self):
        # C's authorization [38,45] examined in D's departure window [20,30].
        auth = self.make((38, 45), (70, 90))
        assert grant_duration(auth, TimeInterval(20, 30)) is None
        # ... and in B's departure window [55,80].
        assert grant_duration(auth, TimeInterval(55, 80)) is None

    def test_grant_duration_with_unbounded_window(self):
        auth = self.make((5, 25), (10, 30))
        assert grant_duration(auth, TimeInterval(0, FOREVER)) == TimeInterval(5, 25)
        assert departure_duration(auth, TimeInterval(0, FOREVER)) == TimeInterval(10, 30)

    def test_grant_duration_with_unbounded_entry(self):
        auth = self.make((5, FOREVER), (10, FOREVER))
        assert grant_duration(auth, TimeInterval(0, 50)) == TimeInterval(5, 50)
        assert grant_duration(auth, TimeInterval(100, 200)) == TimeInterval(100, 200)

    def test_departure_duration_null_when_exit_closed(self):
        auth = self.make((0, 10), (0, 10))
        assert departure_duration(auth, TimeInterval(20, 30)) is None

    def test_method_forms_match_module_functions(self):
        auth = self.make((2, 35), (20, 50))
        window = TimeInterval(0, FOREVER)
        assert auth.grant_duration(window) == grant_duration(auth, window)
        assert auth.departure_duration(window) == departure_duration(auth, window)
