"""Unit tests for access requests and decisions (Definitions 6 and 7)."""

import pytest

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason


AUTH = LocationTemporalAuthorization(("Alice", "CAIS"), (10, 20), (10, 50), 2, auth_id="A1")


class TestAccessRequest:
    def test_triple(self):
        request = AccessRequest(10, "Alice", "CAIS")
        assert request.as_triple() == (10, "Alice", "CAIS")
        assert str(request) == "(10, Alice, CAIS)"

    def test_request_ids_are_unique(self):
        assert AccessRequest(0, "A", "X").request_id != AccessRequest(0, "A", "X").request_id

    @pytest.mark.parametrize("bad_time", [-1, 1.5, None, True])
    def test_invalid_times_rejected(self, bad_time):
        with pytest.raises(EnforcementError):
            AccessRequest(bad_time, "Alice", "CAIS")

    def test_invalid_subject_or_location(self):
        with pytest.raises(Exception):
            AccessRequest(0, "", "CAIS")
        with pytest.raises(Exception):
            AccessRequest(0, "Alice", "")


class TestAccessDecision:
    def test_grant_constructor(self):
        request = AccessRequest(10, "Alice", "CAIS")
        decision = AccessDecision.grant(request, AUTH, entries_used=1)
        assert decision.granted
        assert bool(decision)
        assert decision.authorization is AUTH
        assert decision.reason is None
        assert decision.entries_used == 1
        assert "GRANT" in str(decision)

    def test_deny_constructor(self):
        request = AccessRequest(15, "Bob", "CAIS")
        decision = AccessDecision.deny(request, DenialReason.NO_AUTHORIZATION)
        assert not decision.granted
        assert not bool(decision)
        assert decision.reason is DenialReason.NO_AUTHORIZATION
        assert "DENY" in str(decision)

    def test_granted_decision_requires_authorization(self):
        request = AccessRequest(10, "Alice", "CAIS")
        with pytest.raises(EnforcementError):
            AccessDecision(request, True, None, None)

    def test_granted_decision_cannot_carry_reason(self):
        request = AccessRequest(10, "Alice", "CAIS")
        with pytest.raises(EnforcementError):
            AccessDecision(request, True, AUTH, DenialReason.NO_AUTHORIZATION)

    def test_denied_decision_requires_reason(self):
        request = AccessRequest(10, "Alice", "CAIS")
        with pytest.raises(EnforcementError):
            AccessDecision(request, False, None, None)

    def test_denial_reasons_are_strings(self):
        assert str(DenialReason.ENTRY_LIMIT_EXHAUSTED) == "entry_limit_exhausted"
        assert DenialReason("no_authorization") is DenialReason.NO_AUTHORIZATION
