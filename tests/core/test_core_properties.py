"""Property-based tests for the core authorization semantics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.authorization import (
    UNLIMITED_ENTRIES,
    LocationTemporalAuthorization,
    departure_duration,
    grant_duration,
)
from repro.core.conflicts import ResolutionStrategy, detect_conflicts, merge_pair, resolve_conflicts
from repro.core.grant import AuthorizationIndex, authorize_route
from repro.core.requests import AccessRequest
from repro.engine.access_control import AccessControlEngine
from repro.locations.layouts import figure4_hierarchy
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval

MAX_T = 150


@st.composite
def authorizations(draw, subjects=("Alice",), locations=("A", "B", "C", "D")):
    """Random authorizations satisfying Definition 4's constraints."""
    subject = draw(st.sampled_from(subjects))
    location = draw(st.sampled_from(locations))
    entry_start = draw(st.integers(min_value=0, max_value=MAX_T))
    entry_len = draw(st.integers(min_value=0, max_value=60))
    entry_end_unbounded = draw(st.integers(0, 9)) == 0
    entry_end = FOREVER if entry_end_unbounded else entry_start + entry_len
    exit_start = draw(st.integers(min_value=entry_start, max_value=entry_start + entry_len))
    exit_extra = draw(st.integers(min_value=0, max_value=60))
    exit_end = FOREVER if entry_end_unbounded or draw(st.integers(0, 9)) == 0 else entry_start + entry_len + exit_extra
    budget = draw(st.sampled_from([1, 2, 3, UNLIMITED_ENTRIES]))
    return LocationTemporalAuthorization(
        (subject, location), (entry_start, entry_end), (exit_start, exit_end), budget
    )


@st.composite
def windows(draw):
    start = draw(st.integers(min_value=0, max_value=MAX_T))
    if draw(st.booleans()):
        return TimeInterval(start, FOREVER)
    return TimeInterval(start, start + draw(st.integers(min_value=0, max_value=80)))


class TestGrantAndDepartureDurations:
    @given(authorizations(), windows())
    def test_grant_duration_is_inside_entry_duration_and_window(self, auth, window):
        grant = grant_duration(auth, window)
        if grant is not None:
            assert auth.entry_duration.contains_interval(grant)
            assert window.contains_interval(grant)

    @given(authorizations(), windows())
    def test_grant_is_null_iff_no_overlap(self, auth, window):
        grant = grant_duration(auth, window)
        assert (grant is None) == (not auth.entry_duration.overlaps(window))

    @given(authorizations(), windows())
    def test_departure_duration_is_inside_exit_duration(self, auth, window):
        departure = departure_duration(auth, window)
        if departure is not None:
            assert auth.exit_duration.contains_interval(departure)

    @given(authorizations(), windows())
    def test_nonnull_grant_implies_nonnull_departure(self, auth, window):
        # Follows from Definition 4's t_o_e >= t_i_e constraint (see Section 6).
        if grant_duration(auth, window) is not None:
            assert departure_duration(auth, window) is not None


class TestConflictProperties:
    @given(st.lists(authorizations(), min_size=0, max_size=8))
    def test_resolution_always_terminates_without_conflicts(self, pool):
        for strategy in ResolutionStrategy:
            resolved, _ = resolve_conflicts(pool, strategy=strategy)
            assert detect_conflicts(resolved) == []
            assert len(resolved) <= len(pool) or not pool

    @given(st.lists(authorizations(), min_size=0, max_size=8))
    def test_merge_preserves_every_granted_entry_chronon(self, pool):
        """Merging never removes a chronon at which some authorization allowed entry."""
        resolved, _ = resolve_conflicts(pool, strategy=ResolutionStrategy.MERGE)
        for auth in pool:
            for probe in (auth.entry_duration.start,
                          auth.entry_duration.start if auth.entry_duration.is_unbounded else int(auth.entry_duration.end)):
                assert any(
                    other.subject == auth.subject
                    and other.location == auth.location
                    and other.permits_entry_at(probe)
                    for other in resolved
                )

    @given(authorizations(), authorizations())
    def test_merge_pair_covers_both_inputs(self, first, second):
        if first.subject != second.subject or first.location != second.location:
            return
        merged = merge_pair(first, second)
        for auth in (first, second):
            assert merged.entry_duration.contains_interval(auth.entry_duration) or auth.entry_duration.is_unbounded == merged.entry_duration.is_unbounded


class TestDecisionProperties:
    @given(st.lists(authorizations(), min_size=0, max_size=6), st.integers(0, MAX_T))
    @settings(max_examples=50, deadline=None)
    def test_definition7_equivalence(self, pool, time):
        """The engine grants iff some authorization admits the subject at that time."""
        engine = AccessControlEngine(figure4_hierarchy())
        engine.grant_all(pool)
        decision = engine.check_request(AccessRequest(time, "Alice", "A"))
        admits = any(
            auth.subject == "Alice" and auth.location == "A" and auth.permits_entry_at(time)
            for auth in pool
        )
        assert decision.granted == admits  # no entries consumed yet

    @given(st.lists(authorizations(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_route_authorization_monotone_in_window(self, pool):
        """Widening the request duration never turns an authorized route unauthorized."""
        index = AuthorizationIndex(pool)
        narrow = authorize_route(["A", "B"], "Alice", index, request_duration=TimeInterval(10, 60))
        wide = authorize_route(["A", "B"], "Alice", index, request_duration=TimeInterval(0, 200))
        if narrow.authorized:
            assert wide.authorized
