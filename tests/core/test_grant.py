"""Unit tests for route grant/departure durations and the authorized-route check (Section 6)."""

import pytest

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex, authorize_route, step_durations
from repro.locations.layouts import figure4_hierarchy
from repro.locations.routes import Route
from repro.paper import fixtures as paper
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet


@pytest.fixture(scope="module")
def fig4():
    return figure4_hierarchy()


@pytest.fixture
def table1_index():
    return AuthorizationIndex(paper.table1_authorizations())


class TestAuthorizationIndex:
    def test_lookup_by_pair_and_subject(self, table1_index):
        assert len(table1_index) == 4
        assert len(table1_index.for_subject_location("Alice", "A")) == 1
        assert table1_index.for_subject_location("Alice", "Z") == []
        assert table1_index.for_subject_location("Bob", "A") == []
        assert len(table1_index.for_subject("Alice")) == 4
        assert table1_index.for_subject("Bob") == []

    def test_add(self):
        index = AuthorizationIndex()
        index.add(LocationTemporalAuthorization(("Alice", "A"), (0, 5), (0, 10)))
        assert len(index.for_subject_location("Alice", "A")) == 1


class TestStepDurations:
    def test_union_over_authorizations_and_window_pieces(self):
        auths = [
            LocationTemporalAuthorization(("Alice", "X"), (0, 10), (5, 20)),
            LocationTemporalAuthorization(("Alice", "X"), (30, 40), (35, 50)),
        ]
        window = IntervalSet([(0, 8), (32, 60)])
        grant, departure = step_durations(auths, window)
        assert grant == IntervalSet([(0, 8), (32, 40)])
        assert departure == IntervalSet([(5, 20), (35, 50)])

    def test_empty_when_no_authorization_matches_window(self):
        auths = [LocationTemporalAuthorization(("Alice", "X"), (0, 10), (5, 20))]
        grant, departure = step_durations(auths, IntervalSet([(50, 60)]))
        assert grant.is_empty
        assert departure.is_empty

    def test_empty_window_yields_empty_sets(self):
        auths = [LocationTemporalAuthorization(("Alice", "X"), (0, 10), (5, 20))]
        grant, departure = step_durations(auths, IntervalSet.empty())
        assert grant.is_empty and departure.is_empty


class TestAuthorizeRoute:
    def test_route_a_b_is_authorized(self, table1_index):
        # From the Table 2 worked example: A ([2,35]/[20,50]) then B ([40,60]/[55,80]).
        result = authorize_route(["A", "B"], "Alice", table1_index)
        assert result.authorized
        assert result.grant_duration == IntervalSet([(2, 35)])
        assert result.departure_duration == IntervalSet([(55, 80)])
        assert result.blocking_location is None

    def test_route_a_d_is_authorized(self, table1_index):
        result = authorize_route(["A", "D"], "Alice", table1_index)
        assert result.authorized
        # D's grant within A's departure window [20,50] is [20,25].
        assert result.steps[1].grant == IntervalSet([(20, 25)])

    def test_route_to_c_is_never_authorized(self, table1_index):
        # C is the paper's inaccessible location: neither via B nor via D.
        for route in (["A", "B", "C"], ["A", "D", "C"]):
            result = authorize_route(route, "Alice", table1_index)
            assert not result.authorized
            assert result.blocking_location == "C"

    def test_unknown_subject_is_never_authorized(self, table1_index):
        assert not authorize_route(["A", "B"], "Eve", table1_index).authorized

    def test_route_accepts_route_object_and_plain_iterable_of_auths(self):
        auths = paper.table1_authorizations()
        result = authorize_route(Route(("A", "B")), "Alice", auths)
        assert result.authorized

    def test_request_duration_restricts_the_route(self, table1_index):
        # With a request window that ends before A's entry opens, nothing works.
        result = authorize_route(
            ["A", "B"], "Alice", table1_index, request_duration=TimeInterval(0, 1)
        )
        assert not result.authorized
        assert result.blocking_location == "A"

    def test_single_location_route(self, table1_index):
        result = authorize_route(["A"], "Alice", table1_index)
        assert result.authorized
        assert result.grant_duration == IntervalSet([(2, 35)])
        # For a single-location route the departure set is still computed.
        assert result.departure_duration == IntervalSet([(20, 50)])

    def test_steps_after_block_are_marked_unreachable(self, table1_index):
        result = authorize_route(["A", "B", "C", "D"], "Alice", table1_index)
        assert not result.authorized
        # C blocks; the following step (D) is evaluated against an empty window.
        step_for_d = result.steps[3]
        assert step_for_d.window.is_empty
        assert not step_for_d.reachable

    def test_exit_only_constraint_blocks_intermediate(self):
        # An intermediate location whose exit window is already closed blocks
        # the rest of the route even though it can be entered.
        auths = [
            LocationTemporalAuthorization(("Alice", "A"), (0, 100), (0, 100)),
            # B can be entered late, but must be left by 10 — impossible when
            # reached after 10.
            LocationTemporalAuthorization(("Alice", "B"), (0, 10), (0, 10)),
            LocationTemporalAuthorization(("Alice", "C"), (0, 100), (0, 100)),
        ]
        result = authorize_route(
            ["A", "B", "C"], "Alice", auths, request_duration=TimeInterval(20, 80)
        )
        assert not result.authorized
