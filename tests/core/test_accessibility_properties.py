"""Property-based tests for Algorithm 1 against the brute-force oracle and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_accessible
from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import random_building


@st.composite
def small_scenarios(draw):
    """A small random building plus a random authorization set for one subject."""
    n_locations = draw(st.integers(min_value=2, max_value=6))
    extra_edges = draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    hierarchy = LocationHierarchy(
        random_building("G", n_locations, extra_edges=extra_edges, seed=seed)
    )
    auths = []
    for location in sorted(hierarchy.primitive_names):
        if draw(st.booleans()):
            entry_start = draw(st.integers(min_value=0, max_value=40))
            entry_len = draw(st.integers(min_value=0, max_value=30))
            exit_extra = draw(st.integers(min_value=0, max_value=30))
            exit_start = draw(st.integers(min_value=entry_start, max_value=entry_start + entry_len))
            auths.append(
                LocationTemporalAuthorization(
                    ("Alice", location),
                    (entry_start, entry_start + entry_len),
                    (exit_start, entry_start + entry_len + exit_extra),
                    draw(st.sampled_from([1, 2, 3])),
                )
            )
    return hierarchy, auths


class TestAgainstBruteForce:
    @given(small_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_brute_force_accessible_is_subset_of_algorithm(self, scenario):
        """Route enumeration is sound: whatever it can reach, Algorithm 1 must also report reachable."""
        hierarchy, auths = scenario
        report = find_inaccessible(hierarchy, "Alice", auths)
        oracle = brute_force_accessible(hierarchy, "Alice", auths)
        assert oracle <= report.accessible

    @given(small_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_simple_path_and_walk_enumeration_agree_on_soundness(self, scenario):
        hierarchy, auths = scenario
        simple = brute_force_accessible(hierarchy, "Alice", auths)
        walks = brute_force_accessible(hierarchy, "Alice", auths, allow_revisits=True, max_length=6)
        report = find_inaccessible(hierarchy, "Alice", auths)
        assert simple <= walks or walks <= report.accessible
        assert walks <= report.accessible


class TestAlgorithmInvariants:
    @given(small_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_partition_of_locations(self, scenario):
        hierarchy, auths = scenario
        report = find_inaccessible(hierarchy, "Alice", auths)
        assert report.accessible | report.inaccessible == hierarchy.primitive_names
        assert report.accessible & report.inaccessible == frozenset()

    @given(small_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_unauthorized_locations_are_inaccessible(self, scenario):
        hierarchy, auths = scenario
        authorized_locations = {auth.location for auth in auths}
        report = find_inaccessible(hierarchy, "Alice", auths)
        for location in hierarchy.primitive_names - authorized_locations:
            assert location in report.inaccessible

    @given(small_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_accessible_locations_have_nonempty_grant_times(self, scenario):
        hierarchy, auths = scenario
        report = find_inaccessible(hierarchy, "Alice", auths)
        for location in report.accessible:
            assert not report.grant_time(location).is_empty
        for location in report.inaccessible:
            assert report.grant_time(location).is_empty

    @given(small_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_adding_authorizations_is_monotone(self, scenario):
        """Granting more can never make previously accessible locations inaccessible."""
        hierarchy, auths = scenario
        before = find_inaccessible(hierarchy, "Alice", auths)
        extra = [
            LocationTemporalAuthorization(("Alice", location), (0, 100), (0, 200))
            for location in sorted(hierarchy.primitive_names)[:2]
        ]
        after = find_inaccessible(hierarchy, "Alice", list(auths) + extra)
        assert before.accessible <= after.accessible

    @given(small_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_across_processing_orders(self, scenario):
        hierarchy, auths = scenario
        rng = random.Random(0)
        names = sorted(hierarchy.primitive_names)
        shuffled = names[:]
        rng.shuffle(shuffled)
        order = {name: index for index, name in enumerate(shuffled)}
        default = find_inaccessible(hierarchy, "Alice", auths)
        reordered = find_inaccessible(hierarchy, "Alice", auths, order_key=lambda n: order[n])
        assert default.inaccessible == reordered.inaccessible
        for location in names:
            assert default.grant_time(location) == reordered.grant_time(location)
            assert default.departure_time(location) == reordered.departure_time(location)
