"""Unit tests for the derivation engine (rule evaluation, provenance, revocation)."""

import pytest

from repro.errors import RuleError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.derivation import DerivationEngine
from repro.core.operators.numeric import ConstantEntries
from repro.core.operators.subject import SupervisorOf
from repro.core.operators.temporal import Intersection
from repro.core.rules import AuthorizationRule, OperatorTuple
from repro.core.subjects import SubjectDirectory
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


@pytest.fixture
def engine(campus):
    return DerivationEngine(paper.paper_directory(), campus)


@pytest.fixture
def a1():
    return paper.example_base_authorization_a1()


class TestRuleManagement:
    def test_add_and_get(self, engine, a1):
        rule = paper.example_rule_r1(a1)
        engine.add_rule(rule)
        assert engine.get_rule("r1") is rule
        assert rule in engine.rules

    def test_duplicate_rule_id_rejected(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        with pytest.raises(RuleError):
            engine.add_rule(paper.example_rule_r1(a1))

    def test_remove_rule(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        removed = engine.remove_rule("r1")
        assert removed is not None
        assert engine.remove_rule("r1") is None
        with pytest.raises(RuleError):
            engine.get_rule("r1")


class TestDerivation:
    def test_all_three_paper_rules_together(self, engine, a1):
        for rule_fn in (paper.example_rule_r1, paper.example_rule_r2, paper.example_rule_r3):
            engine.add_rule(rule_fn(a1))
        result = engine.derive([a1], now=10)
        assert paper.expected_derived_a2() in result.derived
        assert paper.expected_derived_a3() in result.derived
        assert result.count == len(result.derived)
        # r3 derives the route locations for Alice.
        r3_locations = {auth.location for auth in result.derived_by_rule("r3")}
        assert r3_locations == {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}
        assert result.derived_by_rule("unknown") == ()

    def test_rule_with_unknown_base_is_skipped(self, engine, a1):
        engine.add_rule(AuthorizationRule(0, "missing-base", OperatorTuple()))
        result = engine.derive([a1], now=10)
        assert result.derived == ()

    def test_rule_bound_by_id_resolves_against_pool(self, engine, a1):
        engine.add_rule(AuthorizationRule(0, a1.auth_id, OperatorTuple(op_subject=SupervisorOf())))
        result = engine.derive([a1], now=5)
        assert [auth.subject for auth in result.derived] == ["Bob"]

    def test_duplicate_derivations_reported_once(self, engine, a1):
        engine.add_rule(AuthorizationRule(0, a1, OperatorTuple(op_subject=SupervisorOf()), rule_id="x1"))
        engine.add_rule(AuthorizationRule(0, a1, OperatorTuple(op_subject=SupervisorOf()), rule_id="x2"))
        result = engine.derive([a1], now=5)
        assert len(result.derived) == 1
        assert len(result.batches) == 2

    def test_inactive_rules_do_not_fire(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        assert engine.derive([a1], now=3).derived == ()

    def test_provenance_tracking(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        result = engine.derive([a1], now=10)
        derived_ids = engine.derived_auth_ids("r1")
        assert len(derived_ids) == 1
        assert derived_ids[0] == result.derived[0].auth_id

    def test_revocation_set(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        result = engine.derive([a1], now=10)
        pool = [a1, *result.derived]
        doomed = engine.revocation_set(a1.auth_id, pool)
        assert doomed == result.derived


class TestClosure:
    def test_chained_rules_reach_fixpoint(self, engine, campus):
        # r-a derives an authorization for Bob from Alice's; r-b further
        # narrows Bob's derived authorization (chained on the derived id).
        alice = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 100), (50, 200), 3, auth_id="seed")
        first = AuthorizationRule(0, alice, OperatorTuple(op_subject=SupervisorOf()), rule_id="r-a")
        engine.add_rule(first)
        result_one = engine.derive([alice], now=1)
        derived_for_bob = result_one.derived[0]
        second = AuthorizationRule(
            0,
            derived_for_bob.auth_id,
            OperatorTuple(op_entry=Intersection((10, 20)), exp_n=ConstantEntries(1)),
            rule_id="r-b",
        )
        engine.add_rule(second)
        closure = engine.derive_closure([alice], now=1, max_rounds=5)
        entry_windows = {(auth.subject, str(auth.entry_duration)) for auth in closure.derived}
        assert ("Bob", "[0, 100]") in entry_windows
        assert ("Bob", "[10, 20]") in entry_windows

    def test_closure_terminates_on_idempotent_rules(self, engine, a1):
        engine.add_rule(paper.example_rule_r1(a1))
        closure = engine.derive_closure([a1], now=10, max_rounds=10)
        assert len(closure.derived) == 1

    def test_closure_requires_positive_rounds(self, engine, a1):
        with pytest.raises(RuleError):
            engine.derive_closure([a1], max_rounds=0)
