"""End-to-end integration tests across the whole stack.

Each test exercises a realistic slice of the system: tracking hardware →
movement events → enforcement engine → databases → queries/reports, on both
the paper's layout and synthetic campuses.
"""

import pytest

from repro.analysis.reachability import build_reachability_matrix
from repro.analysis.reports import build_violation_report, detection_stats
from repro.baselines.card_reader import CardReaderSystem
from repro.core.authorization import LocationTemporalAuthorization
from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import AlertKind
from repro.engine.query.evaluator import QueryEngine
from repro.locations.layouts import ntu_campus_hierarchy
from repro.privacy.anonymizer import TraceAnonymizer
from repro.privacy.policy import Granularity, ReleasePolicy
from repro.simulation.buildings import campus_hierarchy
from repro.simulation.movement import MovementSimulator
from repro.simulation.workload import AuthorizationWorkloadGenerator, WorkloadConfig, generate_subjects
from repro.spatial.boundary import grid_boundaries
from repro.spatial.positioning import TrackingSimulator
from repro.storage.authorization_db import SqliteAuthorizationDatabase
from repro.storage.movement_db import MovementKind, SqliteMovementDatabase
from repro.storage.profile_db import SqliteUserProfileDatabase


class TestTrackingToEnforcementPipeline:
    """Position fixes → tracking simulator → engine observations → alerts/queries."""

    def test_visitor_walk_through_the_ntu_campus(self):
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(hierarchy)
        # The visitor may enter the general office and walk to CAIS, once.
        for location in ("SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"):
            engine.grant(
                LocationTemporalAuthorization(("Visitor", location), (0, 100), (0, 150), 2)
            )

        boundary_map = grid_boundaries(hierarchy.primitive_names, hierarchy=hierarchy, columns=5)
        tracker = TrackingSimulator(boundary_map)
        fixes = tracker.fixes_for_path(
            "Visitor", ["SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"], start_time=5, dwell=10
        )

        for observation, previous in tracker.transitions(fixes):
            if previous is not None:
                engine.observe_exit(observation.time, observation.subject, previous)
            if observation.location is not None:
                engine.observe_entry(observation.time, observation.subject, observation.location)

        # A fully authorized walk raises no alerts and ends inside CAIS.
        assert [a for a in engine.alerts if a.kind is not AlertKind.DENIED_REQUEST] == []
        assert engine.where_is("Visitor") == "CAIS"
        queries = QueryEngine(engine)
        assert queries.evaluate("WHO IS IN CAIS").rows == (("Visitor",),)

    def test_intruder_is_flagged_along_the_same_pipeline(self):
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(hierarchy)  # no authorizations at all
        boundary_map = grid_boundaries(hierarchy.primitive_names, hierarchy=hierarchy, columns=5)
        tracker = TrackingSimulator(boundary_map)
        fixes = tracker.fixes_for_path("Intruder", ["SCE.GO", "SCE.SectionA"], start_time=0, dwell=3)
        for observation, previous in tracker.transitions(fixes):
            if previous is not None:
                engine.observe_exit(observation.time, observation.subject, previous)
            engine.observe_entry(observation.time, observation.subject, observation.location)
        unauthorized = engine.alerts.of_kind(AlertKind.UNAUTHORIZED_ENTRY)
        assert len(unauthorized) == 2


class TestSimulatedPopulationScenario:
    def test_monitoring_detects_injected_violations_and_baseline_does_not(self):
        hierarchy = campus_hierarchy("Campus", 3, rooms_per_building=6, seed=21)
        subjects = generate_subjects(8)
        generator = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(horizon=600, coverage=0.8, wide_open_entries=True), seed=21
        )
        auths = generator.authorizations(subjects)

        simulator = MovementSimulator(hierarchy, auths, seed=22)
        trace = simulator.population_trace(subjects, steps=6, p_tailgate=0.4, p_overstay=0.3)

        engine = AccessControlEngine(hierarchy)
        engine.grant_all(auths)
        reader = CardReaderSystem(hierarchy, authorization_db=engine.authorization_db)

        last_time = 0
        for record in trace:
            last_time = max(last_time, record.time)
            if record.kind is MovementKind.ENTER:
                engine.observe_entry(record.time, record.subject, record.location)
                reader.observe_entry(record.time, record.subject, record.location)
            else:
                engine.observe_exit(record.time, record.subject, record.location)
                reader.observe_exit(record.time, record.subject, record.location)
        engine.monitor.check_overstays(last_time + 1_000)
        reader.check_overstays(last_time + 1_000)

        stats = detection_stats(engine.alerts.alerts, trace.truth)
        if trace.truth.unauthorized_entries:
            assert stats.unauthorized_recall == 1.0
        if trace.truth.overstays:
            assert stats.overstay_recall > 0.0
        # The card-reader baseline, fed the same observations, detects nothing.
        baseline_stats = detection_stats(reader.detected_violations(), trace.truth)
        if trace.truth.violation_count:
            assert baseline_stats.overall_recall == 0.0

        report = build_violation_report(engine.audit)
        assert report.total_alerts >= trace.truth.violation_count

    def test_reachability_matrix_over_generated_workload(self):
        hierarchy = campus_hierarchy("Campus", 2, rooms_per_building=4, seed=3)
        subjects = generate_subjects(4)
        generator = AuthorizationWorkloadGenerator(
            hierarchy, config=WorkloadConfig(coverage=0.5, horizon=400), seed=3
        )
        auths = generator.authorizations(subjects)
        matrix = build_reachability_matrix(hierarchy, subjects, auths)
        assert set(matrix.per_subject) == set(subjects)
        for summary in matrix.per_subject.values():
            assert 0.0 <= summary.coverage <= 1.0


class TestPrivacyPipeline:
    def test_release_policy_and_anonymized_export(self):
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(hierarchy)
        engine.grant(LocationTemporalAuthorization(("Alice", "CAIS"), (0, 50), (0, 100)))
        engine.grant(LocationTemporalAuthorization(("Bob", "CHIPES"), (0, 50), (0, 100)))
        engine.observe_entry(10, "Alice", "CAIS")
        engine.observe_entry(12, "Bob", "CHIPES")

        policy = ReleasePolicy(hierarchy, default=Granularity.DENY)
        policy.allow_application("facility-dashboard", Granularity.COMPOSITE)
        decision = policy.release("facility-dashboard", "Alice", engine.where_is("Alice"))
        assert decision.released_value == "SCE"
        assert not policy.release("ad-network", "Alice", engine.where_is("Alice")).released

        anonymizer = TraceAnonymizer(hierarchy, k=2, time_bucket=20)
        released = anonymizer.anonymize(engine.movement_db.history())
        # Both records generalize to SCE within the same bucket, so k=2 holds.
        assert len(released) == 2
        assert {record.composite for record in released} == {"SCE"}


class TestSqliteEndToEnd:
    def test_full_stack_on_sqlite_backends(self, tmp_path):
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(
            hierarchy,
            authorization_db=SqliteAuthorizationDatabase(str(tmp_path / "auth.db")),
            movement_db=SqliteMovementDatabase(str(tmp_path / "move.db"), hierarchy),
            profile_db=SqliteUserProfileDatabase(str(tmp_path / "profiles.db")),
        )
        engine.profile_db.set_supervisor("Alice", "Bob")
        base = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 50), (10, 100), 2, auth_id="base")
        engine.grant(base)
        from repro.core.operators.subject import SupervisorOf
        from repro.core.rules import AuthorizationRule, OperatorTuple

        engine.add_rule(AuthorizationRule(0, base, OperatorTuple(op_subject=SupervisorOf()), rule_id="sup"))
        assert engine.authorization_db.for_subject_location("Bob", "CAIS")
        assert engine.request_and_enter(10, "Bob", "CAIS").granted
        assert engine.where_is("Bob") == "CAIS"
        queries = QueryEngine(engine)
        assert queries.evaluate("AUTHORIZATIONS FOR Bob AT CAIS").rows
