"""Unit tests for the simulated positioning / tracking substrate."""

import pytest

from repro.errors import SpatialError
from repro.locations.layouts import figure4_hierarchy
from repro.spatial.boundary import grid_boundaries
from repro.spatial.geometry import Point
from repro.spatial.positioning import (
    GaussianNoiseModel,
    PositionFix,
    RfidReader,
    TrackingSimulator,
)


@pytest.fixture
def tracker():
    hierarchy = figure4_hierarchy()
    boundary_map = grid_boundaries(hierarchy.primitive_names, hierarchy=hierarchy, columns=2, cell_size=10.0)
    return TrackingSimulator(boundary_map)


class TestPositionFix:
    def test_negative_time_rejected(self):
        with pytest.raises(SpatialError):
            PositionFix(-1, "Alice", Point(0, 0))


class TestRfidReader:
    def test_crossing_directions(self):
        reader = RfidReader("door-1", "A", "B")
        into_b = reader.crossing(5, "Alice", entering_side_b=True)
        assert (into_b.from_location, into_b.to_location) == ("A", "B")
        into_a = reader.crossing(6, "Alice", entering_side_b=False)
        assert (into_a.from_location, into_a.to_location) == ("B", "A")

    def test_reader_needs_at_least_one_side(self):
        with pytest.raises(SpatialError):
            RfidReader("door-1", None, None)

    def test_outdoor_side_allowed(self):
        reader = RfidReader("front-door", None, "A")
        event = reader.crossing(1, "Alice", entering_side_b=True)
        assert event.from_location is None
        assert event.to_location == "A"


class TestNoiseModel:
    def test_zero_noise_is_identity(self):
        import random

        model = GaussianNoiseModel(0.0)
        assert model.perturb(Point(1, 2), random.Random(0)) == Point(1, 2)

    def test_noise_perturbs_deterministically_with_seed(self):
        import random

        model = GaussianNoiseModel(1.0)
        a = model.perturb(Point(0, 0), random.Random(42))
        b = model.perturb(Point(0, 0), random.Random(42))
        assert a == b
        assert a != Point(0, 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(SpatialError):
            GaussianNoiseModel(-0.1)


class TestTrackingSimulator:
    def test_resolve_maps_fix_to_location(self, tracker):
        center = tracker.boundary_map.center_of("A")
        observation = tracker.resolve(PositionFix(3, "Alice", center))
        assert observation.location == "A"
        assert observation.subject == "Alice"
        assert observation.time == 3

    def test_resolve_outside_all_boundaries(self, tracker):
        observation = tracker.resolve(PositionFix(0, "Alice", Point(-100, -100)))
        assert observation.location is None

    def test_transitions_only_on_location_change(self, tracker):
        a = tracker.boundary_map.center_of("A")
        b = tracker.boundary_map.center_of("B")
        fixes = [
            PositionFix(0, "Alice", a),
            PositionFix(1, "Alice", a),   # still in A: no transition
            PositionFix(2, "Alice", b),
            PositionFix(3, "Alice", b),
        ]
        transitions = list(tracker.transitions(fixes))
        assert [(obs.location, previous) for obs, previous in transitions] == [("A", None), ("B", "A")]
        assert tracker.current_location("Alice") == "B"

    def test_transitions_sorted_by_time(self, tracker):
        a = tracker.boundary_map.center_of("A")
        b = tracker.boundary_map.center_of("B")
        fixes = [PositionFix(5, "Alice", b), PositionFix(0, "Alice", a)]
        transitions = list(tracker.transitions(fixes))
        assert [obs.location for obs, _ in transitions] == ["A", "B"]

    def test_fixes_for_path_walk(self, tracker):
        fixes = tracker.fixes_for_path("Alice", ["A", "B", "C"], start_time=10, dwell=5)
        assert [fix.time for fix in fixes] == [10, 15, 20]
        resolved = [tracker.resolve(fix).location for fix in fixes]
        assert resolved == ["A", "B", "C"]

    def test_fixes_for_path_rejects_bad_dwell(self, tracker):
        with pytest.raises(SpatialError):
            tracker.fixes_for_path("Alice", ["A"], dwell=0)

    def test_noisy_tracking_stays_close(self):
        hierarchy = figure4_hierarchy()
        boundary_map = grid_boundaries(
            hierarchy.primitive_names, hierarchy=hierarchy, columns=2, cell_size=50.0
        )
        noisy = TrackingSimulator(boundary_map, noise=GaussianNoiseModel(0.5), seed=3)
        center = boundary_map.center_of("A")
        # With half-metre noise in 50 m rooms the fix still resolves to A.
        assert noisy.resolve(PositionFix(0, "Alice", center)).location == "A"
