"""Unit tests for boundary maps (coordinates -> semantic locations)."""

import pytest

from repro.errors import SpatialError, UnknownLocationError
from repro.locations.layouts import figure4_hierarchy
from repro.spatial.boundary import BoundaryMap, grid_boundaries
from repro.spatial.geometry import Point, Polygon, Rectangle


class TestRegistration:
    def test_register_and_lookup(self):
        boundary_map = BoundaryMap()
        boundary_map.register("Lab", Rectangle(0, 0, 10, 10))
        assert boundary_map.has_boundary("Lab")
        assert boundary_map.boundary_of("Lab") == Rectangle(0, 0, 10, 10)
        assert "Lab" in boundary_map
        assert len(boundary_map) == 1

    def test_register_all(self):
        boundary_map = BoundaryMap()
        boundary_map.register_all({"A": Rectangle(0, 0, 1, 1), "B": Rectangle(2, 0, 3, 1)})
        assert boundary_map.locations() == ("A", "B")

    def test_register_validates_against_hierarchy(self):
        hierarchy = figure4_hierarchy()
        boundary_map = BoundaryMap(hierarchy)
        boundary_map.register("A", Rectangle(0, 0, 1, 1))
        with pytest.raises(UnknownLocationError):
            boundary_map.register("NotARoom", Rectangle(0, 0, 1, 1))

    def test_register_rejects_non_geometry(self):
        with pytest.raises(SpatialError):
            BoundaryMap().register("A", "not a shape")

    def test_boundary_of_unknown_raises(self):
        with pytest.raises(UnknownLocationError):
            BoundaryMap().boundary_of("missing")


class TestLocate:
    def test_point_resolves_to_containing_location(self):
        boundary_map = BoundaryMap()
        boundary_map.register("A", Rectangle(0, 0, 10, 10))
        boundary_map.register("B", Rectangle(20, 0, 30, 10))
        assert boundary_map.locate(Point(5, 5)) == "A"
        assert boundary_map.locate(Point(25, 5)) == "B"
        assert boundary_map.locate(Point(15, 5)) is None

    def test_overlapping_boundaries_prefer_smallest(self):
        boundary_map = BoundaryMap()
        boundary_map.register("Building", Rectangle(0, 0, 100, 100))
        boundary_map.register("Room", Rectangle(10, 10, 20, 20))
        assert boundary_map.locate(Point(15, 15)) == "Room"
        assert boundary_map.locate(Point(50, 50)) == "Building"

    def test_polygon_boundaries_supported(self):
        boundary_map = BoundaryMap()
        boundary_map.register("Triangle", Polygon([(0, 0), (10, 0), (0, 10)]))
        assert boundary_map.locate(Point(1, 1)) == "Triangle"
        assert boundary_map.locate(Point(9, 9)) is None

    def test_center_of(self):
        boundary_map = BoundaryMap()
        boundary_map.register("A", Rectangle(0, 0, 10, 10))
        boundary_map.register("T", Polygon([(0, 0), (3, 0), (0, 3)]))
        assert boundary_map.center_of("A") == Point(5, 5)
        assert boundary_map.locate(boundary_map.center_of("T")) == "T"


class TestCoverageAndGrid:
    def test_coverage_reports_missing_locations(self):
        hierarchy = figure4_hierarchy()
        boundary_map = BoundaryMap(hierarchy)
        boundary_map.register("A", Rectangle(0, 0, 1, 1))
        covered, missing = boundary_map.coverage()
        assert covered == ("A",)
        assert missing == ("B", "C", "D")

    def test_coverage_without_hierarchy_has_no_missing(self):
        boundary_map = BoundaryMap()
        boundary_map.register("X", Rectangle(0, 0, 1, 1))
        assert boundary_map.coverage() == (("X",), ())

    def test_grid_boundaries_cover_all_locations(self):
        hierarchy = figure4_hierarchy()
        boundary_map = grid_boundaries(hierarchy.primitive_names, hierarchy=hierarchy, columns=2)
        covered, missing = boundary_map.coverage()
        assert missing == ()
        assert len(covered) == 4

    def test_grid_boundaries_are_disjoint_cells(self):
        boundary_map = grid_boundaries(["A", "B", "C"], cell_size=5.0, columns=2)
        # Each centre resolves to its own location.
        for name in ("A", "B", "C"):
            assert boundary_map.locate(boundary_map.center_of(name)) == name

    def test_grid_boundaries_validate_parameters(self):
        with pytest.raises(SpatialError):
            grid_boundaries(["A"], cell_size=0)
        with pytest.raises(SpatialError):
            grid_boundaries(["A"], columns=0)
