"""Unit tests for the 2-D geometry primitives."""

import math

import pytest

from repro.errors import SpatialError
from repro.spatial.geometry import Point, Polygon, Rectangle


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_translate(self):
        assert Point(1, 2).translate(2, -1) == Point(3, 1)

    def test_as_tuple_and_str(self):
        assert Point(1.5, 2.0).as_tuple() == (1.5, 2.0)
        assert str(Point(1, 2)) == "(1, 2)"

    def test_ordering(self):
        assert Point(0, 0) < Point(1, 0)


class TestRectangle:
    def test_dimensions(self):
        rect = Rectangle(0, 0, 4, 3)
        assert rect.width == 4
        assert rect.height == 3
        assert rect.area == 12
        assert rect.center == Point(2.0, 1.5)

    def test_from_corner_and_size(self):
        rect = Rectangle.from_corner_and_size(Point(1, 1), 2, 3)
        assert rect == Rectangle(1, 1, 3, 4)

    def test_negative_size_rejected(self):
        with pytest.raises(SpatialError):
            Rectangle.from_corner_and_size(Point(0, 0), -1, 1)

    def test_inverted_extents_rejected(self):
        with pytest.raises(SpatialError):
            Rectangle(5, 0, 0, 5)

    def test_contains_boundary_and_interior(self):
        rect = Rectangle(0, 0, 10, 10)
        assert rect.contains(Point(5, 5))
        assert rect.contains(Point(0, 0))
        assert rect.contains(Point(10, 10))
        assert Point(5, 5) in rect
        assert not rect.contains(Point(10.1, 5))

    def test_intersects(self):
        assert Rectangle(0, 0, 5, 5).intersects(Rectangle(4, 4, 8, 8))
        assert Rectangle(0, 0, 5, 5).intersects(Rectangle(5, 5, 8, 8))  # touching counts
        assert not Rectangle(0, 0, 5, 5).intersects(Rectangle(6, 6, 8, 8))

    def test_to_polygon(self):
        polygon = Rectangle(0, 0, 2, 2).to_polygon()
        assert polygon.area == pytest.approx(4.0)
        assert polygon.contains(Point(1, 1))


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(SpatialError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_accepts_tuples(self):
        polygon = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert polygon.area == pytest.approx(16.0)

    def test_triangle_area_and_centroid(self):
        triangle = Polygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        assert triangle.area == pytest.approx(8.0)
        centroid = triangle.centroid
        assert centroid.x == pytest.approx(4 / 3)
        assert centroid.y == pytest.approx(4 / 3)

    def test_contains_interior_boundary_exterior(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert square.contains(Point(5, 5))
        assert square.contains(Point(0, 5))       # on an edge
        assert square.contains(Point(10, 10))     # on a vertex
        assert not square.contains(Point(11, 5))
        assert Point(1, 1) in square

    def test_concave_polygon_containment(self):
        # An L-shaped room.
        shape = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert shape.contains(Point(1, 3))
        assert shape.contains(Point(3, 1))
        assert not shape.contains(Point(3, 3))

    def test_bounding_box(self):
        triangle = Polygon([(1, 1), (5, 2), (3, 6)])
        assert triangle.bounding_box() == Rectangle(1, 1, 5, 6)

    def test_equality_and_hash(self):
        a = Polygon([(0, 0), (1, 0), (0, 1)])
        b = Polygon([(0, 0), (1, 0), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Polygon([(0, 0), (2, 0), (0, 2)])

    def test_degenerate_polygon_centroid_falls_back(self):
        flat = Polygon([(0, 0), (1, 0), (2, 0)])
        assert flat.centroid == Point(1.0, 0.0)
