"""Randomized chaos for the invalidation bus: drops, restarts, no staleness.

A seeded RNG drives a failure schedule against the 2-replica topology —
per-round bus frame loss (0%, 50% or 100% of the frames addressed to the
reading replica) and occasional kill/restart of that replica — while the
writer replica keeps observing and revoking.  After every round the test
closes the coherence window (waits for the link, runs the ``sync`` barrier)
and then compares every decision the reader serves against an embedded
oracle: **no stale decision may ever be served after the coherence
window**, no matter which frames were lost.

On failure the full failure schedule is printed, so a seed that found a
hole reproduces it exactly (override with ``REPRO_CHAOS_SEED``).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.api import Ltam
from repro.locations.multilevel import LocationHierarchy
from repro.service import DecisionCache, InvalidationBus, LtamServer, ServiceClient
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))
SUBJECT_COUNT = 24


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class DropPlan:
    """Seeded, per-round frame loss for one replica, with a readable log."""

    def __init__(self, seed: int, victim: str) -> None:
        self._rng = random.Random(seed)
        self._victim = victim
        self.rate = 0.0
        self.dropped = 0

    def __call__(self, replica, seq) -> bool:
        if replica != self._victim or self.rate == 0.0:
            return False
        if self._rng.random() < self.rate:
            self.dropped += 1
            return True
        return False


def run_chaos(
    tmp_path,
    seed: int,
    *,
    rounds: int = 8,
    events_per_round: int = 150,
    decides_per_round: int = 80,
    require_drops: bool = True,
) -> None:
    rng = random.Random(seed)
    schedule = [f"seed={seed}"]

    hierarchy = LocationHierarchy(grid_building("B", 4, 4))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=seed)
    subjects = generate_subjects(SUBJECT_COUNT)
    authorizations = generator.authorizations(subjects)
    trace = generator.movement_events(subjects, rounds * events_per_round)
    decide_gen = AuthorizationWorkloadGenerator(hierarchy, seed=seed + 1)

    path = str(tmp_path / "chaos.db")
    engine_a = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    engine_a.grant_all(authorizations)
    oracle = Ltam.builder().hierarchy(hierarchy).build()
    oracle.grant_all(authorizations)

    drop = DropPlan(seed, victim="chaos-b")
    bus = InvalidationBus(drop=drop)
    server_a = LtamServer(engine_a, cache=DecisionCache(), bus=bus, replica_id="chaos-a")
    server_a.start()
    engine_b = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    server_b = LtamServer(
        engine_b, cache=DecisionCache(), bus=bus.address, replica_id="chaos-b"
    )
    server_b.start()

    revocable = [auth.auth_id for auth in authorizations]
    rng.shuffle(revocable)
    divergences = []
    try:
        with ServiceClient(*server_a.address, timeout=60.0) as client_a:
            for round_index in range(rounds):
                drop.rate = rng.choice([0.0, 0.5, 1.0])
                restart = rng.random() < 0.3
                revoke = round_index % 3 == 2 and bool(revocable)
                schedule.append(
                    f"round {round_index}: drop_rate={drop.rate} "
                    f"restart={restart} revoke={revoke}"
                )

                if restart:
                    server_b.stop()  # kill mid-trace; frames published now are lost

                chunk = trace[
                    round_index * events_per_round : (round_index + 1) * events_per_round
                ]
                client_a.observe_batch(chunk, mode="record", wait=True)
                oracle.movement_db.record_many(chunk)
                if revoke:
                    auth_id = revocable.pop()
                    engine_a.revoke(auth_id, cascade=False)
                    oracle.revoke(auth_id, cascade=False)
                    schedule[-1] += f" auth={auth_id}"

                if restart:
                    server_b.start()

                # Close the coherence window: link up, bus drained, store
                # picked up.  Everything before this point is the window;
                # everything after must be coherent.
                coherence = server_b.coherence
                assert wait_until(lambda: coherence.stats.get("connected", False)), (
                    "replica b never reconnected\n" + "\n".join(schedule)
                )
                coherence.sync()

                pool = decide_gen.requests(subjects, decides_per_round)
                local = oracle.decide_many(pool)
                # Two passes: the first may evaluate, the second is served
                # from b's cache — staleness hiding in the cache shows there.
                for pass_name in ("fresh", "cached"):
                    with ServiceClient(*server_b.address, timeout=60.0) as client_b:
                        remote = client_b.decide_many(pool)
                    for request, r, l in zip(pool, remote, local):
                        if (r.granted, r.reason) != (l.granted, l.reason):
                            divergences.append(
                                f"round {round_index} ({pass_name}): "
                                f"{request.subject}@{request.location} "
                                f"t={request.time}: served ({r.granted}, {r.reason}) "
                                f"expected ({l.granted}, {l.reason})"
                            )

        schedule.append(
            f"bus: {bus.stats} / b-link: "
            f"{server_b.coherence.stats.get('link')} dropped={drop.dropped}"
        )
        assert not divergences, (
            "stale decisions served after the coherence window:\n"
            + "\n".join(divergences)
            + "\nfailure schedule:\n"
            + "\n".join(schedule)
        )
        if require_drops:
            assert drop.dropped > 0, (
                "the chaos schedule never dropped a frame — the run proved "
                "nothing; pick a different seed\n" + "\n".join(schedule)
            )
    finally:
        server_b.stop()
        server_a.stop()


def test_chaos_no_stale_decision_after_the_coherence_window(tmp_path):
    run_chaos(tmp_path, SEED)


@pytest.mark.parametrize("seed", [7, 2024])
def test_chaos_alternate_seeds_quick(tmp_path, seed):
    """Two extra seeds at reduced size — cheap insurance that the main
    seed's schedule is not the only one that passes."""
    run_chaos(
        tmp_path,
        seed,
        rounds=4,
        events_per_round=80,
        decides_per_round=40,
        require_drops=False,
    )
