"""Cross-topology conformance: five topologies, one byte-identical transcript.

Every serving topology replays the same workload script (observes, decision
streams, scoped queries, a mid-trace compacting checkpoint) and must produce
the canonical-JSON transcript of the embedded in-memory reference — the
differential form of every parity claim the per-layer suites make
(in-memory vs SQLite backends, sharded vs unsharded stores, server vs
embedded, cached vs uncached, replicated vs single).

The per-topology timings are printed as a table at the end of the module;
the CI conformance job uploads them as an artifact.
"""

from __future__ import annotations

import pytest

from conformance_harness import (
    TOPOLOGIES,
    FlashCrowdWorkload,
    Workload,
    run_topology,
    subprocess_replicas,
)

_TIMINGS: dict = {}


@pytest.fixture(scope="module")
def workload() -> Workload:
    return Workload(seed=11)


@pytest.fixture(scope="module")
def reference(workload, tmp_path_factory):
    transcript, seconds = run_topology(
        "embedded-memory", workload, tmp_path_factory.mktemp("reference")
    )
    _TIMINGS["embedded-memory (reference)"] = seconds
    assert transcript.decisions and transcript.queries
    return transcript


@pytest.fixture(scope="module", autouse=True)
def timing_table():
    yield
    width = max(len(name) for name in _TIMINGS) if _TIMINGS else 0
    print("\n\nConformance replay timings"
          + (" [subprocess replicas]" if subprocess_replicas() else ""))
    print(f"{'topology':<{width}}  seconds")
    print("-" * (width + 9))
    for name, seconds in _TIMINGS.items():
        print(f"{name:<{width}}  {seconds:7.3f}")


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_topology_transcript_matches_reference(topology, workload, reference, tmp_path):
    transcript, seconds = run_topology(topology, workload, tmp_path)
    _TIMINGS[topology] = seconds
    divergence = transcript.first_divergence(reference)
    assert divergence is None, f"{topology} diverged from the reference: {divergence}"


@pytest.fixture(scope="module")
def flash_workload() -> FlashCrowdWorkload:
    return FlashCrowdWorkload(seed=29)


@pytest.fixture(scope="module")
def flash_reference(flash_workload, tmp_path_factory):
    transcript, seconds = run_topology(
        "embedded-memory", flash_workload, tmp_path_factory.mktemp("flash-reference")
    )
    _TIMINGS["embedded-memory (flash reference)"] = seconds
    # The workload proves nothing unless the crowd actually saturates the
    # hot location: the reference transcript must contain over-capacity
    # denials AND grants that embed a non-trivial occupancy count.
    assert any('"over_capacity"' in decision for decision in transcript.decisions), (
        "the flash crowd never filled the hot location"
    )
    assert any(
        '"occupancy 4/6"' in decision for decision in transcript.decisions
    ), "no probe saw the hot location with slack"
    return transcript


@pytest.mark.parametrize("topology", [name for name in TOPOLOGIES if name != "embedded-memory"])
def test_flash_crowd_capacity_is_global(topology, flash_workload, flash_reference, tmp_path):
    """The capacity differential: every topology must produce the embedded
    reference's exact CapacityStage verdicts — on the partitioned
    topologies that takes the fabric-wide ledger (the crowd spans both
    partitions, so partition-local occupancy undercounts the hot room)."""
    transcript, seconds = run_topology(topology, flash_workload, tmp_path)
    _TIMINGS[f"{topology} (flash)"] = seconds
    divergence = transcript.first_divergence(flash_reference)
    assert divergence is None, f"{topology} diverged from the reference: {divergence}"


def test_workload_is_deterministic():
    """The script itself must be reproducible, or the suite proves nothing.

    Auth/request ids come from process-global counters, so two Workload
    instances differ in ids (each conformance run shares ONE instance across
    all topologies — that is what makes the ids conform); everything the
    seed controls must be identical.
    """
    first, second = Workload(seed=11), Workload(seed=11)
    assert [
        (a.subject, a.location, str(a.entry_duration), str(a.exit_duration), a.max_entries)
        for a in first.authorizations
    ] == [
        (a.subject, a.location, str(a.entry_duration), str(a.exit_duration), a.max_entries)
        for a in second.authorizations
    ]
    assert first.rounds[0][0] == second.rounds[0][0]
    assert [(r.time, r.subject, r.location) for r in first.rounds[0][1]] == [
        (r.time, r.subject, r.location) for r in second.rounds[0][1]
    ]
    assert first.rounds[0][2] == second.rounds[0][2]
