"""The cross-topology differential harness.

One deterministic workload — a seeded authorization set (shared objects, so
auth ids are identical everywhere), a `workload.movement_events()` trace cut
into rounds, a decision stream, and a query script — is replayed against
every serving topology the system supports, and the transcripts must be
**byte-identical**: every decision (trace included), every query result, on
every topology, serialized to canonical JSON.

The topologies:

* ``embedded-memory`` — the reference: an in-process engine over the plain
  in-memory movement store;
* ``embedded-sqlite`` — same engine over a SQLite file;
* ``sharded`` — the sharded in-memory movement store (log + projection
  partitioned by subject);
* ``server`` — one cached ``LtamServer`` spoken to over the wire;
* ``server-binary`` — the same server, but the client negotiates the compact
  binary wire format first; traces are explicitly re-requested
  (``trace=True``), so the transcript must stay byte-identical even though
  the bytes on the socket are a different codec entirely;
* ``server-persistent-cache`` — one ``LtamServer`` over a SQLite file with
  the **durable tiered cache** (a SQLite sidecar under the decision cache).
  After round ``RESTART_AFTER_ROUND`` the whole server is torn down and
  rebooted against the same movement file *and the same cache file*: the
  warm pass re-admits the persisted entries that survive validation, and
  every post-restart decision — whether served from a re-admitted row or
  re-evaluated — must stay byte-identical to the embedded reference;
* ``replicas`` — two cached ``LtamServer`` replicas over one shared SQLite
  file, coherent through the invalidation bus: observes and queries go to
  replica A, **decisions are served by replica B**, with the ``sync`` op as
  the round barrier.
* ``partitioned`` — the serving fabric: two cached ``LtamServer``
  partitions, each holding only its subjects' movement state, behind a
  :class:`~repro.service.fabric.FabricRouter`.  Every interaction goes
  through the router (point ops to the owner, batches scatter-gathered,
  ``WHO IS IN`` fanned out and merged) — and after round
  ``RESHARD_AFTER_ROUND`` the topology **reshards live**: the workload's
  first subject is pinned to the other partition and migrated (archived
  slice, live slice and alert history hand off) while the transcript must
  stay byte-identical to the embedded reference.

With ``REPRO_CONFORMANCE_SUBPROCESS=1`` the replica topology spawns two real
``repro serve`` processes (joined by ``--bus``/``--peers``) instead of
in-process servers, and the partitioned topology spawns two ``repro serve
--partition`` processes behind a real ``repro route`` process (the reshard
travels over the wire too) — the CI job runs that mode.

The one canonicalization: ``request_id`` is stripped before comparison.  It
is client-side echo metadata, and a cache hit legitimately echoes the
priming request's id (documented on :class:`repro.service.client.RemotePdp`);
everything else — grant/deny, reason, entries used, the admitting
authorization, the full per-stage trace — must match byte for byte.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.api import Ltam
from repro.api.stages import CapacityStage
from repro.engine.query.evaluator import QueryEngine
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.requests import AccessRequest
from repro.core.serialization import dumps_authorizations
from repro.locations.multilevel import LocationHierarchy
from repro.locations.serialization import dumps as dumps_layout
from repro.service import (
    DecisionCache,
    FabricRouter,
    InvalidationBus,
    LtamServer,
    PartitionMap,
    ServiceClient,
    TieredDecisionCache,
)
from repro.service.protocol import (
    decision_to_dict,
    query_result_to_dict,
    records_to_wire,
    request_to_dict,
)
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.movement_db import MovementKind, MovementRecord

TOPOLOGIES = (
    "embedded-memory",
    "embedded-sqlite",
    "sharded",
    "server",
    "server-binary",
    "server-persistent-cache",
    "replicas",
    "partitioned",
    "partitioned-binary",
)

SUBJECT_COUNT = 36
ROUNDS = 4
EVENTS_PER_ROUND = 400
DECIDES_PER_ROUND = 150
#: The round after which every topology takes a compacting checkpoint —
#: LIVE/ARCHIVED-scoped queries diverge meaningfully from there on.
CHECKPOINT_AFTER_ROUND = 1
#: The round after which a topology with a ``migrate`` hook reshards —
#: late enough that the migrating subject carries archived *and* live
#: records, early enough that a post-migration round still exercises it.
RESHARD_AFTER_ROUND = 2
#: The round after which a topology with a ``restart`` hook is torn down
#: and rebooted (the durable-cache topology reuses its cache file across
#: the boundary) — same placement rationale as the reshard.
RESTART_AFTER_ROUND = 2

SUBPROCESS_ENV = "REPRO_CONFORMANCE_SUBPROCESS"


def subprocess_replicas() -> bool:
    return os.environ.get(SUBPROCESS_ENV, "") not in ("", "0")


# --------------------------------------------------------------------- #
# The workload script
# --------------------------------------------------------------------- #
class Workload:
    """The deterministic script every topology replays."""

    #: per-location occupancy limits; when non-empty every topology builds
    #: its engines with the :class:`CapacityStage` and these limits (and the
    #: partitioned topologies attach the invalidation bus so the capacity
    #: ledger replicates occupancy fabric-wide).
    capacities: Dict[str, int] = {}

    def __init__(self, seed: int = 11) -> None:
        self.graph = grid_building("B", 4, 4)
        self.hierarchy = LocationHierarchy(self.graph)
        self.subjects = generate_subjects(SUBJECT_COUNT)
        generator = AuthorizationWorkloadGenerator(self.hierarchy, seed=seed)
        #: one shared authorization list — granted everywhere, so the
        #: auto-generated auth ids agree across topologies.
        self.authorizations = generator.authorizations(self.subjects)
        events = generator.movement_events(self.subjects, ROUNDS * EVENTS_PER_ROUND)
        decide_gen = AuthorizationWorkloadGenerator(self.hierarchy, seed=seed + 1)
        self.rounds: List[Tuple[list, list, List[str]]] = []
        for index in range(ROUNDS):
            chunk = events[index * EVENTS_PER_ROUND : (index + 1) * EVENTS_PER_ROUND]
            requests = decide_gen.requests(self.subjects, DECIDES_PER_ROUND)
            self.rounds.append((chunk, requests, self._round_queries(chunk)))

    def _round_queries(self, chunk) -> List[str]:
        locations = sorted(self.hierarchy.primitive_names)
        at = chunk[len(chunk) // 2].time
        queries: List[str] = []
        for location in locations[:3]:
            queries.append(f"WHO IS IN {location} AT {at}")
            queries.append(f"WHO IS IN {location} AT {at} LIVE")
            queries.append(f"WHO IS IN {location}")
        for subject in self.subjects[:4]:
            queries.append(f"WHERE IS {subject} AT {at}")
            queries.append(f"WHERE IS {subject}")
            queries.append(f"ENTRIES OF {subject} INTO {locations[0]}")
            queries.append(f"ENTRIES OF {subject} INTO {locations[0]} LIVE")
            queries.append(f"CAN {subject} ENTER {locations[1]} AT {at}")
        queries.append(f"VIOLATIONS FOR {self.subjects[0]}")
        queries.append(f"AUTHORIZATIONS FOR {self.subjects[1]}")
        return queries


class FlashCrowdWorkload(Workload):
    """The global-capacity differential: a flash crowd on one location.

    One location gets an occupancy limit, and a rotating crowd of subjects
    converges on it round after round while everyone else roams the rest of
    the building.  Decision probes hammer the hot location every round —
    against a *full* room (``over_capacity`` denials) and against a room
    with slack (grants whose ``occupancy n/limit`` trace detail embeds the
    exact global count).

    In the partitioned topologies the crowd spans both partitions, so every
    one of those verdicts is byte-identical to the embedded reference only
    if the fabric counts occupants **globally** — the capacity ledger under
    test.  The crowd's observed entries never exceed the limit (capacity is
    enforced at *decide* time; the monitor's over-capacity alerting counts
    partition-local sessions and would legitimately diverge), and the
    workload's first subject is mid-stay inside the hot location when the
    harness reshards after round ``RESHARD_AFTER_ROUND`` — the moved stay
    must be counted exactly once afterwards.
    """

    HOT_CAPACITY = 6

    def __init__(self, seed: int = 29) -> None:
        self.graph = grid_building("B", 4, 4)
        self.hierarchy = LocationHierarchy(self.graph)
        self.subjects = generate_subjects(SUBJECT_COUNT)
        generator = AuthorizationWorkloadGenerator(self.hierarchy, seed=seed)
        horizon = generator.config.horizon
        locations = sorted(self.hierarchy.primitive_names)
        self.hot = locations[0]
        self.capacities = {self.hot: self.HOT_CAPACITY}
        # Everyone may enter the hot location at any time with an unlimited
        # budget: capacity must be the *deciding* stage for the probes, not
        # entry windows or budget exhaustion.
        self.authorizations = generator.authorizations(self.subjects) + [
            LocationTemporalAuthorization(
                (subject, self.hot), (0, horizon), (0, horizon), UNLIMITED_ENTRIES
            )
            for subject in self.subjects
        ]
        crowd = self.subjects[: self.HOT_CAPACITY + 2]
        #: who is inside the hot location at each round's decide point:
        #: full → slack → full (fresh members; the reshard victim
        #: ``subjects[0]`` mid-stay) → full (churned again).
        plan = (
            crowd[:6],
            crowd[:4],
            crowd[:3] + crowd[5:8],
            crowd[2:8],
        )
        assert all(len(occupants) <= self.HOT_CAPACITY for occupants in plan)
        inside: List[str] = []
        roaming: Dict[str, str] = {}
        span = horizon // ROUNDS
        self.rounds = []
        for index, occupants in enumerate(plan):
            base = index * span
            clock = iter(range(base, base + span - 20))
            chunk: List[MovementRecord] = []
            # Exits first, so observed occupancy never exceeds the limit.
            for subject in [s for s in inside if s not in occupants]:
                chunk.append(
                    MovementRecord(next(clock), subject, self.hot, MovementKind.EXIT)
                )
            for subject in [s for s in occupants if s not in inside]:
                station = roaming.pop(subject, None)
                if station is not None:
                    chunk.append(
                        MovementRecord(next(clock), subject, station, MovementKind.EXIT)
                    )
                chunk.append(
                    MovementRecord(next(clock), subject, self.hot, MovementKind.ENTER)
                )
            inside = list(occupants)
            # Background churn away from the hot location: every other
            # subject alternates between a station and outside, so both
            # partitions publish occupancy deltas for many locations every
            # round (the ledger replicates more than one counter).
            for offset, subject in enumerate(self.subjects):
                if subject in occupants:
                    continue
                station = roaming.pop(subject, None)
                if station is not None:
                    chunk.append(
                        MovementRecord(next(clock), subject, station, MovementKind.EXIT)
                    )
                else:
                    station = locations[1 + (offset + index) % (len(locations) - 1)]
                    roaming[subject] = station
                    chunk.append(
                        MovementRecord(next(clock), subject, station, MovementKind.ENTER)
                    )
            probe_at = base + span - 10
            requests = [
                AccessRequest(probe_at, subject, self.hot)
                for subject in self.subjects[:10]
            ]
            requests += [
                AccessRequest(
                    probe_at, subject, locations[1 + offset % (len(locations) - 1)]
                )
                for offset, subject in enumerate(self.subjects[10:20])
            ]
            self.rounds.append((chunk, requests, self._round_queries(chunk)))


def _apply_capacities(builder, workload: Workload):
    """Give an engine builder the workload's capacity configuration."""
    if workload.capacities:
        builder = builder.stage(CapacityStage())
        for location, limit in sorted(workload.capacities.items()):
            builder = builder.capacity(location, limit)
    return builder


def _capacity_args(workload: Workload) -> List[str]:
    """The workload's capacity configuration as ``repro serve`` flags."""
    args: List[str] = []
    for location, limit in sorted(workload.capacities.items()):
        args.extend(["--capacity", f"{location}={limit}"])
    return args


# --------------------------------------------------------------------- #
# Canonical serialization (the "byte-identical" definition)
# --------------------------------------------------------------------- #
def canonical_decision(payload: Dict) -> str:
    payload = dict(payload)
    request = dict(payload.get("request") or {})
    request.pop("request_id", None)
    payload["request"] = request
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_query(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class Transcript:
    """Everything a topology produced, in canonical form."""

    def __init__(self) -> None:
        self.decisions: List[str] = []
        self.queries: List[str] = []

    def first_divergence(self, other: "Transcript") -> Optional[str]:
        for kind, mine, theirs in (
            ("decision", self.decisions, other.decisions),
            ("query", self.queries, other.queries),
        ):
            if len(mine) != len(theirs):
                return f"{kind} count differs: {len(mine)} vs {len(theirs)}"
            for index, (a, b) in enumerate(zip(mine, theirs)):
                if a != b:
                    return f"{kind}[{index}] differs:\n  {a}\n  {b}"
        return None


# --------------------------------------------------------------------- #
# Topology runners
# --------------------------------------------------------------------- #
class EmbeddedTopology:
    """Reference runner: everything in-process, no cache."""

    def __init__(self, name: str, *, backend: Optional[str] = None, shards=None) -> None:
        self.name = name
        self._backend = backend
        self._shards = shards

    def start(self, workload: Workload, tmp_path) -> None:
        builder = _apply_capacities(Ltam.builder().hierarchy(workload.hierarchy), workload)
        if self._backend == "sqlite":
            builder = builder.backend("sqlite", str(tmp_path / f"{self.name}.db"))
        if self._shards is not None:
            builder = builder.shards(self._shards)
        self.engine = builder.build()
        self.engine.grant_all(workload.authorizations)
        self._queries = QueryEngine(self.engine)

    def observe(self, records) -> None:
        self.engine.observe_many(records)

    def decide(self, requests) -> List[str]:
        return [
            canonical_decision(decision_to_dict(decision))
            for decision in self.engine.decide_many(requests)
        ]

    def query(self, texts) -> List[str]:
        return [
            canonical_query(query_result_to_dict(self._queries.evaluate(text)))
            for text in texts
        ]

    def checkpoint(self) -> None:
        self.engine.checkpoint()

    def sync(self) -> None:
        pass

    def stop(self) -> None:
        pass


class ServerTopology:
    """One cached server; every interaction crosses the wire.

    With ``wire="binary"`` the client upgrades to the compact binary codec
    during connect; all responses decode back to the same canonical JSON.
    """

    name = "server"

    def __init__(self, wire: str = "json") -> None:
        self._wire = wire
        self.name = "server" if wire == "json" else f"server-{wire}"

    def start(self, workload: Workload, tmp_path) -> None:
        engine = _apply_capacities(
            Ltam.builder().hierarchy(workload.hierarchy), workload
        ).build()
        engine.grant_all(workload.authorizations)
        # slow_request_ms=0 arms telemetry fully: every request is traced
        # and sampled.  The transcript must not change — telemetry is inert.
        self._server = LtamServer(engine, cache=DecisionCache(), slow_request_ms=0.0)
        self._server.start()
        self._client = ServiceClient(
            *self._server.address, timeout=60.0, wire=self._wire
        )
        assert self._client.wire == self._wire, "wire negotiation did not land"

    def observe(self, records) -> None:
        self._client.observe_batch(records, mode="monitor", wait=True)

    def decide(self, requests) -> List[str]:
        raw = self._client.call(
            "decide_many",
            requests=[request_to_dict(request) for request in requests],
            trace=True,
        )
        return [canonical_decision(payload) for payload in raw["decisions"]]

    def query(self, texts) -> List[str]:
        return [
            canonical_query(self._client.call("query", text=text)) for text in texts
        ]

    def checkpoint(self) -> None:
        self._client.checkpoint()

    def sync(self) -> None:
        self._client.sync()

    def stop(self) -> None:
        self._client.close()
        self._server.stop()


class PersistentCacheServerTopology(ServerTopology):
    """One durable-cached server, killed and rebooted mid-trace.

    The engine runs over a SQLite movement file and the decision cache over
    a :class:`TieredDecisionCache` sidecar.  The ``restart`` hook (called by
    :func:`run_topology` after round ``RESTART_AFTER_ROUND``) stops the
    server, rebuilds the engine from the movement file and boots a fresh
    server against the *same* cache file — the warm pass must re-admit only
    still-valid rows, and the transcript must not notice the reboot.

    The monitor's alert history and open occupancy sessions are engine-local
    (the movement file does not persist them), so the restart hands them off
    exactly the way a fabric reshard hands them to a subject's new owner
    (``alerts.adopt`` / ``monitor.adopt_session``) — the cache file is the
    only state the *cache* layer carries across the boundary.
    """

    name = "server-persistent-cache"

    def __init__(self) -> None:
        super().__init__(wire="json")
        self.name = "server-persistent-cache"

    def start(self, workload: Workload, tmp_path) -> None:
        self._db_path = str(tmp_path / "persistent.db")
        self._cache_path = str(tmp_path / "persistent.cache.db")
        self._workload = workload
        engine = (
            _apply_capacities(Ltam.builder().hierarchy(workload.hierarchy), workload)
            .backend("sqlite", self._db_path)
            .build()
        )
        engine.grant_all(workload.authorizations)
        self._boot(engine)

    def _boot(self, engine) -> None:
        self._engine = engine
        self._cache = TieredDecisionCache(self._cache_path)
        self._server = LtamServer(engine, cache=self._cache, slow_request_ms=0.0)
        self._server.start()
        self._client = ServiceClient(*self._server.address, timeout=60.0)

    def restart(self, workload: Workload) -> None:
        old = self._engine
        sink = getattr(old, "alerts", None)
        alerts = list(sink.alerts) if sink is not None else []
        monitor = getattr(old, "monitor", None)
        sessions = (
            monitor.export_sessions(workload.subjects) if monitor is not None else []
        )
        self._client.close()
        self._server.stop()
        self._cache.close()
        engine = (
            _apply_capacities(Ltam.builder().hierarchy(workload.hierarchy), workload)
            .backend("sqlite", self._db_path)
            .build()
        )
        new_sink = getattr(engine, "alerts", None)
        if alerts and new_sink is not None:
            new_sink.adopt(alerts)
        monitor = getattr(engine, "monitor", None)
        if monitor is not None:
            for subject, location, entered_at, auth_id, overstay_flagged in sessions:
                authorization = None
                if auth_id is not None:
                    try:
                        authorization = engine.authorization_db.get(auth_id)
                    except Exception:  # noqa: BLE001 - degraded stay, not a crash
                        authorization = None
                monitor.adopt_session(
                    str(subject),
                    str(location),
                    int(entered_at),
                    authorization,
                    overstay_flagged=bool(overstay_flagged),
                )
        self._boot(engine)
        report = self._server.warm_report
        assert report is not None, "restart did not run the warm pass"
        assert report["examined"] > 0, (
            f"cache file was not reused across the restart: {report}"
        )

    def stop(self) -> None:
        super().stop()
        self._cache.close()


class ReplicaTopology:
    """Two cached replicas over one SQLite file + the invalidation bus.

    Observes, queries and checkpoints go to replica A (the writer);
    **decisions are served by replica B** — the replica that never saw the
    mutations locally and is only correct if the bus + pickup machinery
    works.  ``sync()`` (the wire op) is the round barrier.
    """

    name = "replicas"

    def start(self, workload: Workload, tmp_path) -> None:
        path = str(tmp_path / "replicas.db")
        engine_a = (
            _apply_capacities(Ltam.builder().hierarchy(workload.hierarchy), workload)
            .backend("sqlite", path)
            .build()
        )
        engine_a.grant_all(workload.authorizations)
        bus = InvalidationBus()
        self._server_a = LtamServer(
            engine_a, cache=DecisionCache(), bus=bus, replica_id="conf-a",
            slow_request_ms=0.0,
        )
        self._server_a.start()
        engine_b = (
            _apply_capacities(Ltam.builder().hierarchy(workload.hierarchy), workload)
            .backend("sqlite", path)
            .build()
        )
        self._server_b = LtamServer(
            engine_b, cache=DecisionCache(), bus=bus.address, replica_id="conf-b",
            slow_request_ms=0.0,
        )
        self._server_b.start()
        self.client_a = ServiceClient(*self._server_a.address, timeout=60.0)
        self.client_b = ServiceClient(*self._server_b.address, timeout=60.0)

    def observe(self, records) -> None:
        self.client_a.observe_batch(records, mode="monitor", wait=True)

    def decide(self, requests) -> List[str]:
        raw = self.client_b.call(
            "decide_many",
            requests=[request_to_dict(request) for request in requests],
            trace=True,
        )
        return [canonical_decision(payload) for payload in raw["decisions"]]

    def query(self, texts) -> List[str]:
        return [
            canonical_query(self.client_a.call("query", text=text)) for text in texts
        ]

    def checkpoint(self) -> None:
        self.client_a.checkpoint()

    def sync(self) -> None:
        self.client_b.sync()

    def stop(self) -> None:
        self.client_b.close()
        self.client_a.close()
        self._server_b.stop()
        self._server_a.stop()


class SubprocessReplicaTopology(ReplicaTopology):
    """The replica topology with real ``repro serve`` processes.

    Replica A hosts the bus (``--bus 0``) and loads the authorizations into
    the shared SQLite file; replica B joins via ``--peers``.  The bound
    ports are read from the two banner lines the CLI prints.
    """

    name = "replicas"

    def start(self, workload: Workload, tmp_path) -> None:
        layout = tmp_path / "layout.json"
        auths = tmp_path / "auths.json"
        layout.write_text(dumps_layout(workload.graph), encoding="utf-8")
        auths.write_text(
            dumps_authorizations(workload.authorizations), encoding="utf-8"
        )
        path = str(tmp_path / "replicas.db")
        self._procs: List[subprocess.Popen] = []
        env = dict(os.environ)
        out_a = self._spawn(
            tmp_path,
            "a",
            ["--layout", str(layout), "--auths", str(auths), "--db", path,
             "--port", "0", "--bus", "0", "--replica-id", "conf-a",
             "--slow-ms", "0", *_capacity_args(workload)],
            env,
        )
        port_a = self._await_banner(out_a, r"serving on [^:]+:(\d+) ")
        bus_port = self._await_banner(out_a, r"bus on [^:]+:(\d+) ")
        out_b = self._spawn(
            tmp_path,
            "b",
            ["--layout", str(layout), "--db", path, "--port", "0",
             "--peers", f"127.0.0.1:{bus_port}", "--replica-id", "conf-b",
             "--slow-ms", "0", *_capacity_args(workload)],
            env,
        )
        port_b = self._await_banner(out_b, r"serving on [^:]+:(\d+) ")
        self.client_a = ServiceClient("127.0.0.1", port_a, timeout=60.0)
        self.client_b = ServiceClient("127.0.0.1", port_b, timeout=60.0)

    def _spawn(self, tmp_path, tag: str, args: List[str], env) -> str:
        out_path = tmp_path / f"serve-{tag}.out"
        handle = open(out_path, "w")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *args],
            stdout=handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self._procs.append(process)
        return str(out_path)

    @staticmethod
    def _await_banner(out_path: str, pattern: str, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                text = open(out_path).read()
            except OSError:
                text = ""
            match = re.search(pattern, text)
            if match:
                return int(match.group(1))
            time.sleep(0.1)
        raise AssertionError(f"no banner matching {pattern!r} in {out_path}: {text!r}")

    def stop(self) -> None:
        self.client_b.close()
        self.client_a.close()
        for process in self._procs:
            process.terminate()
        for process in self._procs:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


class PartitionedTopology:
    """Two cached partitions behind a client-side fabric router.

    Each partition server holds the full layout and authorization set but
    only *its* subjects' movement state; the router owns the split.  The
    ``migrate`` hook (called by :func:`run_topology` after round
    ``RESHARD_AFTER_ROUND``) pins the workload's first subject to the other
    partition and reshards — the canonical "move a hot subject off a busy
    partition, online" operation — and the transcript must not notice.

    With ``wire="binary"`` the router's partition connection pools negotiate
    the binary codec, so scatter-gather traffic crosses the fabric in the
    compact format — and must still replay byte-identically.
    """

    name = "partitioned"
    PARTITIONS = ("east", "west")

    def __init__(self, wire: str = "json") -> None:
        self._wire = wire
        self.name = "partitioned" if wire == "json" else f"partitioned-{wire}"

    def start(self, workload: Workload, tmp_path) -> None:
        self._servers = []
        addresses = {}
        # With capacities in play the partitions need the invalidation bus:
        # it carries the occupancy vectors the capacity ledger folds, so
        # every partition counts the hot location's occupants fabric-wide.
        # The first partition hosts the bus; the rest join by address.
        bus = InvalidationBus() if workload.capacities else None
        for partition in self.PARTITIONS:
            engine = _apply_capacities(
                Ltam.builder().hierarchy(workload.hierarchy), workload
            ).build()
            engine.grant_all(workload.authorizations)
            server = LtamServer(
                engine, cache=DecisionCache(), partition=partition,
                bus=(bus if bus is None or not self._servers else bus.address),
                slow_request_ms=0.0,
            )
            server.start()
            self._servers.append(server)
            addresses[partition] = "%s:%d" % server.address
        self._router = FabricRouter(PartitionMap(addresses), wire=self._wire)

    def observe(self, records) -> None:
        self._router.observe_batch(records, mode="monitor", wait=True)

    def decide(self, requests) -> List[str]:
        raw = self._router.decide_many_raw(
            [request_to_dict(request) for request in requests], trace=True
        )
        return [canonical_decision(payload) for payload in raw]

    def query(self, texts) -> List[str]:
        return [canonical_query(self._router.query_raw(text)) for text in texts]

    def checkpoint(self) -> None:
        self._router.checkpoint_raw()

    def sync(self) -> None:
        self._router.sync_raw()

    def migrate(self, workload: Workload) -> None:
        current = self._router.partition_map
        hot = workload.subjects[0]
        source = current.owner(hot)
        target = next(name for name in current.names if name != source)
        summary = self._router.reshard(current.with_assignment(hot, target))
        assert hot in summary["subjects"], (
            f"reshard was a no-op: {hot!r} did not move ({summary})"
        )

    def stop(self) -> None:
        self._router.close()
        for server in self._servers:
            server.stop()


class SubprocessPartitionedTopology(PartitionedTopology):
    """The partitioned topology with real processes end to end.

    Two ``repro serve --partition`` processes (in-memory backends — the
    fabric shards state, nothing is shared) behind a real ``repro route``
    process; the harness speaks to the router's socket with an unmodified
    :class:`ServiceClient`, and the mid-trace reshard travels over the wire
    as the router's ``reshard`` op.
    """

    name = "partitioned"

    def start(self, workload: Workload, tmp_path) -> None:
        layout = tmp_path / "layout.json"
        auths = tmp_path / "auths.json"
        layout.write_text(dumps_layout(workload.graph), encoding="utf-8")
        auths.write_text(dumps_authorizations(workload.authorizations), encoding="utf-8")
        self._procs: List[subprocess.Popen] = []
        env = dict(os.environ)
        addresses = {}
        bus_port: Optional[int] = None
        for partition in self.PARTITIONS:
            args = ["--layout", str(layout), "--auths", str(auths), "--port", "0",
                    "--partition", partition, "--slow-ms", "0",
                    *_capacity_args(workload)]
            # Same bus topology as the in-process variant: with capacities
            # the first partition hosts the invalidation bus, the rest join
            # it, and the ledger replicates occupancy across the processes.
            if workload.capacities:
                args.extend(
                    ["--bus", "0"] if bus_port is None else ["--peers", f"127.0.0.1:{bus_port}"]
                )
            out = self._spawn(tmp_path, partition, "serve", args, env)
            port = SubprocessReplicaTopology._await_banner(
                out, r"serving on [^:]+:(\d+) "
            )
            if workload.capacities and bus_port is None:
                bus_port = SubprocessReplicaTopology._await_banner(
                    out, r"bus on [^:]+:(\d+) "
                )
            addresses[partition] = f"127.0.0.1:{port}"
        self._map = PartitionMap(addresses)
        map_path = tmp_path / "fabric.json"
        self._map.save(str(map_path))
        out = self._spawn(
            tmp_path, "router", "route",
            ["--map", str(map_path), "--port", "0", "--slow-ms", "0"], env,
        )
        port = SubprocessReplicaTopology._await_banner(out, r"serving on [^:]+:(\d+) ")
        self._client = ServiceClient("127.0.0.1", port, timeout=60.0, wire=self._wire)
        assert self._client.wire == self._wire, "wire negotiation did not land"

    def _spawn(self, tmp_path, tag: str, command: str, args: List[str], env) -> str:
        out_path = tmp_path / f"{command}-{tag}.out"
        handle = open(out_path, "w")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", command, *args],
            stdout=handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self._procs.append(process)
        return str(out_path)

    def observe(self, records) -> None:
        self._client.call(
            "observe_batch", records=records_to_wire(records), mode="monitor", wait=True
        )

    def decide(self, requests) -> List[str]:
        raw = self._client.call(
            "decide_many",
            requests=[request_to_dict(request) for request in requests],
            trace=True,
        )
        return [canonical_decision(payload) for payload in raw["decisions"]]

    def query(self, texts) -> List[str]:
        return [
            canonical_query(self._client.call("query", text=text)) for text in texts
        ]

    def checkpoint(self) -> None:
        self._client.call("checkpoint")

    def sync(self) -> None:
        self._client.call("sync")

    def migrate(self, workload: Workload) -> None:
        hot = workload.subjects[0]
        source = self._map.owner(hot)
        target = next(name for name in self._map.names if name != source)
        self._map = self._map.with_assignment(hot, target)
        summary = self._client.call("reshard", map=self._map.to_wire())
        assert hot in summary["subjects"], (
            f"reshard was a no-op: {hot!r} did not move ({summary})"
        )

    def stop(self) -> None:
        self._client.close()
        for process in self._procs:
            process.terminate()
        for process in self._procs:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


def make_topology(name: str):
    if name == "embedded-memory":
        return EmbeddedTopology(name)
    if name == "embedded-sqlite":
        return EmbeddedTopology(name, backend="sqlite")
    if name == "sharded":
        return EmbeddedTopology(name, shards=4)
    if name == "server":
        return ServerTopology()
    if name == "server-binary":
        return ServerTopology(wire="binary")
    if name == "server-persistent-cache":
        return PersistentCacheServerTopology()
    if name == "replicas":
        return SubprocessReplicaTopology() if subprocess_replicas() else ReplicaTopology()
    if name in ("partitioned", "partitioned-binary"):
        wire = "binary" if name.endswith("-binary") else "json"
        return (
            SubprocessPartitionedTopology(wire=wire)
            if subprocess_replicas()
            else PartitionedTopology(wire=wire)
        )
    raise ValueError(f"unknown topology {name!r}")


def run_topology(name: str, workload: Workload, tmp_path) -> Tuple[Transcript, float]:
    """Replay the whole workload on one topology; returns (transcript, seconds)."""
    topology = make_topology(name)
    topology.start(workload, tmp_path)
    transcript = Transcript()
    started = time.perf_counter()
    try:
        for index, (chunk, requests, queries) in enumerate(workload.rounds):
            topology.observe(chunk)
            topology.sync()  # the coherence barrier (a no-op off the bus)
            transcript.decisions.extend(topology.decide(requests))
            transcript.queries.extend(topology.query(queries))
            if index == CHECKPOINT_AFTER_ROUND:
                topology.checkpoint()
                topology.sync()
            if index == RESHARD_AFTER_ROUND:
                # Mid-trace live migration on topologies that support it
                # (the partitioned fabric); the transcript must not notice.
                migrate = getattr(topology, "migrate", None)
                if migrate is not None:
                    migrate(workload)
            if index == RESTART_AFTER_ROUND:
                # Mid-trace kill + reboot on topologies that support it (the
                # durable-cache server); the transcript must not notice that
                # either — warmed entries included.
                restart = getattr(topology, "restart", None)
                if restart is not None:
                    restart(workload)
    finally:
        topology.stop()
    return transcript, time.perf_counter() - started
