"""Integration tests that replay every worked example of the paper end to end.

These tests are the executable record behind EXPERIMENTS.md: each test maps
to one figure, table or in-text example and asserts the paper's stated
outcome.
"""

import pytest

from repro.core.accessibility import find_inaccessible
from repro.core.derivation import DerivationEngine
from repro.core.grant import authorize_route
from repro.engine.access_control import AccessControlEngine
from repro.engine.query.evaluator import QueryEngine
from repro.locations.layouts import figure4_hierarchy, ntu_campus_hierarchy
from repro.locations.routes import RouteKind, classify_route, find_route, is_route
from repro.paper import fixtures as paper


class TestFigure1And2:
    """E1 — the NTU campus multilevel location graph."""

    def test_campus_contents(self):
        hierarchy = ntu_campus_hierarchy()
        assert hierarchy.root.name == "NTU"
        assert hierarchy.composite_names == {"NTU", "SCE", "EEE", "CEE", "SME", "NBS"}
        assert {"SCE.GO", "SCE.DeanOffice", "CAIS", "CHIPES", "EEE.GO", "Lab1", "Lab2"} <= hierarchy.primitive_names

    def test_entry_locations_shown_with_double_lines(self):
        hierarchy = ntu_campus_hierarchy()
        assert hierarchy.entry_locations_of("SCE") == {"SCE.GO", "SCE.SectionC"}
        assert hierarchy.entry_locations_of("EEE") == {"EEE.GO", "EEE.SectionC"}

    def test_part_of_relation(self):
        hierarchy = ntu_campus_hierarchy()
        assert hierarchy.is_part_of("CAIS", "SCE")
        assert hierarchy.is_part_of("SCE", "NTU")
        assert hierarchy.is_part_of("CAIS", "NTU")


class TestSection31Routes:
    """E2 — the simple and complex route examples of Section 3.1."""

    def test_simple_route(self):
        hierarchy = ntu_campus_hierarchy()
        route = ["SCE.DeanOffice", "SCE.SectionA", "SCE.SectionB", "CAIS"]
        assert is_route(hierarchy, route)
        assert classify_route(hierarchy, route) == RouteKind.SIMPLE

    def test_complex_route(self):
        hierarchy = ntu_campus_hierarchy()
        route = [
            "EEE.DeanOffice", "EEE.SectionA", "EEE.GO",
            "SCE.GO", "SCE.SectionA", "SCE.DeanOffice",
        ]
        assert is_route(hierarchy, route)
        assert classify_route(hierarchy, route) == RouteKind.COMPLEX

    def test_shortest_route_search_finds_the_paper_complex_route(self):
        hierarchy = ntu_campus_hierarchy()
        found = find_route(hierarchy, "EEE.DeanOffice", "SCE.DeanOffice")
        assert list(found) == [
            "EEE.DeanOffice", "EEE.SectionA", "EEE.GO",
            "SCE.GO", "SCE.SectionA", "SCE.DeanOffice",
        ]


class TestSection4Examples:
    """E3 — rule derivation Examples 1, 2, 3."""

    def test_examples_1_2_3(self):
        hierarchy = ntu_campus_hierarchy()
        engine = DerivationEngine(paper.paper_directory(), hierarchy)
        a1 = paper.example_base_authorization_a1()
        for rule_fn in (paper.example_rule_r1, paper.example_rule_r2, paper.example_rule_r3):
            engine.add_rule(rule_fn(a1))
        result = engine.derive([a1], now=10)

        # Example 1: a2 = ([5,20],[15,50],(Bob,CAIS),2)
        assert paper.expected_derived_a2() in result.derived
        # Example 2: a3 = ([10,20],[15,50],(Bob,CAIS),2)
        assert paper.expected_derived_a3() in result.derived
        # Example 3: one derived authorization per location on the route.
        r3_locations = {auth.location for auth in result.derived_by_rule("r3")}
        assert r3_locations == {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}

    def test_example1_revocation_on_supervisor_change(self):
        """'the authorization for Bob will be revoked' when Alice's supervisor changes."""
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(hierarchy)
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        bob_auths = engine.authorization_db.for_subject_location("Bob", "CAIS")
        assert len(bob_auths) == 1
        # Supervisor changes: revoke the old derived authorization and re-derive.
        engine.profile_db.set_supervisor("Alice", "Carol")
        engine.authorization_db.revoke_derived_from(base.auth_id)
        engine.derive_authorizations()
        assert engine.authorization_db.for_subject_location("Bob", "CAIS") == []
        assert len(engine.authorization_db.for_subject_location("Carol", "CAIS")) == 1


class TestSection5Enforcement:
    """E4 — the access-request worked example of Section 5."""

    def test_timeline_decisions(self):
        engine = AccessControlEngine(ntu_campus_hierarchy())
        engine.grant_all(paper.section5_authorizations())
        observed = []
        for step in paper.section5_timeline():
            if step.action == "request":
                decision = engine.request_access(step.time, step.subject, step.location)
                observed.append((step.time, step.subject, step.location, decision.granted))
                if decision.granted:
                    engine.observe_entry(step.time, step.subject, step.location)
            else:
                engine.observe_exit(step.time, step.subject, step.location)
        assert observed == [
            (10, "Alice", "CAIS", True),
            (15, "Bob", "CAIS", False),
            (16, "Bob", "CHIPES", True),
            (30, "Bob", "CHIPES", False),
        ]

    def test_query_engine_answers_the_section5_questions(self):
        engine = AccessControlEngine(ntu_campus_hierarchy())
        engine.grant_all(paper.section5_authorizations())
        engine.request_and_enter(10, "Alice", "CAIS")
        engine.request_and_enter(16, "Bob", "CHIPES")
        engine.observe_exit(20, "Bob", "CHIPES")
        queries = QueryEngine(engine)
        assert queries.evaluate("CAN Bob ENTER CHIPES AT 30").scalar is False
        assert queries.evaluate("ENTRIES OF Bob INTO CHIPES").scalar == 1
        assert queries.evaluate("WHERE IS Alice").scalar == "CAIS"


class TestSection6InaccessibleLocations:
    """E6 — Figure 4, Table 1 and Table 2."""

    def test_c_is_the_only_inaccessible_location(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        assert report.inaccessible == {"C"}

    def test_table2_final_row(self):
        report = find_inaccessible(figure4_hierarchy(), "Alice", paper.table1_authorizations())
        for location, (grant, departure) in paper.table2_expected_times().items():
            assert report.grant_time(location) == grant
            assert report.departure_time(location) == departure

    def test_route_level_explanation(self):
        """Why C is inaccessible: neither A→B→C nor A→D→C is an authorized route."""
        auths = paper.table1_authorizations()
        via_b = authorize_route(["A", "B", "C"], "Alice", auths)
        via_d = authorize_route(["A", "D", "C"], "Alice", auths)
        assert not via_b.authorized and via_b.blocking_location == "C"
        assert not via_d.authorized and via_d.blocking_location == "C"
        # ... while B and D themselves are reachable.
        assert authorize_route(["A", "B"], "Alice", auths).authorized
        assert authorize_route(["A", "D"], "Alice", auths).authorized
