"""Unit tests for the administrator CLI."""

import io

import pytest

from repro.cli import main
from repro.core.serialization import save_authorizations
from repro.locations.layouts import figure4_graph, ntu_campus
from repro.locations.serialization import save as save_layout
from repro.paper import fixtures as paper


@pytest.fixture
def deployment(tmp_path):
    layout_path = str(tmp_path / "campus.json")
    auths_path = str(tmp_path / "auths.json")
    save_layout(ntu_campus(), layout_path)
    save_authorizations(paper.section5_authorizations(), auths_path)
    return layout_path, auths_path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestValidateLayout:
    def test_valid_layout(self, deployment):
        layout_path, _ = deployment
        code, output = run_cli("validate-layout", layout_path)
        assert code == 0
        assert "OK" in output
        assert "20 primitive locations" in output

    def test_missing_file(self, tmp_path):
        code, output = run_cli("validate-layout", str(tmp_path / "nope.json"))
        assert code == 1
        assert "error" in output


class TestInaccessible:
    def test_figure4_example(self, tmp_path):
        layout_path = str(tmp_path / "fig4.json")
        auths_path = str(tmp_path / "table1.json")
        save_layout(figure4_graph(), layout_path)
        save_authorizations(paper.table1_authorizations(), auths_path)
        code, output = run_cli(
            "inaccessible", "--layout", layout_path, "--auths", auths_path, "--subject", "Alice"
        )
        assert code == 0
        assert "inaccessible : C" in output
        assert "A, B, D" in output


class TestCheck:
    def test_granted_request(self, deployment):
        layout_path, auths_path = deployment
        code, output = run_cli(
            "check", "--layout", layout_path, "--auths", auths_path,
            "--subject", "Alice", "--location", "CAIS", "--time", "15",
        )
        assert code == 0
        assert "GRANTED" in output

    def test_denied_request(self, deployment):
        layout_path, auths_path = deployment
        code, output = run_cli(
            "check", "--layout", layout_path, "--auths", auths_path,
            "--subject", "Bob", "--location", "CAIS", "--time", "15",
        )
        assert code == 2
        assert "DENIED" in output
        assert "no_authorization" in output


class TestQuery:
    def test_authorizations_query(self, deployment):
        layout_path, auths_path = deployment
        code, output = run_cli(
            "query", "--layout", layout_path, "--auths", auths_path, "AUTHORIZATIONS FOR Alice"
        )
        assert code == 0
        assert "CAIS" in output

    def test_malformed_query_reports_error(self, deployment):
        layout_path, auths_path = deployment
        code, output = run_cli(
            "query", "--layout", layout_path, "--auths", auths_path, "HELLO WORLD"
        )
        assert code == 1
        assert "error" in output


class TestExampleCampus:
    def test_writes_usable_files(self, tmp_path):
        layout_path = str(tmp_path / "ntu.json")
        auths_path = str(tmp_path / "auths.json")
        code, output = run_cli("example-campus", "--out", layout_path, "--auths-out", auths_path)
        assert code == 0
        # The generated files immediately work with the other commands.
        code, output = run_cli(
            "check", "--layout", layout_path, "--auths", auths_path,
            "--subject", "Alice", "--location", "CAIS", "--time", "15",
        )
        assert code == 0


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCheckpoint:
    def _seeded_db(self, tmp_path):
        from repro.storage.movement_db import (
            MovementKind,
            MovementRecord,
            SqliteMovementDatabase,
        )

        path = str(tmp_path / "deployment.db")
        database = SqliteMovementDatabase(path)
        database.record_many(
            [
                MovementRecord(index, f"user-{index % 5}", "lobby", MovementKind.ENTER)
                if index % 2 == 0
                else MovementRecord(index, f"user-{index % 5}", "lobby", MovementKind.EXIT)
                for index in range(50)
            ]
        )
        database.close()
        return path

    def test_checkpoint_compacts_the_log(self, tmp_path):
        from repro.storage.movement_db import SqliteMovementDatabase

        path = self._seeded_db(tmp_path)
        code, output = run_cli("checkpoint", "--db", path)
        assert code == 0
        assert "checkpoint @ 50" in output
        assert "50 event(s) archived" in output
        assert "live log: 50 -> 0" in output
        reopened = SqliteMovementDatabase(path)
        assert len(reopened) == 0
        assert reopened.archived_count == 50
        assert reopened.entry_count("user-0", "lobby") == 5
        reopened.close()

    def test_no_compact_leaves_the_log(self, tmp_path):
        from repro.storage.movement_db import SqliteMovementDatabase

        path = self._seeded_db(tmp_path)
        code, output = run_cli("checkpoint", "--db", path, "--no-compact")
        assert code == 0
        assert "0 event(s) archived" in output
        reopened = SqliteMovementDatabase(path)
        assert len(reopened) == 50
        assert reopened.events_since_checkpoint == 0
        reopened.close()

    def test_missing_database_path_fails_instead_of_creating_one(self, tmp_path):
        import os

        missing = str(tmp_path / "typo.db")
        code, output = run_cli("checkpoint", "--db", missing)
        assert code == 1
        assert "error" in output
        assert not os.path.exists(missing)


class TestServe:
    def _spawn(self, *argv):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )

    def test_serve_boots_and_answers(self, deployment):
        import re

        from repro.service import ServiceClient

        layout_path, auths_path = deployment
        process = self._spawn(
            "--layout", layout_path, "--auths", auths_path, "--port", "0"
        )
        try:
            banner = process.stdout.readline()
            match = re.search(
                r"serving on 127\.0\.0\.1:(\d+) \(backend=memory, cache=on, wire=binary\)",
                banner,
            )
            assert match, f"unexpected serve banner: {banner!r}"
            port = int(match.group(1))
            with ServiceClient("127.0.0.1", port) as client:
                decision = client.decide((15, "Alice", "CAIS"))
                assert decision.granted
                client.observe_entry(15, "Alice", "CAIS")
                assert client.query("ENTRIES OF Alice INTO CAIS").scalar == 1
                assert client.health()["status"] == "ok"
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_serve_parser_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--layout", "campus.json",
                "--db", "deploy.db",
                "--port", "7471",
                "--no-cache",
                "--checkpoint-every-events", "5000",
                "--retain-archived", "100000",
            ]
        )
        assert args.command == "serve"
        assert args.db == "deploy.db" and args.port == 7471
        assert args.no_cache and args.checkpoint_every_events == 5000
        assert args.retain_archived == 100000

    def test_retention_without_trigger_fails(self, deployment):
        layout_path, _ = deployment
        code, output = run_cli(
            "serve", "--layout", layout_path, "--retain-archived", "10", "--port", "0"
        )
        assert code == 1
        assert "checkpoint trigger" in output

    def test_replication_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--layout", "campus.json",
                "--db", "deploy.db",
                "--peers", "10.0.0.5:7472",
                "--replica-id", "b",
                "--sync-interval", "0.5",
            ]
        )
        assert args.peers == "10.0.0.5:7472"
        assert args.replica_id == "b" and args.sync_interval == 0.5

    def test_bus_and_peers_are_mutually_exclusive(self):
        import pytest

        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--layout", "c.json", "--db", "d.db",
                 "--bus", "7472", "--peers", "x:7472"]
            )

    def test_replication_requires_a_shared_db(self, deployment):
        """--bus/--peers without --db would be a silently-diverging fleet:
        each replica's in-memory projection has nothing pickup() can sync."""
        layout_path, auths_path = deployment
        code, output = run_cli(
            "serve", "--layout", layout_path, "--auths", auths_path,
            "--peers", "127.0.0.1:7472", "--port", "0",
        )
        assert code == 1
        assert "require --db" in output


class TestRoute:
    """The fabric commands: 'serve --partition/--map' and 'repro route'."""

    def _partition_servers(self, names=("east", "west")):
        from repro.api import Ltam
        from repro.locations.multilevel import LocationHierarchy
        from repro.paper import fixtures as paper
        from repro.service import LtamServer, PartitionMap

        servers = []
        addresses = {}
        for name in names:
            engine = Ltam.builder().hierarchy(LocationHierarchy(ntu_campus())).build()
            engine.grant_all(paper.section5_authorizations())
            server = LtamServer(engine, partition=name)
            server.start()
            servers.append(server)
            addresses[name] = "%s:%d" % server.address
        return servers, PartitionMap(addresses)

    def test_fabric_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--layout", "campus.json",
             "--partition", "east", "--map", "fabric.json"]
        )
        assert args.partition == "east" and args.map_path == "fabric.json"

        args = build_parser().parse_args(
            ["route", "--map", "fabric.json", "--port", "0",
             "--pool-size", "2", "--status"]
        )
        assert args.command == "route"
        assert args.map_path == "fabric.json" and args.pool_size == 2 and args.status

    def test_serve_rejects_a_partition_missing_from_the_map(self, deployment, tmp_path):
        from repro.service import PartitionMap

        layout_path, auths_path = deployment
        map_path = str(tmp_path / "fabric.json")
        PartitionMap({"east": "127.0.0.1:7481"}).save(map_path)
        code, output = run_cli(
            "serve", "--layout", layout_path, "--auths", auths_path,
            "--partition", "west", "--map", map_path, "--port", "0",
        )
        assert code == 1
        assert "not in the map" in output and "east" in output

    def test_route_status_reports_every_partition(self, tmp_path):
        servers, partition_map = self._partition_servers()
        map_path = str(tmp_path / "fabric.json")
        partition_map.save(map_path)
        try:
            code, output = run_cli("route", "--map", map_path, "--status")
            assert code == 0
            assert "map v1 — fabric ok" in output
            assert "east" in output and "west" in output
            assert "coverage=" in output
        finally:
            for server in servers:
                server.stop()

    def test_route_status_degrades_when_a_partition_is_down(self, tmp_path):
        servers, partition_map = self._partition_servers()
        map_path = str(tmp_path / "fabric.json")
        partition_map.save(map_path)
        servers[1].stop()  # kill "west"
        try:
            code, output = run_cli("route", "--map", map_path, "--status")
            assert code == 2
            assert "fabric degraded" in output
            assert "unreachable" in output
        finally:
            servers[0].stop()

    def test_route_boots_and_routes(self, tmp_path):
        import re
        import subprocess
        import sys
        from pathlib import Path

        from repro.service import ServiceClient

        servers, partition_map = self._partition_servers()
        map_path = str(tmp_path / "fabric.json")
        partition_map.save(map_path)
        env = dict(__import__("os").environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            (":" + env["PYTHONPATH"]) if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "route", "--map", map_path, "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(
                r"serving on 127\.0\.0\.1:(\d+) \(role=router, map=v1, "
                r"wire=binary, partitions=east,west\)",
                banner,
            )
            assert match, f"unexpected route banner: {banner!r}"
            port = int(match.group(1))
            with ServiceClient("127.0.0.1", port) as client:
                decision = client.decide((15, "Alice", "CAIS"))
                assert decision.granted
                client.observe_entry(15, "Alice", "CAIS")
                assert client.query("WHERE IS Alice").scalar == "CAIS"
                report = client.health()
                assert report["role"] == "router" and report["status"] == "ok"
        finally:
            process.terminate()
            process.wait(timeout=10)
            for server in servers:
                server.stop()


def _seed_sidecar(path, subject="Alice", location="CAIS", time=15):
    from repro.api.decision import Decision
    from repro.core.requests import AccessRequest, DenialReason
    from repro.service.cache_store import TieredDecisionCache, WireFragments
    from repro.service.protocol import decision_to_dict

    cache = TieredDecisionCache(path)
    try:
        decision = Decision.denied_by(
            AccessRequest(time, subject, location), DenialReason.NO_AUTHORIZATION
        )
        cache.put(
            subject, location, time, decision,
            payload=WireFragments(decision_to_dict(decision)),
        )
    finally:
        cache.close()


class TestCacheCommand:
    def test_stats_reports_the_sidecar(self, tmp_path):
        path = str(tmp_path / "decisions.cache.db")
        _seed_sidecar(path)
        code, output = run_cli("cache", "stats", "--path", path)
        assert code == 0
        assert "1 persisted" in output
        assert "bucket=1" in output
        assert "(never warmed)" in output

    def test_purge_drops_every_row(self, tmp_path):
        path = str(tmp_path / "decisions.cache.db")
        _seed_sidecar(path)
        code, output = run_cli("cache", "purge", "--path", path)
        assert code == 0
        assert "purged 1" in output
        code, output = run_cli("cache", "stats", "--path", path)
        assert code == 0
        assert "0 persisted" in output

    def test_missing_file_fails_loudly(self, tmp_path):
        path = tmp_path / "nope.cache.db"
        code, output = run_cli("cache", "stats", "--path", str(path))
        assert code == 1
        assert "no cache sidecar" in output
        # The typo'd path must not be silently created as an empty sidecar.
        assert not path.exists()

    def test_foreign_sqlite_file_is_rejected(self, tmp_path):
        from repro.storage.movement_db import SqliteMovementDatabase

        path = str(tmp_path / "movements.db")
        SqliteMovementDatabase(path).close()
        code, output = run_cli("cache", "stats", "--path", path)
        assert code == 1
        assert "is not a cache sidecar" in output

    def test_warm_validates_in_place_and_stamps_the_fingerprint(
        self, deployment, tmp_path
    ):
        layout_path, auths_path = deployment
        path = str(tmp_path / "decisions.cache.db")
        _seed_sidecar(path)
        code, output = run_cli(
            "cache", "warm", "--path", path,
            "--layout", layout_path, "--auths", auths_path,
        )
        assert code == 0
        assert "1 examined, 1 valid, 0 dropped" in output
        code, output = run_cli("cache", "stats", "--path", path)
        assert code == 0
        assert "(never warmed)" not in output

    def test_serve_cache_parser_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--layout", "campus.json",
                "--cache-path", "decisions.cache.db",
                "--cache-spill", "50000",
                "--max-connections", "64",
                "--log-requests",
            ]
        )
        assert args.cache_path == "decisions.cache.db"
        assert args.cache_spill == 50000
        assert args.max_connections == 64 and args.log_requests

    def test_cache_path_conflicts_with_no_cache(self, deployment, tmp_path):
        layout_path, _ = deployment
        code, output = run_cli(
            "serve", "--layout", layout_path, "--no-cache",
            "--cache-path", str(tmp_path / "d.db"), "--port", "0",
        )
        assert code == 1
        assert "mutually exclusive" in output

    def test_cache_spill_needs_cache_path(self, deployment):
        layout_path, _ = deployment
        code, output = run_cli(
            "serve", "--layout", layout_path, "--cache-spill", "10", "--port", "0"
        )
        assert code == 1
        assert "--cache-spill needs --cache-path" in output
