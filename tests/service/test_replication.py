"""Replica-coherent serving and the PEP-routed ``enforce`` op.

Two kinds of properties are proven here:

* **enforce semantics** — every remote enforcement (cached or not) lands in
  the audit log, cache hits carry a ``CACHED`` generation marker, and
  denials re-emit their alert;
* **replica coherence** — two ``LtamServer`` replicas over one SQLite file
  with an invalidation bus serve parity-correct decisions after the other
  replica's observes and admin mutations, including across replica restarts.

The cross-topology conformance suite (``tests/conformance``) exercises the
same topology against full workload traces; these tests pin the individual
mechanisms.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.alerts import AlertKind
from repro.engine.audit import AuditEntryKind
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.service import (
    ConnectionPool,
    DecisionCache,
    InvalidationBus,
    LtamServer,
    RemotePep,
    ServiceClient,
)

SUBJECT_COUNT = 30


def _hierarchy() -> LocationHierarchy:
    return LocationHierarchy(grid_building("B", 4, 4))


def _seeded_engine(hierarchy=None, *, path=None) -> Ltam:
    hierarchy = hierarchy if hierarchy is not None else _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=11)
    subjects = generate_subjects(SUBJECT_COUNT)
    builder = Ltam.builder().hierarchy(hierarchy)
    if path is not None:
        builder = builder.backend("sqlite", path)
    engine = builder.build()
    engine.grant_all(generator.authorizations(subjects))
    engine.movement_db.record_many(generator.movement_events(subjects, 1_000))
    return engine


def _granted_request(engine, count=80, seed=23):
    generator = AuthorizationWorkloadGenerator(engine.hierarchy, seed=seed)
    for candidate in generator.requests(generate_subjects(SUBJECT_COUNT), count):
        if engine.decide(candidate).granted:
            return candidate
    raise AssertionError("no granted request in the pool")


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestEnforceOp:
    def test_every_enforcement_is_audited_and_hits_are_marked_cached(self):
        engine = _seeded_engine()
        with LtamServer(engine, cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                request = _granted_request(engine)
                base = len(engine.audit.of_kind(AuditEntryKind.DECISION))
                first, first_cached = client.enforce_detail(request)
                second, second_cached = client.enforce_detail(request)
                assert first.granted and second.granted
                assert not first_cached and second_cached
                decisions = engine.audit.of_kind(AuditEntryKind.DECISION)
                assert len(decisions) == base + 2  # the hit was re-audited
                notes = [
                    entry
                    for entry in engine.audit.of_kind(AuditEntryKind.NOTE)
                    if "CACHED" in str(entry.payload)
                ]
                assert len(notes) == 1
                assert "generation" in str(notes[0].payload)
                assert notes[0].subject == request.subject

    def test_cached_denial_re_emits_its_alert(self):
        engine = _seeded_engine()
        with LtamServer(engine, cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                request = (5, "intruder", "B.R0C0")
                before = len(engine.alerts.of_kind(AlertKind.DENIED_REQUEST))
                first, first_cached = client.enforce_detail(request)
                second, second_cached = client.enforce_detail(request)
                assert not first.granted and not second.granted
                assert not first_cached and second_cached
                after = len(engine.alerts.of_kind(AlertKind.DENIED_REQUEST))
                assert after == before + 2  # the guards see every attempt

    def test_enforce_matches_the_embedded_pep(self):
        engine = _seeded_engine()
        oracle = _seeded_engine()
        generator = AuthorizationWorkloadGenerator(engine.hierarchy, seed=31)
        pool = generator.requests(generate_subjects(SUBJECT_COUNT), 60)
        with LtamServer(engine) as running:  # uncached: pure PEP routing
            with ServiceClient(*running.address) as client:
                for request in pool:
                    remote = client.enforce(request)
                    local = oracle.pep.enforce(request)
                    assert remote.granted == local.granted
                    assert remote.reason == local.reason
                    assert remote.entries_used == local.entries_used
        assert len(engine.audit.of_kind(AuditEntryKind.DECISION)) == len(pool)

    def test_remote_pep_enforce_facade(self):
        engine = _seeded_engine()
        with LtamServer(engine, cache=DecisionCache()) as running:
            with RemotePep(*running.address) as pep:
                request = _granted_request(engine)
                assert pep.enforce(request).granted
                assert engine.audit.of_kind(AuditEntryKind.DECISION)

    def test_decide_stays_unaudited(self):
        engine = _seeded_engine()
        with LtamServer(engine, cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                request = _granted_request(engine)
                before = len(engine.audit)
                client.decide(request)
                client.decide(request)
                assert len(engine.audit) == before  # decide is the pure op


class TestPickupBeforeWrite:
    def test_behind_writer_folds_foreign_rows_before_writing(self, tmp_path):
        """A replica that both reads and writes must fold foreign committed
        rows before its own insert moves the applied seq past them —
        otherwise they fall outside the pickup window forever."""
        from repro.storage.movement_db import (
            MovementKind,
            MovementRecord,
            SqliteMovementDatabase,
        )

        path = str(tmp_path / "multi.db")
        a = SqliteMovementDatabase(path)
        b = SqliteMovementDatabase(path)
        a.record_entry(1, "alice", "L1")
        # b is behind (applied 0); its write would take seq 2.
        b.record_entry(2, "bob", "L2")
        assert b.current_location("alice") == "L1"
        assert b.applied_position == b.high_water == 2
        # Same through the batch and bulk() paths, in both directions.
        a.record_many([MovementRecord(3, "carol", "L1", MovementKind.ENTER)])
        assert a.current_location("bob") == "L2"
        with b.bulk():
            b.record_entry(4, "dave", "L2")
        assert b.current_location("carol") == "L1"
        assert a.pickup() and a.current_location("dave") == "L2"
        a.close()
        b.close()


class TestSyncOp:
    def test_standalone_sync_reports_positions(self):
        engine = _seeded_engine()
        with LtamServer(engine) as running:
            with ServiceClient(*running.address) as client:
                receipt = client.sync()
                assert receipt["applied"] == 0
                assert receipt["position"] == receipt["high_water"]

    def test_sync_picks_up_foreign_sqlite_writes(self, tmp_path):
        path = str(tmp_path / "shared.db")
        hierarchy = _hierarchy()
        writer = _seeded_engine(hierarchy, path=path)
        reader = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
        with LtamServer(reader) as running:
            with ServiceClient(*running.address) as client:
                # The writer appends outside the server; a plain (bus-less)
                # server still catches up through the sync op.
                subject = "late-arrival"
                writer.movement_db.record_entry(999, subject, "B.R0C0")
                receipt = client.sync()
                assert receipt["applied"] >= 1
                assert reader.movement_db.current_location(subject) == "B.R0C0"


@pytest.fixture
def replica_pair(tmp_path):
    """Two cached server replicas over one SQLite file, bus-coherent."""
    path = str(tmp_path / "shared.db")
    hierarchy = _hierarchy()
    engine_a = _seeded_engine(hierarchy, path=path)
    engine_b = Ltam.builder().hierarchy(hierarchy).backend("sqlite", path).build()
    bus = InvalidationBus()
    server_a = LtamServer(engine_a, cache=DecisionCache(), bus=bus, replica_id="a")
    server_a.start()
    server_b = LtamServer(
        engine_b, cache=DecisionCache(), bus=bus.address, replica_id="b"
    )
    server_b.start()
    try:
        yield server_a, server_b
    finally:
        server_b.stop()
        server_a.stop()


class TestReplicaCoherence:
    def test_observes_on_one_replica_evict_and_update_the_other(self, replica_pair):
        server_a, server_b = replica_pair
        engine_a = server_a.engine
        generator = AuthorizationWorkloadGenerator(engine_a.hierarchy, seed=77)
        subjects = generate_subjects(SUBJECT_COUNT)
        pool = generator.requests(subjects, 120)
        future = generator.movement_events(subjects, 600, start_time=10)
        # Same single-generator seeding discipline as _seeded_engine: the
        # movement trace is drawn from the RNG state the grants left behind.
        oracle = _seeded_engine(engine_a.hierarchy)
        with ServiceClient(*server_a.address) as client_a, ServiceClient(
            *server_b.address
        ) as client_b:
            for round_index in range(3):
                # Warm b's cache, observe through a, barrier, re-decide on b.
                client_b.decide_many(pool)
                chunk = future[round_index * 200 : (round_index + 1) * 200]
                client_a.observe_batch(chunk, mode="record", wait=True)
                oracle.movement_db.record_many(chunk)
                client_b.sync()
                remote = client_b.decide_many(pool)
                local = oracle.decide_many(pool)
                for r, l in zip(remote, local):
                    assert r.granted == l.granted and r.reason == l.reason
            stats = server_b.cache.stats
            assert stats["hits"] > 0, "b never served from its cache"
            assert stats["invalidated"] > 0, "the bus never evicted anything on b"

    def test_admin_mutation_on_one_replica_evicts_the_other(self, replica_pair):
        server_a, server_b = replica_pair
        engine_a = server_a.engine
        request = _granted_request(engine_a)
        with ServiceClient(*server_b.address) as client_b:
            first = client_b.decide(request)
            assert first.granted
            # Revoke through replica a's engine: the publishing cache
            # wrapper fans the eviction out over the bus.
            engine_a.revoke(first.authorization.auth_id)
            assert wait_until(
                lambda: server_b.cache.stats["invalidated"] > 0
                or server_b.cache.stats["size"] == 0
            )
            client_b.sync()
            after = client_b.decide(request)
            local = engine_a.decide(request)
            assert after.granted == local.granted
            assert not after.granted

    def test_replica_restart_recovers_coherence(self, replica_pair, tmp_path):
        server_a, server_b = replica_pair
        engine_a = server_a.engine
        generator = AuthorizationWorkloadGenerator(engine_a.hierarchy, seed=99)
        subjects = generate_subjects(SUBJECT_COUNT)
        pool = generator.requests(subjects, 60)
        with ServiceClient(*server_b.address) as client_b:
            client_b.decide_many(pool)  # warm the soon-to-be-stale cache
        recoveries_before = server_b.coherence.stats["recoveries"]
        server_b.stop()
        # While b is down, a keeps observing — b's cache is now stale and
        # the bus frames announcing it are long gone.
        with ServiceClient(*server_a.address) as client_a:
            client_a.observe_batch(
                generator.movement_events(subjects, 300, start_time=50),
                mode="record",
                wait=True,
            )
        server_b.start()
        assert wait_until(
            lambda: server_b.coherence.stats["recoveries"] > recoveries_before
        )
        with ServiceClient(*server_b.address) as client_b:
            client_b.sync()
            remote = client_b.decide_many(pool)
        local = engine_a.decide_many(pool)
        for r, l in zip(remote, local):
            assert r.granted == l.granted and r.reason == l.reason

    def test_strict_sync_recovers_when_the_bus_is_unreachable(self, replica_pair):
        """A barrier that cannot drain the bus must not pretend: it falls
        back to pickup + cache clear (missed admin evictions are otherwise
        unrecoverable while the link is down)."""
        server_a, server_b = replica_pair
        coherence = server_b.coherence
        with ServiceClient(*server_b.address) as client_b:
            request = _granted_request(server_a.engine)
            client_b.decide(request)  # warm an entry
        assert len(server_b.cache.inner) > 0
        server_a.coherence.bus.stop()  # the hub dies; b's link goes down
        try:
            assert wait_until(lambda: not coherence.stats.get("connected", True))
            recoveries = coherence.stats["recoveries"]
            coherence.sync()  # strict: must recover, not silently succeed
            assert coherence.stats["recoveries"] == recoveries + 1
            assert len(server_b.cache.inner) == 0
        finally:
            server_a.coherence.bus.start()

    def test_failed_server_start_does_not_leak_the_coherence_machinery(self):
        import socket as socket_module

        engine = _seeded_engine()
        blocker = socket_module.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        _, taken_port = blocker.getsockname()
        bus = InvalidationBus()
        server = LtamServer(engine, port=taken_port, bus=bus, replica_id="leaky")
        try:
            with pytest.raises(Exception):
                server.start()  # bind fails: the port is taken
            # The hosted bus and the link/ticker threads were torn down, so
            # a retry on a free port works instead of "already started".
            assert bus.started is False
        finally:
            blocker.close()
            server.stop()

    def test_health_reports_coherence(self, replica_pair):
        _, server_b = replica_pair
        with ServiceClient(*server_b.address) as client_b:
            health = client_b.health()
        coherence = health["coherence"]
        assert coherence["replica"] == "b"
        assert coherence["connected"] is True
        assert "applied_position" in coherence


class TestPoolLivenessProbe:
    def test_alive_detects_a_dead_server(self):
        engine = _seeded_engine()
        server = LtamServer(engine)
        server.start()
        client = ServiceClient(*server.address)
        try:
            assert client.alive()
            server.stop()
            assert wait_until(lambda: not client.alive())
        finally:
            client.close()

    def test_lease_after_server_restart_hands_out_a_live_connection(self):
        """Regression: a pooled connection killed by a server restart used to
        surface as a ServiceConnectionError on the next request, depending on
        pool-miss timing; the checkout probe must absorb the restart."""
        engine = _seeded_engine()
        server = LtamServer(engine)
        server.start()
        host, port = server.address
        pool = ConnectionPool(host, port, size=2)
        try:
            with pool.lease() as client:
                assert client.health()["status"] == "ok"
            server.stop()  # the pooled connection is now a corpse
            restarted = LtamServer(engine, host=host, port=port)
            restarted.start()
            try:
                with pool.lease() as client:  # must not raise
                    assert client.health()["status"] == "ok"
            finally:
                restarted.stop()
        finally:
            pool.close()
            server.stop()
