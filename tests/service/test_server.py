"""Server-vs-embedded parity over the wire, including under cache invalidation.

Every test builds two identically seeded engines — one behind an
:class:`LtamServer`, one embedded as the oracle — and checks that remote
calls produce exactly the decisions/state the embedded engine produces.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.alerts import AlertKind
from repro.errors import IngestError, QuerySyntaxError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.engine.query.evaluator import QueryEngine
from repro.service import (
    DecisionCache,
    LtamServer,
    RemotePdp,
    RemotePep,
    ServiceClient,
    ServiceConnectionError,
)
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
)

SUBJECT_COUNT = 40
HISTORY_EVENTS = 2_000


def _hierarchy() -> LocationHierarchy:
    return LocationHierarchy(grid_building("B", 4, 4))


def _seeded_engine(hierarchy=None) -> Ltam:
    hierarchy = hierarchy if hierarchy is not None else _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=11)
    subjects = generate_subjects(SUBJECT_COUNT)
    engine = Ltam.builder().hierarchy(hierarchy).build()
    engine.grant_all(generator.authorizations(subjects))
    engine.movement_db.record_many(generator.movement_events(subjects, HISTORY_EVENTS))
    return engine


def _request_pool(hierarchy, count=300, seed=23):
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=seed)
    return generator.requests(generate_subjects(SUBJECT_COUNT), count)


def _auth_key(authorization):
    """Semantic identity of an authorization (auto-generated ids differ
    between separately built engines, so they are excluded)."""
    if authorization is None:
        return None
    return (
        authorization.subject,
        authorization.location,
        str(authorization.entry_duration),
        str(authorization.exit_duration),
        authorization.max_entries,
    )


def assert_decisions_match(remote, local):
    assert remote.granted == local.granted
    assert remote.reason == local.reason
    assert remote.entries_used == local.entries_used
    assert _auth_key(remote.authorization) == _auth_key(local.authorization)
    assert remote.deciding_stage == local.deciding_stage
    assert [(r.stage, r.outcome) for r in remote.trace] == [
        (r.stage, r.outcome) for r in local.trace
    ]


@pytest.fixture
def oracle():
    return _seeded_engine()


@pytest.fixture
def server():
    with LtamServer(_seeded_engine()) as running:
        yield running


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connected:
        yield connected


class TestDecisionParity:
    def test_decide_matches_embedded_on_workload_requests(self, client, oracle):
        requests = _request_pool(oracle.hierarchy, count=120)
        for request in requests:
            assert_decisions_match(
                client.decide(request, trace=True), oracle.decide(request)
            )

    def test_decide_many_matches_embedded(self, client, oracle):
        requests = _request_pool(oracle.hierarchy, count=300)
        remote = client.decide_many(requests, trace=True)
        local = oracle.decide_many(requests)
        assert len(remote) == len(local) == len(requests)
        for r, l in zip(remote, local):
            assert_decisions_match(r, l)

    def test_decide_without_trace(self, client, oracle):
        request = _request_pool(oracle.hierarchy, count=1)[0]
        remote = client.decide(request, trace=False)
        local = oracle.decide(request)
        assert remote.trace == ()
        assert remote.granted == local.granted and remote.reason == local.reason


class TestCachedParity:
    def test_cached_server_stays_parity_correct_under_invalidation(self, oracle):
        """Interleave invalidating observes with decides; zero divergence."""
        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=77)
        subjects = generate_subjects(SUBJECT_COUNT)
        future = generator.movement_events(subjects, 900, start_time=10)
        pool = _request_pool(hierarchy, count=150, seed=31)
        with LtamServer(_seeded_engine(), cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                for round_index in range(3):
                    # Decide twice: the second pass is served from the cache.
                    for remote_batch in (
                        client.decide_many(pool, trace=True),
                        client.decide_many(pool, trace=True),
                    ):
                        local = oracle.decide_many(pool)
                        for r, l in zip(remote_batch, local):
                            assert_decisions_match(r, l)
                    chunk = future[round_index * 300 : (round_index + 1) * 300]
                    client.observe_batch(chunk, mode="record", wait=True)
                    oracle.movement_db.record_many(chunk)
                health = client.health()
                assert health["cache"]["hits"] > 0
                assert health["cache"]["invalidated"] > 0

    def test_cache_hit_serves_identical_payload(self, oracle):
        request = _request_pool(oracle.hierarchy, count=1)[0]
        with LtamServer(_seeded_engine(), cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                first = client.decide(request)
                second = client.decide(request)
                assert_decisions_match(second, first)
                assert running.cache.stats["hits"] == 1


class TestObservation:
    def test_observe_returns_the_embedded_alerts(self, client, oracle):
        # An unauthorized subject entering raises the same alert remotely.
        remote_alerts = client.observe_entry(5, "intruder", "B.R0C0")
        local_alerts = oracle.observe_entry(5, "intruder", "B.R0C0")
        assert [a.kind for a in remote_alerts] == [a.kind for a in local_alerts]
        assert remote_alerts[0].kind is AlertKind.UNAUTHORIZED_ENTRY

    def test_observe_batch_monitor_mode_matches_observe_many(self, server, client, oracle):
        trace = AuthorizationWorkloadGenerator(oracle.hierarchy, seed=5).movement_events(
            generate_subjects(10, prefix="guest"), 200
        )
        receipt = client.observe_batch(trace, wait=True)
        assert receipt["written"] == len(trace) and receipt["dropped"] == 0
        oracle.observe_many(trace)
        remote_db = server.engine.movement_db
        assert remote_db.subjects_inside() == oracle.movement_db.subjects_inside()
        assert (
            remote_db.occupancy_service.entry_counts()
            == oracle.movement_db.occupancy_service.entry_counts()
        )

    def test_observe_batch_record_mode_skips_the_monitor(self, server, client):
        before = len(server.engine.alerts.alerts)
        client.observe_batch(
            [MovementRecord(5, "stranger", "B.R0C0", MovementKind.ENTER)],
            mode="record",
            wait=True,
        )
        assert len(server.engine.movement_db.history(subject="stranger")) == 1
        assert len(server.engine.alerts.alerts) == before  # no monitor, no alerts

    def test_rejected_batch_comes_back_with_records_and_can_be_retried(self):
        hierarchy = _hierarchy()
        engine = Ltam(
            hierarchy, movement_db=InMemoryMovementDatabase(hierarchy, strict=True)
        )
        bad = [MovementRecord(5, "ghost", "B.R0C0", MovementKind.EXIT)]
        with LtamServer(engine) as running:
            with ServiceClient(*running.address) as client:
                with pytest.raises(IngestError) as excinfo:
                    client.observe_batch(bad, mode="record", wait=True)
                (failure,) = excinfo.value.failures
                assert list(failure.records) == bad
                # Dead-letter handling: fix the cause, retry the records.
                fixed = [
                    MovementRecord(4, "ghost", "B.R0C0", MovementKind.ENTER)
                ] + list(failure.records)
                receipt = client.observe_batch(fixed, mode="record", wait=True)
                # The raising flush drained the failure; the retry drops nothing.
                assert receipt["dropped"] == 0
        assert len(engine.movement_db.history(subject="ghost")) == 2


class TestQueryCheckpointHealth:
    def test_query_over_the_wire_matches_local(self, server, client):
        local = QueryEngine(server.engine)
        for text in (
            "WHO IS IN B.R0C0",
            "ENTRIES OF user-000 INTO B.R0C0",
            "AUTHORIZATIONS FOR user-001",
            "WHERE IS user-002 AT 100",
            "WHERE IS user-002 AT 100 LIVE",
        ):
            assert client.query(text) == local.evaluate(text)

    def test_query_syntax_error_is_typed_client_side(self, client):
        with pytest.raises(QuerySyntaxError):
            client.query("FROB THE KNOB")

    def test_checkpoint_op_flushes_then_compacts(self, server, client):
        total = len(server.engine.movement_db)
        client.observe_batch(
            [MovementRecord(999, "user-000", "B.R0C0", MovementKind.ENTER)],
            mode="record",
        )  # not waited: the checkpoint op must flush it first
        receipt = client.checkpoint()
        assert receipt.archived == total + 1
        assert server.engine.movement_db.archived_count == total + 1

    def test_checkpoint_op_retention(self, server, client):
        client.checkpoint(retain=10)
        assert server.engine.movement_db.archived_count == 10

    def test_health_document(self, client):
        client.decide((5, "user-000", "B.R0C0"))
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime"] >= 0
        assert health["backend"] == "InMemoryMovementDatabase"
        assert health["stats"]["decisions"] == 1
        assert health["cache"] is None  # this server runs uncached

    def test_unknown_op_is_a_protocol_error(self, client):
        from repro.service.errors import ProtocolError

        with pytest.raises(ProtocolError):
            client.call("frobnicate")


class TestRemoteFacades:
    def test_remote_pdp_mirrors_embedded(self, server, oracle):
        host, port = server.address
        with RemotePdp(host, port) as pdp:
            requests = _request_pool(oracle.hierarchy, count=60)
            for r, l in zip(
                pdp.decide_many(requests, trace=True), oracle.decide_many(requests)
            ):
                assert_decisions_match(r, l)
            assert pdp.health()["status"] == "ok"

    def test_remote_pep_streaming_ingest_from_two_threads(self, server, oracle):
        host, port = server.address
        generator = AuthorizationWorkloadGenerator(oracle.hierarchy, seed=9)
        streams = generator.movement_streams(
            generate_subjects(20, prefix="t"), 1_000, trackers=2
        )
        with RemotePep(host, port) as pep:
            def pump(stream):
                with pep.ingestor(mode="record", batch_size=128) as ingestor:
                    for record in stream:
                        ingestor.submit(record)

            threads = [threading.Thread(target=pump, args=(s,)) for s in streams]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        oracle_db = InMemoryMovementDatabase(oracle.hierarchy)
        for stream in streams:
            oracle_db.record_many(stream)
        server_db = server.engine.movement_db
        assert (
            sum(len(s) for s in streams)
            == len(server_db.history(subject=None)) - HISTORY_EVENTS
        )
        for subject, location in oracle_db.subjects_inside().items():
            assert server_db.current_location(subject) == location

    def test_remote_pep_observe_entry_exit(self, server, oracle):
        host, port = server.address
        with RemotePep(host, port) as pep:
            alerts = pep.observe_entry(5, "user-000", "B.R0C0")
            local = oracle.observe_entry(5, "user-000", "B.R0C0")
            assert [a.kind for a in alerts] == [a.kind for a in local]
            pep.observe_exit(6, "user-000", "B.R0C0")
        assert server.engine.movement_db.current_location("user-000") is None


class TestTransport:
    def test_connect_refused_is_a_connection_error(self):
        with pytest.raises(ServiceConnectionError):
            ServiceClient("127.0.0.1", 1, timeout=0.5)

    def test_closed_client_raises(self, client):
        client.close()
        with pytest.raises(ServiceConnectionError):
            client.health()

    def test_large_decide_many_frame(self, client, oracle):
        requests = _request_pool(oracle.hierarchy, count=3_000)
        remote = client.decide_many(requests, trace=False)
        local = oracle.decide_many(requests)
        assert [d.granted for d in remote] == [d.granted for d in local]


class TestPerConnectionIngest:
    def test_failures_are_attributed_to_the_submitting_client(self):
        """Client B's flush must never surface (or retry) client A's records."""
        hierarchy = _hierarchy()
        engine = Ltam(hierarchy, movement_db=InMemoryMovementDatabase(hierarchy, strict=True))
        poison = [MovementRecord(5, "ghost", "B.R0C0", MovementKind.EXIT)]
        good = [MovementRecord(5, "real", "B.R0C0", MovementKind.ENTER)]
        with LtamServer(engine) as running:
            with ServiceClient(*running.address) as client_a, ServiceClient(
                *running.address
            ) as client_b:
                client_a.observe_batch(poison, mode="record")  # not waited
                receipt = client_b.observe_batch(good, mode="record", wait=True)
                assert receipt["dropped"] == 0  # B never sees A's failure
                with pytest.raises(IngestError) as excinfo:
                    client_a.flush(mode="record")  # A's own barrier reports it
                (failure,) = excinfo.value.failures
                assert list(failure.records) == poison
        assert engine.movement_db.current_location("real") == "B.R0C0"

    def test_disconnect_flushes_the_connection_ingestor(self, server):
        record = MovementRecord(7, "drifter", "B.R0C0", MovementKind.ENTER)
        with ServiceClient(*server.address) as client:
            client.observe_batch([record], mode="record")  # never waited
        # Closing the connection closes (and flushes) its ingestor.
        deadline = __import__("time").monotonic() + 5
        while __import__("time").monotonic() < deadline:
            if server.engine.movement_db.current_location("drifter") == "B.R0C0":
                break
            __import__("time").sleep(0.02)
        assert server.engine.movement_db.current_location("drifter") == "B.R0C0"


class TestRestart:
    def test_stopped_server_restarts_on_a_fresh_port(self):
        engine = _seeded_engine()
        server = LtamServer(engine)
        server.start()
        first = server.address
        server.stop()
        server.start()
        second = server.address
        try:
            assert second != first or second[1] != 0
            with ServiceClient(*second) as client:
                assert client.health()["status"] == "ok"
        finally:
            server.stop()


class TestAdminInvalidation:
    def test_revoke_on_a_served_engine_evicts_the_server_cache(self):
        """In-process administration must invalidate the server's cache."""
        engine = _seeded_engine()
        with LtamServer(engine, cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                request = None
                for candidate in _request_pool(engine.hierarchy, count=50):
                    if engine.decide(candidate).granted:
                        request = candidate
                        break
                assert request is not None
                first = client.decide(request)
                assert first.granted
                engine.revoke(first.authorization.auth_id)
                after = client.decide(request)
                assert not after.granted  # not served from a stale cache entry
                local = engine.decide(request)
                assert after.granted == local.granted and after.reason == local.reason
        # Stopping the server detaches the cache from the engine again.
        assert engine.pdp.cache is None

    def test_set_capacity_on_a_served_engine_evicts_the_location(self):
        from repro.api.stages import CapacityStage, default_pipeline

        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=11)
        subjects = generate_subjects(SUBJECT_COUNT)
        stages = list(default_pipeline())
        stages.insert(3, CapacityStage())
        engine = Ltam.builder().hierarchy(hierarchy).pipeline(*stages).build()
        engine.grant_all(generator.authorizations(subjects))
        with LtamServer(engine, cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                request = None
                for candidate in _request_pool(hierarchy, count=80):
                    if engine.decide(candidate).granted:
                        request = candidate
                        break
                assert client.decide(request).granted
                engine.observe_entry(request.time, "squatter", request.location)
                engine.set_capacity(request.location, 1)  # now full
                decision = client.decide(request)
                assert not decision.granted
                assert str(decision.reason) == "over_capacity"


class TestPoolRetention:
    def test_typed_errors_do_not_discard_the_connection(self, server):
        from repro.service import ConnectionPool

        with ConnectionPool(*server.address, size=2) as pool:
            with pool.lease() as client:
                client.health()
            first_socket = client
            for _ in range(3):
                with pytest.raises(QuerySyntaxError):
                    with pool.lease() as client:
                        assert client is first_socket  # same pooled connection
                        client.query("FROB THE KNOB")
            with pool.lease() as client:
                assert client is first_socket
                assert client.health()["status"] == "ok"


class TestServerCheckpointPolicy:
    def test_scheduled_checkpoints_fire_through_the_server(self, tmp_path):
        import time as _time

        from repro.storage.ingest import CheckpointPolicy

        hierarchy = _hierarchy()
        engine = (
            Ltam.builder()
            .hierarchy(hierarchy)
            .backend("sqlite", str(tmp_path / "served.db"))
            .build()
        )
        trace = AuthorizationWorkloadGenerator(hierarchy, seed=13).movement_events(
            generate_subjects(10, prefix="cp"), 300
        )
        policy = CheckpointPolicy(every_events=100, retain_archived=150)
        with LtamServer(engine, checkpoint_policy=policy) as running:
            with ServiceClient(*running.address) as client:
                client.observe_batch(trace, mode="record", wait=True)
                # The checkpoint runs on the writer thread right after the
                # flushed write; give it a moment, then read health.
                deadline = _time.monotonic() + 5
                while _time.monotonic() < deadline:
                    ingest = client.health()["ingest"]["record"]
                    if ingest["checkpoints"] >= 1:
                        break
                    _time.sleep(0.05)
                assert ingest["checkpoints"] >= 1, ingest
                assert ingest["checkpoint_errors"] == 0, ingest
        assert engine.movement_db.archived_count <= 150
        assert engine.movement_db.events_since_checkpoint <= 300 - 100


class TestWireValidationEdges:
    def test_float_time_rejected_even_on_a_warm_cache(self, oracle):
        """A wrong-typed time must not be served by hash-equal cache keys."""
        from repro.errors import EnforcementError

        request = None
        for candidate in _request_pool(oracle.hierarchy, count=20):
            request = candidate
            break
        with LtamServer(_seeded_engine(), cache=DecisionCache()) as running:
            with ServiceClient(*running.address) as client:
                client.decide(request)  # warm the exact int-time key
                bad = {
                    "time": float(request.time),
                    "subject": request.subject,
                    "location": request.location,
                }
                with pytest.raises(EnforcementError):
                    client.call("decide", request=bad)
                with pytest.raises(EnforcementError):
                    client.call("decide", request={**bad, "time": True})

    def test_empty_flush_does_not_spawn_an_ingestor(self, server, client):
        receipt = client.flush(mode="record")
        assert receipt == {
            "accepted": 0,
            "submitted": 0,
            "written": 0,
            "dropped": 0,
            "checkpoints": 0,
        }
        assert client.health()["ingest"] == {}  # no writer thread was created
