"""Invalidation-bus unit behavior: seq fencing, replay, resync, reconnect."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.bus import BusLink, InvalidationBus, resolve_bus_address
from repro.service.errors import ProtocolError


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class Recorder:
    """Collects the frames a link applies, plus resync invocations."""

    def __init__(self) -> None:
        self.events = []
        self.resyncs = 0
        self.lock = threading.Lock()

    def on_events(self, origin, events):
        with self.lock:
            self.events.append((origin, events))

    def on_resync(self):
        with self.lock:
            self.resyncs += 1

    @property
    def payloads(self):
        with self.lock:
            return [event for _, batch in self.events for event in batch]


def make_link(bus, replica_id, recorder):
    return BusLink(
        bus.address,
        replica_id=replica_id,
        on_events=recorder.on_events,
        on_resync=recorder.on_resync,
        reconnect_delay=0.05,
    )


class TestAddressParsing:
    def test_accepts_tuple_string_and_bare_port(self):
        assert resolve_bus_address(("h", 9)) == ("h", 9)
        assert resolve_bus_address("example:7472") == ("example", 7472)
        assert resolve_bus_address("7472") == ("127.0.0.1", 7472)

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            resolve_bus_address("no-port-here")
        with pytest.raises(ProtocolError):
            resolve_bus_address(1234)  # type: ignore[arg-type]


class TestFanOut:
    def test_seq_stamped_fan_out_reaches_every_replica(self):
        with InvalidationBus() as bus:
            a_rec, b_rec = Recorder(), Recorder()
            link_a = make_link(bus, "a", a_rec)
            link_b = make_link(bus, "b", b_rec)
            try:
                assert wait_until(lambda: link_a.connected and link_b.connected)
                link_a.publish([{"kind": "admin", "location": "L1", "subject": None}])
                link_a.publish([{"kind": "clear"}])
                assert wait_until(lambda: len(b_rec.payloads) == 2)
                # The origin receives its own frames too (for seq tracking);
                # the coherence layer filters them by origin.
                assert wait_until(lambda: len(a_rec.payloads) == 2)
                assert b_rec.events[0][0] == "a"
                assert link_a.last_seen == link_b.last_seen == bus.seq == 2
            finally:
                link_a.close()
                link_b.close()

    def test_empty_publish_is_a_noop(self):
        with InvalidationBus() as bus:
            rec = Recorder()
            link = make_link(bus, "a", rec)
            try:
                assert wait_until(lambda: link.connected)
                assert link.publish([])
                assert bus.seq == 0
            finally:
                link.close()


class TestGapRecovery:
    def test_dropped_frame_is_replayed_from_the_hub_buffer(self):
        dropped = {("b", 2)}
        bus = InvalidationBus(drop=lambda replica, seq: (replica, seq) in dropped)
        with bus:
            a_rec, b_rec = Recorder(), Recorder()
            link_a = make_link(bus, "a", a_rec)
            link_b = make_link(bus, "b", b_rec)
            try:
                assert wait_until(lambda: link_a.connected and link_b.connected)
                for index in range(3):
                    link_a.publish([{"kind": "admin", "location": f"L{index}", "subject": None}])
                # b missed seq 2; seq 3's arrival exposes the gap and the
                # hub's buffer replays the missed range (the gap frame is
                # applied twice — eviction is idempotent).
                assert wait_until(lambda: link_b.last_seen == 3)
                assert {event["location"] for event in b_rec.payloads} == {"L0", "L1", "L2"}
                assert link_b.stats["gaps"] == 1
                assert bus.stats["replayed"] >= 1
            finally:
                link_a.close()
                link_b.close()

    def test_uncoverable_gap_forces_a_full_resync(self):
        # Buffer of 1: by the time the gap is noticed the missed frames are
        # gone, so the hub orders a full resync instead of a replay.
        drop_for_b = lambda replica, seq: replica == "b" and seq in (2, 3, 4)  # noqa: E731
        bus = InvalidationBus(replay_buffer=1, drop=drop_for_b)
        with bus:
            a_rec, b_rec = Recorder(), Recorder()
            link_a = make_link(bus, "a", a_rec)
            link_b = make_link(bus, "b", b_rec)
            try:
                assert wait_until(lambda: link_a.connected and link_b.connected)
                resyncs_before = b_rec.resyncs
                for index in range(5):
                    link_a.publish([{"kind": "admin", "location": f"L{index}", "subject": None}])
                assert wait_until(lambda: b_rec.resyncs > resyncs_before)
                assert wait_until(lambda: link_b.last_seen == 5)
                assert bus.stats["resyncs"] >= 1
            finally:
                link_a.close()
                link_b.close()


class TestReconnect:
    def test_hub_restart_triggers_reconnect_and_resync(self):
        first = InvalidationBus()
        first.start()
        host, port = first.address
        rec = Recorder()
        link = make_link(first, "a", rec)
        try:
            assert wait_until(lambda: link.connected)
            resyncs_after_connect = rec.resyncs
            assert resyncs_after_connect >= 1  # every connect recovers fully
            first.stop()
            assert wait_until(lambda: not link.connected)
            second = InvalidationBus(host=host, port=port)
            second.start()
            try:
                assert wait_until(lambda: link.connected, timeout=10)
                assert rec.resyncs > resyncs_after_connect
                assert link.stats["reconnects"] >= 1
            finally:
                second.stop()
        finally:
            link.close()

    def test_publishes_that_raced_the_outage_flow_after_reconnect(self):
        first = InvalidationBus()
        first.start()
        host, port = first.address
        a_rec, b_rec = Recorder(), Recorder()
        link_a = make_link(first, "a", a_rec)
        link_b = make_link(first, "b", b_rec)
        try:
            assert wait_until(lambda: link_a.connected and link_b.connected)
            first.stop()
            assert wait_until(lambda: not link_a.connected)
            # Published into the void: buffered client-side as unsent.
            link_a.publish([{"kind": "admin", "location": "LOST", "subject": None}])
            second = InvalidationBus(host=host, port=port)
            second.start()
            try:
                assert wait_until(
                    lambda: any(e.get("location") == "LOST" for e in b_rec.payloads),
                    timeout=10,
                )
            finally:
                second.stop()
        finally:
            link_a.close()
            link_b.close()


class TestRequestSync:
    def test_request_sync_drains_missed_frames_before_returning(self):
        dropped = {("b", 1)}
        bus = InvalidationBus(drop=lambda replica, seq: (replica, seq) in dropped)
        with bus:
            a_rec, b_rec = Recorder(), Recorder()
            link_a = make_link(bus, "a", a_rec)
            link_b = make_link(bus, "b", b_rec)
            try:
                assert wait_until(lambda: link_a.connected and link_b.connected)
                link_a.publish([{"kind": "admin", "location": "L-only", "subject": None}])
                assert wait_until(lambda: link_a.last_seen == 1)
                # b never saw the frame and has no follow-up to expose the
                # gap; the barrier must pull it out of the hub's buffer.
                assert link_b.last_seen == 0
                assert link_b.request_sync()
                assert link_b.last_seen == 1
                assert any(e.get("location") == "L-only" for e in b_rec.payloads)
            finally:
                link_a.close()
                link_b.close()

    def test_request_sync_reports_failure_when_down(self):
        bus = InvalidationBus()
        bus.start()
        rec = Recorder()
        link = make_link(bus, "a", rec)
        try:
            assert wait_until(lambda: link.connected)
            bus.stop()
            assert wait_until(lambda: not link.connected)
            assert link.request_sync(timeout=0.2) is False
        finally:
            link.close()


class TestBoundedBuffers:
    def test_nondurable_publishes_are_dropped_during_an_outage(self):
        bus = InvalidationBus()
        bus.start()
        rec = Recorder()
        link = make_link(bus, "a", rec)
        try:
            assert wait_until(lambda: link.connected)
            bus.stop()
            assert wait_until(lambda: not link.connected)
            assert link.publish([{"kind": "movement", "notices": []}], durable=False) is False
            assert link._unsent == []  # pickup re-derives these; never buffered
        finally:
            link.close()

    def test_unsent_buffer_collapses_to_clear_at_the_cap(self):
        bus = InvalidationBus()
        bus.start()
        rec = Recorder()
        link = make_link(bus, "a", rec)
        try:
            assert wait_until(lambda: link.connected)
            bus.stop()
            assert wait_until(lambda: not link.connected)
            for index in range(link.UNSENT_CAP + 10):
                link.publish([{"kind": "admin", "location": f"L{index}", "subject": None}])
            # Bounded memory: crossing the cap collapses the backlog into a
            # clear event (over-eviction on reconnect), with only the
            # post-collapse events queued behind it.
            assert len(link._unsent) <= link.UNSENT_CAP
            assert link._unsent[0] == [{"kind": "clear"}]
        finally:
            link.close()

    def test_sync_interval_must_be_positive_or_none(self):
        from repro.api import Ltam
        from repro.locations.multilevel import LocationHierarchy
        from repro.simulation.buildings import grid_building
        from repro.service.bus import ReplicaCoherence
        from repro.service.errors import ServiceError

        engine = Ltam(LocationHierarchy(grid_building("B", 2, 2)))
        with pytest.raises(ServiceError):
            ReplicaCoherence(engine, bus="127.0.0.1:1", sync_interval=0)
        with pytest.raises(ServiceError):
            ReplicaCoherence(engine, bus="127.0.0.1:1", sync_interval=-1.0)
