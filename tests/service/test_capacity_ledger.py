"""The global capacity ledger: fold semantics + the fabric-wide eviction path.

The unit half pins :class:`CapacityLedger`'s contract (absolute counts,
idempotent last-write-wins folds, zero pruning, full-vector reconciliation).
The integration half is the PR's acceptance criterion end to end: a capacity
decision cached on partition A must be evicted — and flip to an
``over_capacity`` denial — when the occupancy that invalidates it was
ingested on partition B, with the router's two-phase ``sync`` as the only
barrier in between.
"""

from __future__ import annotations

from repro.api import Ltam, grant
from repro.api.stages import CapacityStage
from repro.locations.multilevel import LocationHierarchy
from repro.service import (
    CapacityLedger,
    DecisionCache,
    FabricRouter,
    InvalidationBus,
    LtamServer,
    PartitionMap,
)
from repro.simulation.buildings import grid_building
from repro.storage.movement_db import MovementKind, MovementRecord

HORIZON = 10_000


# --------------------------------------------------------------------- #
# CapacityLedger unit behavior
# --------------------------------------------------------------------- #
class TestCapacityLedger:
    def test_partial_apply_merges_and_reports_changes(self):
        ledger = CapacityLedger()
        assert ledger.apply("west", {"B.R0C0": 2, "B.R0C1": 1}) == ["B.R0C0", "B.R0C1"]
        assert ledger.remote_occupancy("B.R0C0") == 2
        # an untouched location survives a later partial naming only others
        assert ledger.apply("west", {"B.R0C0": 3}) == ["B.R0C0"]
        assert ledger.remote_occupancy("B.R0C1") == 1
        assert ledger.totals() == {"B.R0C0": 3, "B.R0C1": 1}

    def test_reapplying_the_same_vector_is_idempotent(self):
        ledger = CapacityLedger()
        ledger.apply("west", {"B.R0C0": 2})
        assert ledger.apply("west", {"B.R0C0": 2}) == []
        assert ledger.remote_occupancy("B.R0C0") == 2

    def test_zero_counts_are_pruned(self):
        ledger = CapacityLedger()
        ledger.apply("west", {"B.R0C0": 2})
        assert ledger.apply("west", {"B.R0C0": 0}) == ["B.R0C0"]
        assert ledger.remote_occupancy("B.R0C0") == 0
        assert ledger.remote_vectors() == {}
        assert ledger.totals() == {}

    def test_full_vector_replaces_the_origin_wholesale(self):
        ledger = CapacityLedger()
        ledger.apply("west", {"B.R0C0": 2, "B.R0C1": 1})
        changed = ledger.apply("west", {"B.R1C0": 4}, full=True)
        assert changed == ["B.R0C0", "B.R0C1", "B.R1C0"]
        assert ledger.remote_vectors() == {"west": {"B.R1C0": 4}}
        assert ledger.totals() == {"B.R1C0": 4}

    def test_totals_sum_across_origins(self):
        ledger = CapacityLedger()
        ledger.apply("west", {"B.R0C0": 2})
        ledger.apply("north", {"B.R0C0": 1, "B.R0C1": 5})
        assert ledger.remote_occupancy("B.R0C0") == 3
        assert ledger.origins == ["north", "west"]
        assert ledger.totals() == {"B.R0C0": 3, "B.R0C1": 5}

    def test_drop_origin_subtracts_exactly_that_peer(self):
        ledger = CapacityLedger()
        ledger.apply("west", {"B.R0C0": 2})
        ledger.apply("north", {"B.R0C0": 1})
        assert ledger.drop_origin("west") == ["B.R0C0"]
        assert ledger.remote_occupancy("B.R0C0") == 1
        assert ledger.origins == ["north"]

    def test_lag_and_stats(self):
        ledger = CapacityLedger()
        assert ledger.lag_seconds == 0.0
        ledger.apply("west", {"B.R0C0": 2})
        assert ledger.lag_seconds >= 0.0
        stats = ledger.stats
        assert stats["origins"] == ["west"]
        assert stats["locations"] == 1
        assert stats["remote_occupants"] == 2
        assert stats["applied"] == 1


# --------------------------------------------------------------------- #
# The fabric-wide eviction path (the acceptance criterion)
# --------------------------------------------------------------------- #
def _capacity_engine(hierarchy, subjects, hot, limit):
    engine = (
        Ltam.builder()
        .hierarchy(hierarchy)
        .stage(CapacityStage())
        .capacity(hot, limit)
        .build()
    )
    for subject in subjects:
        engine.grant(grant(subject).at(hot).during(0, HORIZON).entries(500))
    return engine


class TestGlobalCapacityAcrossPartitions:
    def _build(self, limit=2):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        hot = sorted(hierarchy.primitive_names)[0]
        subjects = [f"user-{index:02d}" for index in range(24)]
        bus = InvalidationBus()
        servers, caches, addresses = {}, {}, {}
        for name in ("east", "west"):
            cache = DecisionCache()
            server = LtamServer(
                _capacity_engine(hierarchy, subjects, hot, limit),
                cache=cache,
                partition=name,
                replica_id=name,
                bus=bus if not servers else bus.address,
            )
            server.start()
            servers[name], caches[name] = server, cache
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        return hot, subjects, servers, caches, router

    def test_remote_occupancy_evicts_a_cached_capacity_grant(self):
        """Partition A's cached grant dies when partition B fills the room."""
        hot, subjects, servers, caches, router = self._build(limit=2)
        try:
            pmap = router.partition_map
            probe = next(s for s in subjects if pmap.owner(s) == "east")
            walkers = [s for s in subjects if pmap.owner(s) == "west"][:2]
            assert len(walkers) == 2, "need two west-owned subjects"

            first = router.decide((100, probe, hot))
            assert first.granted, "the room is empty; the probe must pass"
            # the grant is now cached on east under (probe, hot, 100)

            # B's side of the story: two west-owned subjects walk in.  Their
            # ENTER events route to west; east's local projection never
            # learns about them — only the ledger can.
            router.observe_batch(
                [MovementRecord(50, walker, hot, MovementKind.ENTER) for walker in walkers],
                mode="monitor",
                wait=True,
            )
            router.sync_raw()  # the two-phase convergence barrier

            second = router.decide((100, probe, hot))
            assert not second.granted, (
                "east still granted after west filled the room: the cached "
                "decision survived the remote occupancy change"
            )
            assert str(second.reason) == "over_capacity"

            # the ledger agrees on both sides of the fabric
            assert servers["east"]._ledger.remote_occupancy(hot) == 2
            assert servers["west"]._ledger.remote_occupancy(hot) == 0  # west holds them locally
            health = router.health()
            assert health["ledger"]["enabled"] is True
            assert health["ledger"]["converged"] is True
        finally:
            router.close()
            for server in servers.values():
                server.stop()

    def test_exit_frees_the_global_slot(self):
        """An EXIT on the remote partition reopens capacity everywhere."""
        hot, subjects, servers, caches, router = self._build(limit=1)
        try:
            pmap = router.partition_map
            probe = next(s for s in subjects if pmap.owner(s) == "east")
            walker = next(s for s in subjects if pmap.owner(s) == "west")

            router.observe_batch(
                [MovementRecord(50, walker, hot, MovementKind.ENTER)],
                mode="monitor",
                wait=True,
            )
            router.sync_raw()
            denied = router.decide((100, probe, hot))
            assert not denied.granted and str(denied.reason) == "over_capacity"

            router.observe_batch(
                [MovementRecord(150, walker, hot, MovementKind.EXIT)],
                mode="monitor",
                wait=True,
            )
            router.sync_raw()
            allowed = router.decide((200, probe, hot))
            assert allowed.granted, "the slot never reopened after the remote EXIT"
        finally:
            router.close()
            for server in servers.values():
                server.stop()

    def test_reshard_keeps_the_ledger_consistent(self):
        """Moving a mid-stay subject must not double-count (or lose) it."""
        hot, subjects, servers, caches, router = self._build(limit=2)
        try:
            pmap = router.partition_map
            walker = next(s for s in subjects if pmap.owner(s) == "west")
            probe = next(s for s in subjects if pmap.owner(s) == "east")
            router.observe_batch(
                [MovementRecord(50, walker, hot, MovementKind.ENTER)],
                mode="monitor",
                wait=True,
            )
            router.sync_raw()
            assert servers["east"]._ledger.remote_occupancy(hot) == 1

            # migrate the mid-stay walker east; reshard() runs its own barrier
            router.reshard(pmap.with_assignment(walker, "east"))
            # east now holds the stay locally; its remote view of west is empty
            assert servers["east"]._ledger.remote_occupancy(hot) == 0
            assert servers["east"].engine.movement_db.occupancy(hot) == 1
            # west sees the stay as remote — exactly once, never twice
            assert servers["west"]._ledger.remote_occupancy(hot) == 1
            assert servers["west"].engine.movement_db.occupancy(hot) == 0

            # global count is still 1 from either side: a limit-2 room takes
            # exactly one more occupant
            more = router.decide((100, probe, hot))
            assert more.granted
            health = router.health()
            assert health["ledger"]["converged"] is True
        finally:
            router.close()
            for server in servers.values():
                server.stop()

    def test_standalone_server_has_no_ledger(self):
        """No partition, no bus — occupancy_of stays purely local."""
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        hot = sorted(hierarchy.primitive_names)[0]
        engine = _capacity_engine(hierarchy, ["alice", "bob"], hot, 1)
        with LtamServer(engine) as server:
            assert server._ledger is None
        # the embedded engine still enforces the local limit on its own
        engine.observe_entry(10, "alice", hot)
        denied = engine.decide((20, "bob", hot))
        assert not denied.granted and str(denied.reason) == "over_capacity"
