"""Wire-codec round trips: every payload the protocol carries survives it."""

from __future__ import annotations

import pytest

import repro.errors as errors_module
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.requests import AccessRequest, DenialReason
from repro.engine.alerts import Alert, AlertKind
from repro.engine.query.ast import QueryResult
from repro.errors import IngestError, LTAMError, QuerySyntaxError, StorageError
from repro.temporal.chronon import FOREVER
from repro.api.decision import Decision, StageOutcome, StageResult
from repro.service import protocol
from repro.service.errors import ProtocolError, RemoteServiceError
from repro.storage.ingest import BatchFailure
from repro.storage.movement_db import Checkpoint, MovementKind, MovementRecord


@pytest.fixture
def authorization():
    return LocationTemporalAuthorization(
        ("Alice", "CAIS"), (10, 20), (10, 50), 2, created_at=5, auth_id="A1"
    )


@pytest.fixture
def unbounded_authorization():
    return LocationTemporalAuthorization(
        ("Bob", "Lab"), (0, FOREVER), None, UNLIMITED_ENTRIES, auth_id="A2", derived_from="A1"
    )


# --------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------- #
def test_frame_round_trip():
    message = {"op": "decide", "id": 7, "request": {"time": 1}}
    assert protocol.decode_frame(protocol.encode_frame(message)) == message


def test_frame_is_one_line():
    line = protocol.encode_frame({"op": "health", "id": 1, "note": "a\nb"})
    assert line.endswith(b"\n") and line.count(b"\n") == 1


def test_malformed_frame_raises_protocol_error():
    with pytest.raises(ProtocolError):
        protocol.decode_frame(b"{not json\n")
    with pytest.raises(ProtocolError):
        protocol.decode_frame(b"[1, 2, 3]\n")  # not an object


# --------------------------------------------------------------------- #
# Requests and movement records
# --------------------------------------------------------------------- #
def test_request_round_trip_preserves_identity():
    request = AccessRequest(15, "Alice", "CAIS")
    back = protocol.request_from_dict(protocol.request_to_dict(request))
    assert back == request
    assert back.request_id == request.request_id


def test_request_missing_field_raises():
    with pytest.raises(ProtocolError):
        protocol.request_from_dict({"time": 1, "subject": "Alice"})


@pytest.mark.parametrize("kind", list(MovementKind))
def test_record_round_trip(kind):
    record = MovementRecord(9, "Alice", "CAIS", kind)
    assert protocol.record_from_wire(protocol.record_to_wire(record)) == record


def test_record_batch_round_trip():
    records = [
        MovementRecord(1, "Alice", "CAIS", MovementKind.ENTER),
        MovementRecord(2, "Bob", "Lab", MovementKind.ENTER),
        MovementRecord(3, "Alice", "CAIS", MovementKind.EXIT),
    ]
    assert protocol.records_from_wire(protocol.records_to_wire(records)) == records


def test_invalid_record_wire_raises():
    with pytest.raises(ProtocolError):
        protocol.record_from_wire([1, "Alice", "CAIS"])  # not 4 fields
    with pytest.raises(ProtocolError):
        protocol.record_from_wire([-1, "Alice", "CAIS", "enter"])  # invalid time
    with pytest.raises(ProtocolError):
        protocol.record_from_wire([1, "Alice", "CAIS", "teleport"])  # invalid kind


# --------------------------------------------------------------------- #
# Decisions and traces
# --------------------------------------------------------------------- #
def _full_trace(authorization):
    return (
        StageResult("known-location", StageOutcome.CONTINUE, detail="known"),
        StageResult("candidate-lookup", StageOutcome.CONTINUE, detail="2 candidate(s)"),
        StageResult("capacity", StageOutcome.SKIP, detail="no limit"),
        StageResult(
            "entry-budget",
            StageOutcome.GRANT,
            detail="granted",
            authorization=authorization,
            entries_used=1,
        ),
    )


def test_granted_decision_round_trip(authorization):
    request = AccessRequest(15, "Alice", "CAIS")
    decision = Decision.granted_by(
        request, authorization, entries_used=1, trace=_full_trace(authorization)
    )
    back = protocol.decision_from_dict(protocol.decision_to_dict(decision))
    assert back.granted and back.authorization == authorization
    assert back.request == request
    assert back.entries_used == 1
    assert back.trace == decision.trace
    assert back.deciding_stage == "entry-budget"
    assert back.explain() == decision.explain()


@pytest.mark.parametrize("reason", list(DenialReason))
def test_denied_decision_round_trip_every_reason(reason):
    request = AccessRequest(15, "Alice", "CAIS")
    trace = (
        StageResult("entry-window", StageOutcome.DENY, detail="nope", reason=reason, entries_used=3),
    )
    decision = Decision.denied_by(request, reason, entries_used=3, trace=trace)
    back = protocol.decision_from_dict(protocol.decision_to_dict(decision))
    assert not back.granted and back.reason is reason
    assert back.entries_used == 3
    assert back.trace == trace


def test_decision_with_unbounded_authorization(unbounded_authorization):
    request = AccessRequest(0, "Bob", "Lab")
    decision = Decision.granted_by(request, unbounded_authorization)
    back = protocol.decision_from_dict(protocol.decision_to_dict(decision))
    assert back.authorization == unbounded_authorization
    assert back.authorization.max_entries is UNLIMITED_ENTRIES


def test_decision_without_trace():
    request = AccessRequest(15, "Alice", "CAIS")
    decision = Decision.denied_by(request, DenialReason.NO_AUTHORIZATION)
    encoded = protocol.decision_to_dict(decision, include_trace=False)
    assert "trace" not in encoded
    back = protocol.decision_from_dict(encoded)
    assert back.trace == () and back.reason is DenialReason.NO_AUTHORIZATION


def test_strip_trace_copies():
    request = AccessRequest(15, "Alice", "CAIS")
    decision = Decision.denied_by(
        request,
        DenialReason.NO_AUTHORIZATION,
        trace=(StageResult("s", StageOutcome.DENY, reason=DenialReason.NO_AUTHORIZATION),),
    )
    encoded = protocol.decision_to_dict(decision)
    stripped = protocol.strip_trace(encoded)
    assert "trace" in encoded and "trace" not in stripped
    assert stripped["granted"] == encoded["granted"]


# --------------------------------------------------------------------- #
# Alerts, checkpoints, query results
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", list(AlertKind))
def test_alert_round_trip_every_kind(kind):
    alert = Alert(4, kind, "Alice", "CAIS", "something happened", authorization_id="A1")
    assert protocol.alert_from_dict(protocol.alert_to_dict(alert)) == alert


def test_checkpoint_round_trip():
    receipt = Checkpoint(120, 100, 7, 42)
    assert protocol.checkpoint_from_dict(protocol.checkpoint_to_dict(receipt)) == receipt


def test_query_result_round_trip():
    result = QueryResult(
        "can_enter",
        ("subject", "location", "time", "granted", "reason"),
        (("Alice", "CAIS", 15, True, ""),),
        scalar=True,
    )
    back = protocol.query_result_from_dict(protocol.query_result_to_dict(result))
    assert back == result


def test_query_result_round_trip_empty_and_scalarless():
    result = QueryResult("who_is_in", ("subject",), ())
    back = protocol.query_result_from_dict(protocol.query_result_to_dict(result))
    assert back == result and back.scalar is None


# --------------------------------------------------------------------- #
# Typed errors
# --------------------------------------------------------------------- #
def _library_error_classes():
    return sorted(
        (
            value
            for value in vars(errors_module).values()
            if isinstance(value, type) and issubclass(value, LTAMError)
        ),
        key=lambda cls: cls.__name__,
    )


@pytest.mark.parametrize("cls", _library_error_classes(), ids=lambda cls: cls.__name__)
def test_every_typed_error_round_trips(cls):
    error = cls("it broke")
    back = protocol.error_from_dict(protocol.error_to_dict(error))
    assert type(back) is cls
    assert str(back) == "it broke"


def test_unknown_error_type_becomes_remote_service_error():
    back = protocol.error_from_dict({"type": "ZeroDivisionError", "message": "boom"})
    assert isinstance(back, RemoteServiceError)
    assert "ZeroDivisionError" in str(back) and "boom" in str(back)


def test_ingest_error_round_trips_failed_records():
    records = (
        MovementRecord(1, "Alice", "CAIS", MovementKind.EXIT),
        MovementRecord(2, "Bob", "Lab", MovementKind.ENTER),
    )
    error = IngestError("1 ingest batch(es) were rejected")
    error.failures = [BatchFailure(StorageError("inconsistent exit"), len(records), records)]
    back = protocol.error_from_dict(protocol.error_to_dict(error))
    assert type(back) is IngestError
    (failure,) = back.failures
    assert isinstance(failure.error, StorageError)
    assert failure.dropped == 2
    assert failure.records == records  # retry/dead-letter material survives the wire


def test_query_syntax_error_round_trips():
    back = protocol.error_from_dict(protocol.error_to_dict(QuerySyntaxError("bad token")))
    assert type(back) is QuerySyntaxError
