"""Service hardening: per-listener connection caps and request logging.

A capped listener refuses connection N+1 with a **typed** busy error frame
(never a hang, never a reset the client misreads as "out of sync") on the
server, the router and the invalidation bus alike; ``log_requests`` emits
one structured NDJSON line per op on the ``repro.service.requests`` logger.
"""

from __future__ import annotations

import json
import logging
import time

import pytest

from repro.api import Ltam, grant
from repro.locations.multilevel import LocationHierarchy
from repro.service import (
    BusLink,
    DecisionCache,
    FabricRouter,
    InvalidationBus,
    LtamServer,
    PartitionMap,
    RouterServer,
    ServiceBusyError,
    ServiceClient,
)
from repro.simulation.buildings import grid_building


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _engine():
    engine = Ltam(LocationHierarchy(grid_building("B", 2, 2)))
    engine.grant(grant("alice").at("B.R0C0").during(0, 10_000).entries(500))
    return engine


class TestServerConnectionCap:
    def test_over_cap_connection_gets_a_typed_busy_error(self):
        with LtamServer(_engine(), max_connections=1) as server:
            with ServiceClient(*server.address) as holder:
                assert holder.health()["status"] == "ok"  # the cap is taken
                refused = ServiceClient(*server.address)
                with pytest.raises(ServiceBusyError):
                    refused.health()
                refused.close()
                # The held connection keeps working — refusal is per-accept.
                assert holder.health()["connections"]["busy_refused"] == 1
            # The slot is freed on disconnect: a new client is admitted.
            assert wait_until(
                lambda: _probe_admitted(server.address)
            ), "closing the held connection did not free the slot"

    def test_uncapped_server_never_refuses(self):
        with LtamServer(_engine()) as server:
            clients = [ServiceClient(*server.address) for _ in range(4)]
            try:
                for client in clients:
                    assert client.health()["status"] == "ok"
                assert clients[0].health()["connections"]["max"] is None
                assert clients[0].health()["connections"]["busy_refused"] == 0
            finally:
                for client in clients:
                    client.close()


def _probe_admitted(address) -> bool:
    try:
        with ServiceClient(*address) as probe:
            return probe.health()["status"] == "ok"
    except ServiceBusyError:
        return False


class TestRouterConnectionCap:
    def test_router_refuses_over_cap(self):
        with LtamServer(_engine(), partition="east") as east:
            partition_map = PartitionMap({"east": "%s:%d" % east.address})
            router = FabricRouter(partition_map)
            server = RouterServer(router, max_connections=1)
            server.start()
            try:
                with ServiceClient(*server.address) as holder:
                    assert holder.health()["status"] in ("ok", "degraded")
                    refused = ServiceClient(*server.address)
                    with pytest.raises(ServiceBusyError):
                        refused.health()
                    refused.close()
            finally:
                server.stop()
                router.close()


class TestBusConnectionCap:
    def test_bus_refuses_over_cap_and_the_link_counts_it(self):
        with InvalidationBus(max_connections=1) as bus:
            held = BusLink(
                bus.address, replica_id="first", on_events=lambda *a: None,
                on_resync=lambda: None, reconnect_delay=0.05,
            )
            try:
                assert wait_until(lambda: held.connected)
                turned_away = BusLink(
                    bus.address, replica_id="second", on_events=lambda *a: None,
                    on_resync=lambda: None, reconnect_delay=0.05,
                )
                try:
                    assert wait_until(
                        lambda: turned_away.stats["busy_refusals"] >= 1
                    ), "the refused link never saw the busy frame"
                    assert not turned_away.connected
                finally:
                    turned_away.close()
            finally:
                held.close()


class TestRequestLogging:
    def test_one_structured_line_per_op(self, caplog):
        with LtamServer(
            _engine(), cache=DecisionCache(), log_requests=True
        ) as server:
            with caplog.at_level(logging.INFO, logger="repro.service.requests"):
                with ServiceClient(*server.address) as client:
                    client.decide((5, "alice", "B.R0C0"))
                    client.decide((5, "alice", "B.R0C0"))  # now a cache hit
                    client.health()
        lines = [json.loads(r.getMessage()) for r in caplog.records]
        decides = [line for line in lines if line["op"] == "decide"]
        assert [d["cache"] for d in decides] == ["miss", "hit"]
        assert all(d["ok"] and d["duration_us"] >= 0 for d in decides)
        healths = [line for line in lines if line["op"] == "health"]
        assert healths and healths[0]["cache"] is None

    def test_batch_ops_log_the_hit_ratio(self, caplog):
        with LtamServer(
            _engine(), cache=DecisionCache(), log_requests=True
        ) as server:
            with caplog.at_level(logging.INFO, logger="repro.service.requests"):
                with ServiceClient(*server.address) as client:
                    requests = [(5, "alice", "B.R0C0"), (5, "alice", "B.R0C1")]
                    client.decide_many(requests)
                    client.decide_many(requests)
        lines = [json.loads(r.getMessage()) for r in caplog.records]
        batches = [line["cache"] for line in lines if line["op"] == "decide_many"]
        assert batches == ["0/2", "2/2"]

    def test_quiet_by_default(self, caplog):
        with LtamServer(_engine()) as server:
            with caplog.at_level(logging.INFO, logger="repro.service.requests"):
                with ServiceClient(*server.address) as client:
                    client.health()
        assert not caplog.records


class TestSharedAuthToken:
    """--auth-token: one shared secret gates server, router and bus alike."""

    def test_server_refuses_frames_without_the_token(self):
        from repro.service import ServiceAuthError

        with LtamServer(_engine(), auth_token="sesame") as server:
            with ServiceClient(*server.address, auth_token="sesame") as good:
                assert good.health()["status"] == "ok"
                assert good.decide((5, "alice", "B.R0C0")).granted
            bad = ServiceClient(*server.address)
            with pytest.raises(ServiceAuthError):
                bad.health()
            bad.close()
            wrong = ServiceClient(*server.address, auth_token="open says me")
            with pytest.raises(ServiceAuthError):
                wrong.decide((5, "alice", "B.R0C0"))
            wrong.close()
            assert server.metrics.counter_value("repro_auth_refused_total") == 2

    def test_router_refuses_frames_without_the_token(self):
        from repro.service import ServiceAuthError

        with LtamServer(_engine(), partition="solo") as server:
            address = "%s:%d" % server.address
            router = FabricRouter(PartitionMap({"solo": address}))
            hosted = RouterServer(router, port=0, auth_token="sesame")
            hosted.start()
            try:
                with ServiceClient(*hosted.address, auth_token="sesame") as good:
                    assert good.decide((5, "alice", "B.R0C0")).granted
                bad = ServiceClient(*hosted.address)
                with pytest.raises(ServiceAuthError):
                    bad.decide((5, "alice", "B.R0C0"))
                bad.close()
            finally:
                hosted.stop()
                router.close()

    def test_bus_refuses_links_without_the_token(self):
        with InvalidationBus(auth_token="sesame") as bus:
            refused = BusLink(
                bus.address, replica_id="intruder", reconnect_delay=0.05,
                on_events=lambda origin, events: None, on_resync=lambda: None,
            )
            try:
                assert wait_until(lambda: refused.stats["auth_refusals"] >= 1)
                assert not refused.connected
                assert bus.stats["auth_refusals"] >= 1
            finally:
                refused.close()
            admitted = BusLink(
                bus.address, replica_id="member", auth_token="sesame",
                reconnect_delay=0.05,
                on_events=lambda origin, events: None, on_resync=lambda: None,
            )
            try:
                assert wait_until(lambda: admitted.connected)
                assert admitted.publish([{"kind": "clear"}])
            finally:
                admitted.close()
