"""The partitioned serving fabric: map, router, reshard, wire host.

Router tests build two partition servers plus an identically seeded
embedded oracle and require routed answers to match the oracle exactly —
the same parity bar the single-server suite sets, now across a subject
split, a scatter-gather, and a live migration.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Ltam
from repro.engine.query.evaluator import QueryEngine
from repro.locations.multilevel import LocationHierarchy
from repro.service import (
    DecisionCache,
    FabricRouter,
    LtamServer,
    PartitionMap,
    ProtocolError,
    RouterServer,
    ServiceClient,
    ServiceError,
)
from repro.service.fabric import DEFAULT_ROUTER_PORT
from repro.service.protocol import request_to_dict
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.sharding import DEFAULT_VIRTUAL_NODES, HashRing

SUBJECT_COUNT = 24
HISTORY_EVENTS = 600


def _hierarchy() -> LocationHierarchy:
    return LocationHierarchy(grid_building("B", 4, 4))


def _fresh_engine(hierarchy, authorizations) -> Ltam:
    engine = Ltam.builder().hierarchy(hierarchy).build()
    engine.grant_all(authorizations)
    return engine


# --------------------------------------------------------------------- #
# PartitionMap
# --------------------------------------------------------------------- #
class TestPartitionMap:
    def test_rejects_empty_and_bad_addresses(self):
        with pytest.raises(ServiceError):
            PartitionMap({})
        with pytest.raises(ServiceError):
            PartitionMap({"a": "no-port-here"})
        with pytest.raises(ServiceError):
            PartitionMap({"a": "host:not-a-number"})
        with pytest.raises(ServiceError):
            PartitionMap({"a": "h:1"}, version=0)

    def test_owner_is_deterministic_and_total(self):
        pmap = PartitionMap({"a": "h:1", "b": "h:2", "c": "h:3"})
        again = PartitionMap({"c": "h:3", "a": "h:1", "b": "h:2"})
        for index in range(200):
            subject = f"user-{index:03d}"
            assert pmap.owner(subject) in pmap.names
            assert pmap.owner(subject) == again.owner(subject)

    def test_single_partition_owns_everything(self):
        pmap = PartitionMap({"solo": "h:1"})
        assert all(pmap.owner(f"s{i}") == "solo" for i in range(50))
        assert pmap.describe("solo")["coverage"] == 1.0

    def test_assignment_pins_beat_the_ring(self):
        pmap = PartitionMap({"a": "h:1", "b": "h:2"})
        subject = "user-000"
        natural = pmap.owner(subject)
        other = "b" if natural == "a" else "a"
        pinned = pmap.with_assignment(subject, other)
        assert pinned.owner(subject) == other
        assert pinned.version == pmap.version + 1
        # every other subject keeps its owner
        for index in range(1, 100):
            name = f"user-{index:03d}"
            assert pinned.owner(name) == pmap.owner(name)
        with pytest.raises(ServiceError):
            pmap.with_assignment(subject, "nope")

    def test_with_partitions_keeps_surviving_pins(self):
        pmap = PartitionMap({"a": "h:1", "b": "h:2"}).with_assignment("s", "a")
        grown = pmap.with_partitions({"a": "h:1", "b": "h:2", "c": "h:3"})
        assert grown.owner("s") == "a"
        shrunk = pmap.with_partitions({"b": "h:2"})
        assert "s" not in shrunk.assignments  # pin to the departed "a" dropped
        assert shrunk.owner("s") == "b"

    def test_wire_and_file_roundtrip(self, tmp_path):
        pmap = PartitionMap(
            {"a": "h:1", "b": "h:2"}, version=7, virtual_nodes=16
        ).with_assignment("hot", "a")
        clone = PartitionMap.from_wire(pmap.to_wire())
        assert clone.version == pmap.version
        assert clone.names == pmap.names
        assert all(clone.owner(f"x{i}") == pmap.owner(f"x{i}") for i in range(100))
        path = tmp_path / "map.json"
        pmap.save(str(path))
        loaded = PartitionMap.load(str(path))
        assert loaded.to_wire() == pmap.to_wire()
        with pytest.raises(ServiceError):
            PartitionMap.load(str(tmp_path / "missing.json"))
        with pytest.raises(ServiceError):
            PartitionMap.from_wire({"version": 1})

    def test_describe_coverage_partitions_the_ring(self):
        pmap = PartitionMap({"a": "h:1", "b": "h:2", "c": "h:3"})
        total = sum(pmap.describe(name)["coverage"] for name in pmap.names)
        assert total == pytest.approx(1.0, abs=1e-4)
        with pytest.raises(ServiceError):
            pmap.describe("nope")


class TestMinimalRemapProperties:
    """Growing/shrinking the fleet must remap only the minimal subject set."""

    @given(
        partitions=st.integers(min_value=1, max_value=6),
        subjects=st.integers(min_value=10, max_value=120),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_map_growth_moves_subjects_only_to_the_new_partition(
        self, partitions, subjects
    ):
        old = PartitionMap(
            {f"p{i}": f"h:{i + 1}" for i in range(partitions)}, virtual_nodes=32
        )
        grown = old.with_partitions(
            {f"p{i}": f"h:{i + 1}" for i in range(partitions + 1)}
        )
        for index in range(subjects):
            subject = f"user-{index:03d}"
            before, after = old.owner(subject), grown.owner(subject)
            if before != after:
                assert after == f"p{partitions}", (
                    f"{subject} moved {before} -> {after}, not to the joining partition"
                )

    @given(
        partitions=st.integers(min_value=2, max_value=6),
        removed=st.integers(min_value=0, max_value=5),
        subjects=st.integers(min_value=10, max_value=120),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_map_shrink_moves_only_the_departed_partitions_subjects(
        self, partitions, removed, subjects
    ):
        removed = removed % partitions
        old = PartitionMap(
            {f"p{i}": f"h:{i + 1}" for i in range(partitions)}, virtual_nodes=32
        )
        shrunk = old.with_partitions(
            {f"p{i}": f"h:{i + 1}" for i in range(partitions) if i != removed}
        )
        for index in range(subjects):
            subject = f"user-{index:03d}"
            before = old.owner(subject)
            if before != f"p{removed}":
                assert shrunk.owner(subject) == before

    @given(
        shards=st.integers(min_value=1, max_value=8),
        keys=st.integers(min_value=10, max_value=120),
    )
    @settings(max_examples=30, deadline=None)
    def test_hash_ring_growth_moves_keys_only_to_the_new_shard(self, shards, keys):
        old = HashRing(shards, virtual_nodes=32)
        grown = HashRing(shards + 1, virtual_nodes=32)
        for index in range(keys):
            key = f"user-{index:03d}"
            before, after = old.shard_for(key), grown.shard_for(key)
            if before != after:
                assert after == shards

    def test_partition_map_and_default_ring_agree_on_the_construction(self):
        """The map's points are the ring's construction with names for shards."""
        assert DEFAULT_VIRTUAL_NODES == PartitionMap({"a": "h:1"}).virtual_nodes


# --------------------------------------------------------------------- #
# Routed serving vs the embedded oracle
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fabric():
    """Two cached partition servers + router + an identically seeded oracle."""
    hierarchy = _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=29)
    subjects = generate_subjects(SUBJECT_COUNT)
    authorizations = generator.authorizations(subjects)
    events = generator.movement_events(subjects, HISTORY_EVENTS)
    requests = AuthorizationWorkloadGenerator(hierarchy, seed=31).requests(
        subjects, 200
    )

    oracle = _fresh_engine(hierarchy, authorizations)
    servers = []
    addresses = {}
    for name in ("east", "west"):
        server = LtamServer(
            _fresh_engine(hierarchy, authorizations),
            cache=DecisionCache(),
            partition=name,
        )
        server.start()
        servers.append(server)
        addresses[name] = "%s:%d" % server.address
    router = FabricRouter(PartitionMap(addresses))

    oracle.observe_many(events)
    router.observe_batch(events, mode="monitor", wait=True)

    yield {
        "hierarchy": hierarchy,
        "oracle": oracle,
        "oracle_queries": QueryEngine(oracle),
        "router": router,
        "servers": dict(zip(("east", "west"), servers)),
        "subjects": subjects,
        "events": events,
        "requests": requests,
    }
    router.close()
    for server in servers:
        server.stop()


class TestRoutedServing:
    def test_point_decides_match_the_oracle(self, fabric):
        for request in fabric["requests"][:40]:
            routed = fabric["router"].decide(request)
            local = fabric["oracle"].decide(request)
            assert routed.granted == local.granted
            assert str(routed.reason) == str(local.reason)

    def test_decide_many_preserves_caller_order(self, fabric):
        routed = fabric["router"].decide_many(fabric["requests"])
        local = fabric["oracle"].decide_many(fabric["requests"])
        assert len(routed) == len(local)
        for ours, theirs in zip(routed, local):
            assert ours.granted == theirs.granted
            assert ours.request.subject == theirs.request.subject

    def test_subject_queries_route_to_the_owner(self, fabric):
        for subject in fabric["subjects"][:6]:
            text = f"WHERE IS {subject}"
            routed = fabric["router"].query(text)
            local = fabric["oracle_queries"].evaluate(text)
            assert routed.rows == local.rows

    def test_who_is_in_merges_across_partitions(self, fabric):
        for location in sorted(fabric["hierarchy"].primitive_names)[:6]:
            text = f"WHO IS IN {location}"
            routed = fabric["router"].query(text)
            local = fabric["oracle_queries"].evaluate(text)
            assert routed.rows == local.rows, location

    def test_global_violations_merge_canonically(self, fabric):
        routed = fabric["router"].query("VIOLATIONS")
        local = fabric["oracle_queries"].evaluate("VIOLATIONS")
        assert sorted(routed.rows) == sorted(local.rows)
        assert routed.rows == tuple(sorted(routed.rows))  # canonical order

    def test_layout_only_route_query_is_answered(self, fabric):
        locations = sorted(fabric["hierarchy"].primitive_names)
        routed = fabric["router"].query(f"ROUTE FROM {locations[0]} TO {locations[1]}")
        local = fabric["oracle_queries"].evaluate(
            f"ROUTE FROM {locations[0]} TO {locations[1]}"
        )
        assert routed.rows == local.rows

    def test_health_reports_the_map_and_every_partition(self, fabric):
        report = fabric["router"].health()
        assert report["status"] == "ok"
        assert report["role"] == "router"
        assert set(report["map"]["partitions"]) == {"east", "west"}
        for name, server in fabric["servers"].items():
            assert report["partitions"][name]["partition"]["name"] == name
        assert report["stats"]["routed"] > 0

    def test_dispatch_rejects_unknown_ops(self, fabric):
        with pytest.raises(ProtocolError):
            fabric["router"].dispatch({"op": "frobnicate"})

    def test_observe_batch_merges_receipts(self, fabric):
        receipt = fabric["router"].observe_batch([], mode="monitor", wait=True)
        assert receipt["accepted"] == 0
        # a waited empty batch is a flush barrier: it reaches every partition
        assert set(receipt["partitions"]) == {"east", "west"}

    def test_decide_many_empty_is_empty(self, fabric):
        assert fabric["router"].decide_many([]) == []


# --------------------------------------------------------------------- #
# Live migration
# --------------------------------------------------------------------- #
class TestReshard:
    def _build(self, partitions=("east", "west")):
        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=47)
        subjects = generate_subjects(12)
        authorizations = generator.authorizations(subjects)
        events = generator.movement_events(subjects, 300)
        servers, addresses = {}, {}
        for name in partitions:
            server = LtamServer(
                _fresh_engine(hierarchy, authorizations),
                cache=DecisionCache(),
                partition=name,
            )
            server.start()
            servers[name] = server
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        router.observe_batch(events, mode="monitor", wait=True)
        return hierarchy, subjects, events, servers, router

    def test_reshard_moves_exactly_the_remapped_subject(self):
        hierarchy, subjects, events, servers, router = self._build()
        try:
            hot = subjects[0]
            old_map = router.partition_map
            source = old_map.owner(hot)
            target = next(n for n in old_map.names if n != source)
            hot_alerts = [
                a for a in servers[source].engine.alerts.alerts if a.subject == hot
            ]
            hot_history = servers[source].engine.movement_db.history(
                subject=hot, include_archived=True
            )
            where = servers[source].engine.where_is(hot)

            summary = router.reshard(old_map.with_assignment(hot, target))
            assert summary["version"] == old_map.version + 1
            assert summary["subjects"] == [hot]
            assert summary["transfers"] == {f"{source}->{target}": 1}

            # the destination now holds the full history, alerts, and stay
            dst = servers[target].engine
            moved = dst.movement_db.history(subject=hot, include_archived=True)
            assert [
                (r.time, r.location, r.kind) for r in moved
            ] == [(r.time, r.location, r.kind) for r in hot_history]
            assert dst.where_is(hot) == where
            assert [
                (a.time, a.kind, a.location)
                for a in dst.alerts.alerts
                if a.subject == hot
            ] == [(a.time, a.kind, a.location) for a in hot_alerts]
            assert dst.monitor.sessions.current(hot) is not None or where is None

            # the source forgot everything
            src = servers[source].engine
            assert src.movement_db.history(subject=hot, include_archived=True) == []
            assert not [a for a in src.alerts.alerts if a.subject == hot]
            assert src.monitor.sessions.current(hot) is None

            # routed reads still work and reach the new owner
            assert router.partition_map.owner(hot) == target
            routed = router.query(f"WHERE IS {hot}")
            assert routed.scalar == where
        finally:
            router.close()
            for server in servers.values():
                server.stop()

    def test_per_partition_cache_sidecars_survive_a_reshard(self, tmp_path):
        """Each partition's durable cache file stays *valid* across a
        migration: the source's disk rows for the moved subject are
        tombstoned by the handoff, so a later warm restart of that
        partition can never resurrect a migrated subject's decisions."""
        from repro.service import TieredDecisionCache, engine_fingerprint

        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=47)
        subjects = generate_subjects(12)
        authorizations = generator.authorizations(subjects)
        events = generator.movement_events(subjects, 300)
        servers, caches, addresses = {}, {}, {}
        for name in ("east", "west"):
            cache = TieredDecisionCache(str(tmp_path / f"{name}.cache.db"))
            server = LtamServer(
                _fresh_engine(hierarchy, authorizations), cache=cache, partition=name
            )
            server.start()
            servers[name], caches[name] = server, cache
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        try:
            router.observe_batch(events, mode="monitor", wait=True)
            hot = subjects[0]
            old_map = router.partition_map
            source = old_map.owner(hot)
            target = next(n for n in old_map.names if n != source)
            locations = sorted(hierarchy.primitive_names)[:4]
            for time in (500, 600):
                for location in locations:
                    router.decide((time, hot, location))

            def _hot_rows(cache):
                return [row for row in cache.sidecar.rows() if row[0] == hot]

            assert _hot_rows(caches[source]), "priming persisted nothing"
            router.reshard(old_map.with_assignment(hot, target))
            assert not _hot_rows(caches[source]), (
                "the handoff left the migrated subject's rows in the "
                "source partition's cache file"
            )

            # Simulate a source-partition process restart over the same
            # sidecar: whatever warms back, none of it is the moved subject.
            engine = servers[source].engine
            caches[source].close()
            reopened = TieredDecisionCache(str(tmp_path / f"{source}.cache.db"))
            try:
                report = reopened.warm(
                    engine.movement_db, fingerprint=engine_fingerprint(engine)
                )
                assert report["examined"] == (
                    report["readmitted"] + report["dropped"] + report["retained_on_disk"]
                )
                assert not _hot_rows(reopened)
            finally:
                reopened.close()
            caches[source] = None

            # The destination keeps answering for the moved subject.
            routed = router.decide((700, hot, locations[0]))
            assert routed.request.subject == hot
        finally:
            router.close()
            for name, server in servers.items():
                server.stop()
                if caches[name] is not None:
                    caches[name].close()

    def test_warm_restart_under_a_simultaneous_map_change(self, tmp_path):
        """The collision of the two durability stories: a partition that
        restarts *right after* a reshard must come back with a sidecar
        that is both warm (kept subjects hit without re-evaluation) and
        clean (the migrated subject's rows never resurrect)."""
        from repro.service import TieredDecisionCache, engine_fingerprint

        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=47)
        subjects = generate_subjects(12)
        authorizations = generator.authorizations(subjects)
        events = generator.movement_events(subjects, 300)
        servers, caches, addresses = {}, {}, {}
        for name in ("east", "west"):
            cache = TieredDecisionCache(str(tmp_path / f"{name}.cache.db"))
            server = LtamServer(
                _fresh_engine(hierarchy, authorizations), cache=cache, partition=name
            )
            server.start()
            servers[name], caches[name] = server, cache
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        try:
            router.observe_batch(events, mode="monitor", wait=True)
            hot = subjects[0]
            old_map = router.partition_map
            source = old_map.owner(hot)
            target = next(n for n in old_map.names if n != source)
            kept = next(
                s for s in subjects[1:] if old_map.owner(s) == source and s != hot
            )
            locations = sorted(hierarchy.primitive_names)[:2]
            for location in locations:
                router.decide((500, hot, location))

            # the map change: hot migrates away mid-flight
            router.reshard(old_map.with_assignment(hot, target))
            assert router.partition_map.owner(kept) == source

            # prime the kept subject AFTER the handoff, so its cached
            # positions postdate every write the migration made
            kept_requests = [(600, kept, location) for location in locations]
            for request in kept_requests:
                router.decide(request)

            # ... and now the restart, over the very same sidecar file
            host, port = servers[source].address
            engine = servers[source].engine
            servers[source].stop()
            caches[source].close()
            reopened = TieredDecisionCache(str(tmp_path / f"{source}.cache.db"))
            caches[source] = reopened
            report = reopened.warm(
                engine.movement_db, fingerprint=engine_fingerprint(engine)
            )
            assert report["readmitted"] >= len(kept_requests), (
                "the kept subject's rows did not survive the reshard+restart"
            )
            assert not [row for row in reopened.sidecar.rows() if row[0] == hot], (
                "the migrated subject's rows resurrected through the restart"
            )
            servers[source] = LtamServer(
                engine, cache=reopened, host=host, port=port, partition=source
            )
            servers[source].start()

            # kept subjects answer warm: the routed repeats are cache hits
            hits_before = reopened.stats["hits"]
            for request in kept_requests:
                router.decide(request)
            assert reopened.stats["hits"] - hits_before == len(kept_requests)

            # the moved subject keeps answering from its new owner
            routed = router.decide((700, hot, locations[0]))
            assert routed.request.subject == hot
            assert router.partition_map.owner(hot) == target
        finally:
            router.close()
            for name, server in servers.items():
                server.stop()
                caches[name].close()

    def test_reshard_rejects_stale_maps(self):
        _, _, _, servers, router = self._build()
        try:
            with pytest.raises(ServiceError):
                router.reshard(router.partition_map)  # same version
        finally:
            router.close()
            for server in servers.values():
                server.stop()

    def test_reshard_survives_checkpointed_history(self):
        """A migrated subject's archived slice lands below the live slice."""
        hierarchy, subjects, events, servers, router = self._build()
        try:
            router.checkpoint_raw()  # archive everything so far
            more = AuthorizationWorkloadGenerator(hierarchy, seed=53).movement_events(
                subjects, 120
            )
            base = max(r.time for r in events)
            shifted = [
                type(r)(r.time + base, r.subject, r.location, r.kind) for r in more
            ]
            router.observe_batch(shifted, mode="monitor", wait=True)

            hot = subjects[0]
            old_map = router.partition_map
            source = old_map.owner(hot)
            target = next(n for n in old_map.names if n != source)
            expected = [
                (r.time, r.location, r.kind)
                for r in servers[source].engine.movement_db.history(
                    subject=hot, include_archived=True
                )
            ]
            assert expected, "the hot subject needs history for this test to bite"

            router.reshard(old_map.with_assignment(hot, target))
            landed = [
                (r.time, r.location, r.kind)
                for r in servers[target].engine.movement_db.history(
                    subject=hot, include_archived=True
                )
            ]
            assert landed == expected
        finally:
            router.close()
            for server in servers.values():
                server.stop()


# --------------------------------------------------------------------- #
# ConnectionPool under partition restart
# --------------------------------------------------------------------- #
class _CountingClient(ServiceClient):
    created = 0

    def __init__(self, *args, **kwargs):
        type(self).created += 1
        super().__init__(*args, **kwargs)


def test_partition_restart_costs_one_reconnect(monkeypatch):
    """Router traffic across a partition restart reconnects exactly once."""
    hierarchy = _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=61)
    subjects = generate_subjects(6)
    authorizations = generator.authorizations(subjects)

    server = LtamServer(_fresh_engine(hierarchy, authorizations), partition="solo")
    server.start()
    host, port = server.address

    monkeypatch.setattr("repro.service.client.ServiceClient", _CountingClient)
    _CountingClient.created = 0
    router = FabricRouter(PartitionMap({"solo": f"{host}:{port}"}), pool_size=1)
    try:
        request = (10, subjects[0], sorted(hierarchy.primitive_names)[0])
        for _ in range(5):
            router.decide(request)
        assert _CountingClient.created == 1  # one pooled connection, reused

        server.stop()
        server = LtamServer(
            _fresh_engine(hierarchy, authorizations),
            host=host,
            port=port,
            partition="solo",
        )
        server.start()

        for _ in range(5):
            router.decide(request)
        # the restart killed the pooled socket; the checkout liveness probe
        # discarded it and dialed exactly one replacement
        assert _CountingClient.created == 2
    finally:
        router.close()
        server.stop()


# --------------------------------------------------------------------- #
# The standalone router process (RouterServer)
# --------------------------------------------------------------------- #
class TestRouterServer:
    def test_wire_parity_and_errors(self):
        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=67)
        subjects = generate_subjects(8)
        authorizations = generator.authorizations(subjects)
        events = generator.movement_events(subjects, 200)

        servers, addresses = [], {}
        for name in ("east", "west"):
            server = LtamServer(_fresh_engine(hierarchy, authorizations), partition=name)
            server.start()
            servers.append(server)
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        hosted = RouterServer(router, port=0)
        hosted.start()
        client = ServiceClient(*hosted.address)
        try:
            assert hosted.address[1] != DEFAULT_ROUTER_PORT  # port=0 picked a free one
            client.call(
                "observe_batch",
                records=[[r.time, r.subject, r.location, r.kind.value] for r in events],
                mode="monitor",
                wait=True,
            )
            oracle = _fresh_engine(hierarchy, authorizations)
            oracle.observe_many(events)
            request = (events[-1].time + 1, subjects[0], sorted(hierarchy.primitive_names)[0])
            remote = client.call("decide", request=request_to_dict(oracle.decide(request).request))
            assert remote["granted"] == oracle.decide(request).granted

            report = client.call("health")
            assert report["role"] == "router"
            assert report["map"]["version"] == 1

            # a reshard over the wire: pin a subject and watch the version move
            hot = subjects[0]
            new_map = router.partition_map.with_assignment(
                hot,
                next(
                    n
                    for n in router.partition_map.names
                    if n != router.partition_map.owner(hot)
                ),
            )
            summary = client.call("reshard", map=new_map.to_wire())
            assert summary["version"] == 2
            assert client.call("health")["map"]["version"] == 2

            with pytest.raises(ProtocolError):
                client.call("frobnicate")
        finally:
            client.close()
            hosted.stop()
            router.close()
            for server in servers:
                server.stop()

    def test_concurrent_clients_scatter_without_interference(self):
        hierarchy = _hierarchy()
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=71)
        subjects = generate_subjects(10)
        authorizations = generator.authorizations(subjects)

        servers, addresses = [], {}
        for name in ("east", "west"):
            server = LtamServer(_fresh_engine(hierarchy, authorizations), partition=name)
            server.start()
            servers.append(server)
            addresses[name] = "%s:%d" % server.address
        router = FabricRouter(PartitionMap(addresses))
        hosted = RouterServer(router, port=0)
        hosted.start()

        requests = AuthorizationWorkloadGenerator(hierarchy, seed=73).requests(
            subjects, 40
        )
        oracle = _fresh_engine(hierarchy, authorizations)
        expected = [d.granted for d in oracle.decide_many(requests)]
        failures = []

        def worker():
            client = ServiceClient(*hosted.address)
            try:
                raw = client.call(
                    "decide_many",
                    requests=[request_to_dict(oracle.decide(r).request) for r in requests],
                    trace=False,
                )
                granted = [d["granted"] for d in raw["decisions"]]
                if granted != expected:
                    failures.append(granted)
            finally:
                client.close()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not failures
        finally:
            hosted.stop()
            router.close()
            for server in servers:
                server.stop()
