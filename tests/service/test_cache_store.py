"""The durable cache tier: sidecar store, spill/promote, warm restart.

Three layers of proof:

* unit tests of :class:`CacheStore` (the SQLite sidecar) and of the
  :class:`TieredDecisionCache` tier mechanics — write-through, demotion,
  promotion, the tombstone invariant on every invalidation path (bus-driven
  included), single-flight on concurrent identical misses;
* warm-restart tests — survivors re-admitted, foreign writes / config
  drift / bucket-geometry changes dropped;
* a hypothesis property: **no persisted entry is ever served after an
  invalidating sequence**, for arbitrary interleavings of observes, grants,
  revokes, capacity changes, foreign-write pickups and kill/restart — the
  cached engine must stay decision-for-decision identical to an uncached
  oracle replaying the same script.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Ltam, grant
from repro.api.decision import Decision
from repro.core.requests import AccessRequest, DenialReason
from repro.locations.multilevel import LocationHierarchy
from repro.service import InvalidationBus, LtamServer, ServiceClient
from repro.service.cache import DEFAULT_ACTION, DecisionCache
from repro.service.cache_store import (
    CacheStore,
    TieredDecisionCache,
    WireFragments,
    engine_fingerprint,
)
from repro.service.errors import ServiceError
from repro.service.protocol import decision_to_dict
from repro.simulation.buildings import grid_building
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    SqliteMovementDatabase,
)


def _decision(time=15, subject="Alice", location="CAIS"):
    return Decision.denied_by(
        AccessRequest(time, subject, location), DenialReason.NO_AUTHORIZATION
    )


def _fragments(decision) -> WireFragments:
    return WireFragments(decision_to_dict(decision))


def _key(subject, location, time, bucket=1):
    return (subject, location, DEFAULT_ACTION, time // bucket)


def _put(cache, subject, location, time, decision=None):
    decision = decision if decision is not None else _decision(time, subject, location)
    return cache.put(
        subject, location, time, decision, payload=_fragments(decision)
    )


def wait_until(predicate, timeout=5.0, interval=0.01):
    import time as _time

    deadline = _time.monotonic() + timeout
    while _time.monotonic() < deadline:
        if predicate():
            return True
        _time.sleep(interval)
    return predicate()


# --------------------------------------------------------------------- #
# CacheStore (the sidecar file)
# --------------------------------------------------------------------- #
class TestCacheStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CacheStore(str(tmp_path / "c.db"))
        key = _key("Alice", "CAIS", 15)
        store.put(
            key,
            position=7,
            generation=(1, 3),
            json_full='{"granted":false}',
            json_elided='{"granted":false}',
            bin_full=b"\x01\x02",
            bin_elided=b"\x03",
        )
        row = store.get(key)
        assert row == (7, 1, 3, '{"granted":false}', '{"granted":false}', b"\x01\x02", b"\x03")
        assert store.get(_key("Bob", "CAIS", 15)) is None
        assert store.count() == 1
        store.close()

    def test_fill_binary_only_backfills_null(self, tmp_path):
        store = CacheStore(str(tmp_path / "c.db"))
        key = _key("A", "L", 1)
        store.put(key, position=0, generation=None, json_full="{}", json_elided="{}")
        store.fill_binary(key, b"full", b"elided")
        assert store.get(key)[5:] == (b"full", b"elided")
        store.fill_binary(key, b"other", b"other")  # already filled: no-op
        assert store.get(key)[5:] == (b"full", b"elided")
        store.close()

    def test_scoped_deletes(self, tmp_path):
        store = CacheStore(str(tmp_path / "c.db"))
        for subject, location in (("A", "L1"), ("A", "L2"), ("B", "L1"), ("B", "L2")):
            store.put(
                _key(subject, location, 1),
                position=0, generation=None, json_full="{}", json_elided="{}",
            )
        assert store.delete_pair("A", "L1") == 1
        assert store.delete_location("L2") == 2
        assert store.delete_subject("B") == 1
        assert store.count() == 0
        store.close()

    def test_trim_drops_oldest_written(self, tmp_path):
        store = CacheStore(str(tmp_path / "c.db"))
        for index in range(5):
            store.put(
                _key(f"s{index}", "L", 1),
                position=index, generation=None, json_full="{}", json_elided="{}",
            )
        assert store.trim(3) == 2
        assert store.get(_key("s0", "L", 1)) is None
        assert store.get(_key("s1", "L", 1)) is None
        assert store.get(_key("s4", "L", 1)) is not None
        assert store.trim(3) == 0
        store.close()

    def test_meta_upsert_and_peek(self, tmp_path):
        path = str(tmp_path / "c.db")
        store = CacheStore(path)
        store.set_meta("fingerprint", "aaa")
        store.set_meta("fingerprint", "bbb")
        assert store.get_meta("fingerprint") == "bbb"
        store.put(
            _key("A", "L", 1), position=9, generation=None, json_full="{}", json_elided="{}"
        )
        store.close()
        report = CacheStore.peek(path)
        assert report["entries"] == 1
        assert report["meta"]["fingerprint"] == "bbb"
        assert report["min_position"] == report["max_position"] == 9

    def test_peek_rejects_non_sidecar(self, tmp_path):
        alien = tmp_path / "movements.db"
        db = SqliteMovementDatabase(str(alien))
        db.close()
        assert CacheStore.peek(str(alien)) == {}

    def test_bucket_mismatch_purges(self, tmp_path):
        path = str(tmp_path / "c.db")
        store = CacheStore(path, bucket=1)
        store.put(
            _key("A", "L", 1), position=0, generation=None, json_full="{}", json_elided="{}"
        )
        store.close()
        # Same geometry: entries survive a reopen.
        store = CacheStore(path, bucket=1)
        assert store.count() == 1
        store.close()
        # Different bucket width: the persisted keys mean something else.
        store = CacheStore(path, bucket=10)
        assert store.count() == 0
        assert store.get_meta("bucket") == "10"
        store.close()

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            CacheStore(str(tmp_path / "c.db"), bucket=0)
        with pytest.raises(ServiceError):
            TieredDecisionCache(str(tmp_path / "t.db"), spill=0)


# --------------------------------------------------------------------- #
# TieredDecisionCache: write-through, demote, promote, tombstone
# --------------------------------------------------------------------- #
class TestTiering:
    def test_put_writes_through(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"))
        _put(cache, "Alice", "CAIS", 15)
        row = cache.sidecar.get(_key("Alice", "CAIS", 15))
        assert row is not None
        assert '"granted"' in row[3]
        cache.close()

    def test_eviction_demotes_and_hit_promotes(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=2)
        _put(cache, "a", "L", 1)
        _put(cache, "b", "L", 2)
        _put(cache, "c", "L", 3)  # evicts "a" from RAM — but not from disk
        assert len(cache) == 2
        assert cache.sidecar.count() == 3
        entry = cache.get("a", "L", 1)  # promoted back
        assert entry is not None
        assert isinstance(entry.payload, WireFragments)
        stats = cache.stats
        assert stats["spilled"] == 2  # "a" demoted, then "b" when "a" returned
        assert stats["disk_hits"] == 1 and stats["promoted"] == 1
        assert stats["hits"] == 1  # a disk hit is a hit, not a miss
        cache.close()

    def test_promotion_serves_the_persisted_fragments_verbatim(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=1)
        decision = _decision(1, "a", "L")
        fragments = _fragments(decision)
        fragments.binary(decision, include_trace=True)  # compute binary forms
        cache.put("a", "L", 1, decision, payload=fragments)
        _put(cache, "b", "L", 2)  # demote "a" (binary backfilled on demotion)
        entry = cache.get("a", "L", 1)
        assert entry.payload.json_full == fragments.json_full
        assert entry.payload.json_elided == fragments.json_elided
        assert entry.payload.bin_full == fragments.bin_full
        assert entry.payload.bin_elided == fragments.bin_elided
        cache.close()

    def test_promoted_entry_attaches_the_current_generation(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=1)
        _put(cache, "a", "L", 1)
        _put(cache, "b", "OTHER", 2)  # demote "a"
        entry = cache.get("a", "L", 1)
        token = cache.generation("L")
        assert entry.generation == token

    def test_spill_cap_trims_oldest(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=2, spill=3)
        for index in range(5):
            _put(cache, f"s{index}", "L", index)
        assert cache.sidecar.count() == 3
        assert cache.stats["spill_trimmed"] == 2
        assert cache.sidecar.get(_key("s0", "L", 0)) is None
        cache.close()

    @pytest.mark.parametrize(
        "invalidate",
        [
            lambda cache: cache.invalidate_location("CAIS"),
            lambda cache: cache.invalidate_pair("Alice", "CAIS"),
            lambda cache: cache.invalidate_subject("Alice"),
            lambda cache: cache.clear(),
        ],
        ids=["location", "pair", "subject", "clear"],
    )
    def test_every_invalidation_path_tombstones_disk(self, tmp_path, invalidate):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=1)
        _put(cache, "Alice", "CAIS", 15)
        _put(cache, "Bob", "Lab", 3)  # demotes Alice's row to disk-only
        assert cache.sidecar.get(_key("Alice", "CAIS", 15)) is not None
        invalidate(cache)
        # The RAM tier never held the entry anymore — only the tombstone
        # proves the invalidation reached the disk tier.
        assert cache.sidecar.get(_key("Alice", "CAIS", 15)) is None
        assert cache.get("Alice", "CAIS", 15) is None
        assert cache.stats["tombstoned"] >= 1
        cache.close()

    def test_movement_notices_tombstone_disk(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=1)
        db = InMemoryMovementDatabase()
        cache.connect(db)
        _put(cache, "Alice", "CAIS", 15)
        _put(cache, "Bob", "Lab", 3)  # demote Alice
        db.record_entry(16, "Carol", "CAIS")
        assert cache.sidecar.get(_key("Alice", "CAIS", 15)) is None
        assert cache.get("Alice", "CAIS", 15) is None  # no promotion either
        cache.close()

    def test_corrupt_row_is_a_miss_not_a_crash(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=1)
        key = _key("x", "L", 1)
        cache.sidecar.put(
            key, position=0, generation=None, json_full="not json", json_elided="{}"
        )
        assert cache.get("x", "L", 1) is None
        assert cache.sidecar.get(key) is None  # the bad row was dropped
        cache.close()


class TestBusDrivenTombstones:
    def test_remote_movement_tombstones_the_replica_sidecar(self, tmp_path):
        """A foreign replica's observe must tombstone this replica's disk
        rows — the bus eviction goes through CoherentDecisionCache into the
        tiered hooks."""
        shared = str(tmp_path / "shared.db")
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine_a = (
            Ltam.builder().hierarchy(hierarchy).backend("sqlite", shared).build()
        )
        engine_a.grant(grant("alice").at("B.R0C0").during(0, 10_000).entries(500))
        bus = InvalidationBus()
        server_a = LtamServer(
            engine_a, cache=DecisionCache(), bus=bus, replica_id="ts-a"
        )
        server_a.start()
        engine_b = (
            Ltam.builder().hierarchy(hierarchy).backend("sqlite", shared).build()
        )
        cache_b = TieredDecisionCache(str(tmp_path / "b.cache.db"), maxsize=1)
        server_b = LtamServer(
            engine_b, cache=cache_b, bus=bus.address, replica_id="ts-b"
        )
        server_b.start()
        try:
            with ServiceClient(*server_b.address) as reader:
                reader.decide((5, "alice", "B.R0C0"))
                reader.decide((5, "alice", "B.R0C1"))  # demotes the R0C0 row
                key = _key("alice", "B.R0C0", 5)
                assert cache_b.sidecar.get(key) is not None
                with ServiceClient(*server_a.address) as writer:
                    writer.observe_entry(6, "alice", "B.R0C0")
                assert wait_until(lambda: cache_b.sidecar.get(key) is None), (
                    "bus-driven eviction did not tombstone the disk row"
                )
                reader.sync()
                decision = reader.decide((7, "alice", "B.R0C0"))
                assert decision.entries_used == 1  # fresh state, not the spill
        finally:
            server_b.stop()
            server_a.stop()
            cache_b.close()


# --------------------------------------------------------------------- #
# Warm restart
# --------------------------------------------------------------------- #
class TestWarmRestart:
    def _db(self, tmp_path):
        return SqliteMovementDatabase(str(tmp_path / "movements.db"))

    def test_survivors_are_readmitted(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = self._db(tmp_path)
        cache = TieredDecisionCache(path)
        cache.connect(db)
        _put(cache, "Alice", "CAIS", 15)
        _put(cache, "Bob", "Lab", 3)
        cache.close()

        warmed = TieredDecisionCache(path)
        report = warmed.warm(db)
        assert report == {
            "examined": 2, "readmitted": 2, "dropped": 0, "retained_on_disk": 0
        }
        assert warmed.get("Alice", "CAIS", 15) is not None
        assert warmed.get("Bob", "Lab", 3) is not None
        assert warmed.stats["readmitted"] == 2
        warmed.close()
        db.close()

    def test_foreign_write_while_down_drops_only_touched_locations(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = self._db(tmp_path)
        cache = TieredDecisionCache(path)
        cache.connect(db)
        _put(cache, "Alice", "CAIS", 15)
        _put(cache, "Bob", "Lab", 3)
        cache.close()
        # While "down": a foreign writer lands a movement touching CAIS.
        db.record(MovementRecord(20, "Carol", "CAIS", MovementKind.ENTER))

        warmed = TieredDecisionCache(path)
        report = warmed.warm(db)
        assert report["readmitted"] == 1 and report["dropped"] == 1
        assert warmed.get("Alice", "CAIS", 15) is None  # invalidated while down
        assert warmed.get("Bob", "Lab", 3) is not None
        assert warmed.sidecar.get(_key("Alice", "CAIS", 15)) is None  # tombstoned
        warmed.close()
        db.close()

    def test_fingerprint_mismatch_purges_wholesale(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = self._db(tmp_path)
        cache = TieredDecisionCache(path)
        cache.connect(db)
        _put(cache, "Alice", "CAIS", 15)
        cache.warm(db, fingerprint="config-v1")  # stamps the print
        cache.close()

        warmed = TieredDecisionCache(path)
        report = warmed.warm(db, fingerprint="config-v2")
        assert report["readmitted"] == 0 and report["dropped"] == 1
        assert warmed.sidecar.count() == 0
        warmed.close()
        db.close()

    def test_position_beyond_high_water_is_dropped(self, tmp_path):
        # The movement file was reset while the cache survived: rows claim
        # positions the log never reached, and must not be trusted.
        path = str(tmp_path / "c.db")
        cache = TieredDecisionCache(path)
        cache.sidecar.put(
            _key("Alice", "CAIS", 15),
            position=99, generation=None, json_full="{}", json_elided="{}",
        )
        db = self._db(tmp_path)  # fresh: high_water == 0
        report = cache.warm(db)
        assert report["dropped"] == 1 and report["readmitted"] == 0
        cache.close()
        db.close()

    def test_warm_without_a_movement_db_purges(self, tmp_path):
        path = str(tmp_path / "c.db")
        cache = TieredDecisionCache(path)
        _put(cache, "Alice", "CAIS", 15)
        cache.close()
        warmed = TieredDecisionCache(path)
        report = warmed.warm()  # never connected: nothing to validate against
        assert report["dropped"] == 1
        assert warmed.sidecar.count() == 0
        warmed.close()

    def test_excess_survivors_stay_spilled(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = self._db(tmp_path)
        cache = TieredDecisionCache(path)
        cache.connect(db)
        for index in range(5):
            _put(cache, f"s{index}", "L", index)
        cache.close()

        warmed = TieredDecisionCache(path, maxsize=2)
        report = warmed.warm(db)
        assert report["readmitted"] == 2 and report["retained_on_disk"] == 3
        assert len(warmed) == 2
        assert warmed.sidecar.count() == 5
        # The newest rows won RAM; the older ones still promote on demand.
        assert warmed.get("s4", "L", 4) is not None
        assert warmed.stats["disk_hits"] == 0  # that was a RAM hit
        assert warmed.get("s0", "L", 0) is not None
        assert warmed.stats["disk_hits"] == 1
        warmed.close()
        db.close()

    def test_archive_pruned_while_down_refuses_and_purges(self, tmp_path):
        path = str(tmp_path / "c.db")
        db = self._db(tmp_path)
        for index in range(3):
            db.record(MovementRecord(index + 1, "x", "Lab", MovementKind.ENTER))
        cache = TieredDecisionCache(path)
        cache.connect(db)
        _put(cache, "Alice", "CAIS", 15)  # stored at position 3
        cache.close()
        # While down: more movements land (none naming CAIS — with an intact
        # log the row would survive), then a checkpoint + retention prune
        # destroys the history needed to PROVE none touched CAIS.  The warm
        # pass must refuse to guess and purge.
        for index in range(3):
            db.record(MovementRecord(index + 10, "x", "Lab", MovementKind.ENTER))
        db.checkpoint(compact=True)
        db.prune_archive(0)
        assert db.touch_marks_since(3) is None  # reconstruction refused

        warmed = TieredDecisionCache(path)
        report = warmed.warm(db)
        assert report["readmitted"] == 0 and report["dropped"] == 1
        warmed.close()
        db.close()


# --------------------------------------------------------------------- #
# Single-flight
# --------------------------------------------------------------------- #
class TestSingleFlight:
    def test_leader_and_follower_roles(self):
        cache = DecisionCache()
        leader = cache.flight("Alice", "CAIS", 15)
        assert leader.leader
        follower = cache.flight("Alice", "CAIS", 15)
        assert not follower.leader
        assert follower._event is leader._event  # joined the same flight
        other = cache.flight("Bob", "CAIS", 15)
        assert other.leader  # distinct key: its own flight
        leader.done()
        relaunched = cache.flight("Alice", "CAIS", 15)
        assert relaunched.leader  # the finished flight left the registry

    def test_follower_is_served_the_leaders_store(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.grant(grant("alice").at("B.R0C0").during(0, 100).entries(5))
        cache = engine.attach_decision_cache()
        # Claim the flight, as a leader mid-evaluation would.
        flight = cache.flight("alice", "B.R0C0", 10)
        assert flight.leader

        results = []
        follower = threading.Thread(
            target=lambda: results.append(engine.decide((10, "alice", "B.R0C0")))
        )
        follower.start()
        assert wait_until(lambda: cache.stats["flights_joined"] == 1)
        # The "leader" finishes: plant a sentinel decision and release the
        # flight.  The sentinel is a denial the pipeline would never produce
        # for this granted subject — identity AND content prove the follower
        # was served the store instead of evaluating.
        planted = _decision(10, "alice", "B.R0C0")
        cache.put("alice", "B.R0C0", 10, planted)
        flight.done()
        follower.join(timeout=5)
        assert not follower.is_alive()
        assert results and results[0] is planted  # served, not re-evaluated

    def test_follower_evaluates_when_leader_stored_nothing(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.grant(grant("alice").at("B.R0C0").during(0, 100).entries(5))
        cache = engine.attach_decision_cache()
        flight = cache.flight("alice", "B.R0C0", 10)

        results = []
        follower = threading.Thread(
            target=lambda: results.append(engine.decide((10, "alice", "B.R0C0")))
        )
        follower.start()
        assert wait_until(lambda: cache.stats["flights_joined"] == 1)
        flight.done()  # leader "failed": no store happened
        follower.join(timeout=5)
        assert not follower.is_alive()
        assert results and results[0].granted  # fell back to evaluating itself
        assert cache.stats["stores"] == 1


# --------------------------------------------------------------------- #
# The staleness property (hypothesis)
# --------------------------------------------------------------------- #
LOCATIONS = ("B.R0C0", "B.R0C1", "B.R1C0")
SUBJECTS = ("alice", "bob")

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("observe"),
            st.sampled_from(SUBJECTS),
            st.sampled_from(LOCATIONS),
            st.sampled_from(["enter", "exit"]),
        ),
        st.tuples(st.just("grant"), st.sampled_from(SUBJECTS), st.sampled_from(LOCATIONS)),
        st.tuples(st.just("revoke"), st.sampled_from(SUBJECTS), st.sampled_from(LOCATIONS)),
        st.tuples(
            st.just("set_capacity"), st.sampled_from(LOCATIONS), st.integers(1, 2)
        ),
        st.tuples(
            st.just("foreign"),
            st.sampled_from(SUBJECTS),
            st.sampled_from(LOCATIONS),
        ),
        st.tuples(st.just("restart")),
        st.tuples(
            st.just("decide"), st.sampled_from(SUBJECTS), st.sampled_from(LOCATIONS)
        ),
    ),
    min_size=4,
    max_size=14,
)


class _CachedDeployment:
    """The system under test: a durable-cached engine over SQLite files,
    killed and rebooted on demand (same movement file, same cache file)."""

    def __init__(self, tmp_path):
        self._db_path = str(tmp_path / "prop-movements.db")
        self._cache_path = str(tmp_path / "prop-cache.db")
        self._hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        self._auth_ids = {}
        self._boot()

    def _boot(self):
        self.engine = (
            Ltam.builder()
            .hierarchy(self._hierarchy)
            .backend("sqlite", self._db_path)
            .build()
        )
        self.cache = TieredDecisionCache(self._cache_path)
        self.engine.attach_decision_cache(self.cache)  # connects invalidation
        self.cache.warm(
            self.engine.movement_db, fingerprint=engine_fingerprint(self.engine)
        )
        # Rebuild the id map from the reloaded database (ids persist).
        self._auth_ids = {
            (a.subject, a.location): a.auth_id
            for a in self.engine.authorization_db.all()
        }

    def restart(self):
        self.cache.close()
        self._boot()

    def foreign_write(self, record):
        # A second handle on the same file writes behind the engine's back;
        # pickup() folds it in and fires the invalidation notices.
        other = SqliteMovementDatabase(self._db_path)
        try:
            other.record(record)
        finally:
            other.close()
        self.engine.movement_db.pickup()

    def close(self):
        self.cache.close()


@settings(max_examples=25, deadline=None)
@given(ops=_ops, data=st.data())
def test_no_persisted_entry_survives_an_invalidating_sequence(tmp_path_factory, ops, data):
    """Differential staleness check: the durable-cached engine must agree
    with an uncached in-memory oracle after EVERY operation, no matter how
    observes, admin mutations, foreign writes and kill/restarts interleave.
    A stale served-from-disk decision is exactly a disagreement."""
    tmp_path = tmp_path_factory.mktemp("prop")
    hierarchy = LocationHierarchy(grid_building("B", 2, 2))
    oracle = Ltam(hierarchy)  # in-memory, uncached, never restarted
    sut = _CachedDeployment(tmp_path)
    clock = 0
    try:
        for op in ops:
            clock += 1
            kind = op[0]
            if kind == "observe":
                _, subject, location, direction = op
                record = MovementRecord(
                    clock,
                    subject,
                    location,
                    MovementKind.ENTER if direction == "enter" else MovementKind.EXIT,
                )
                # record (not observe): identical semantics on both sides
                # without monitor alert side-channels.
                oracle.movement_db.record(record)
                sut.engine.movement_db.record(record)
            elif kind == "grant":
                _, subject, location = op
                if (subject, location) in sut._auth_ids:
                    continue  # one auth per pair keeps revoke deterministic
                built = grant(subject).at(location).during(0, 10_000).entries(3).build()
                stored = sut.engine.grant(built)
                sut._auth_ids[(subject, location)] = stored.auth_id
                oracle.grant(
                    grant(subject).at(location).during(0, 10_000).entries(3)
                )
            elif kind == "revoke":
                _, subject, location = op
                auth_id = sut._auth_ids.pop((subject, location), None)
                if auth_id is None:
                    continue
                sut.engine.revoke(auth_id)
                oracle_id = next(
                    a.auth_id
                    for a in oracle.authorization_db.all()
                    if a.subject == subject and a.location == location
                )
                oracle.revoke(oracle_id)
            elif kind == "set_capacity":
                _, location, limit = op
                sut.engine.set_capacity(location, limit)
                oracle.set_capacity(location, limit)
            elif kind == "foreign":
                _, subject, location = op
                record = MovementRecord(clock, subject, location, MovementKind.ENTER)
                oracle.movement_db.record(record)
                sut.foreign_write(record)
            elif kind == "restart":
                sut.restart()
            elif kind == "decide":
                _, subject, location = op
                got = sut.engine.decide((clock, subject, location))
                want = oracle.decide((clock, subject, location))
                assert (got.granted, got.reason, got.entries_used) == (
                    want.granted,
                    want.reason,
                    want.entries_used,
                ), f"stale decision after {ops!r} at {op!r}"
        # Final sweep: every (subject, location) must agree — this catches a
        # stale persisted row even if the random script never re-decided it.
        clock += 1
        for subject in SUBJECTS:
            for location in LOCATIONS:
                got = sut.engine.decide((clock, subject, location))
                want = oracle.decide((clock, subject, location))
                assert (got.granted, got.reason, got.entries_used) == (
                    want.granted,
                    want.reason,
                    want.entries_used,
                ), f"stale decision in final sweep at {(subject, location)}"
    finally:
        sut.close()


@settings(max_examples=25, deadline=None)
@given(
    bucket=st.integers(min_value=2, max_value=10),
    t1=st.integers(min_value=0, max_value=100),
    t2=st.integers(min_value=0, max_value=100),
)
def test_bucket_boundary_entries_never_resurrect_across_buckets(
    tmp_path_factory, bucket, t1, t2
):
    """An entry cached at one time bucket must never be served — from RAM,
    from disk, or across a warm restart — for a time in another bucket."""
    tmp_path = tmp_path_factory.mktemp("bucket")
    path = str(tmp_path / "c.db")
    db = SqliteMovementDatabase(str(tmp_path / "m.db"))
    cache = TieredDecisionCache(path, bucket=bucket)
    cache.connect(db)
    decision = _decision(t1, "Alice", "CAIS")
    cache.put("Alice", "CAIS", t1, decision, payload=_fragments(decision))
    same_bucket = (t1 // bucket) == (t2 // bucket)
    assert (cache.get("Alice", "CAIS", t2) is not None) == same_bucket
    cache.close()

    warmed = TieredDecisionCache(path, bucket=bucket)
    warmed.warm(db)
    assert (warmed.get("Alice", "CAIS", t2) is not None) == same_bucket
    warmed.close()
    db.close()


class TestLruSpill:
    """v2 recency: trim drops the least-recently-*used* row, not the
    least-recently-written one (the v1 rowid order evicted just-promoted
    hot rows while stale cold ones survived)."""

    def test_a_read_rescues_a_row_from_trim(self, tmp_path):
        store = CacheStore(str(tmp_path / "c.db"))
        for index in range(5):
            store.put(
                _key(f"s{index}", "L", 1),
                position=index, generation=None, json_full="{}", json_elided="{}",
            )
        assert store.get(_key("s0", "L", 1)) is not None  # refreshes recency
        assert store.trim(3) == 2  # drops s1 and s2, the least recently used
        assert store.get(_key("s0", "L", 1)) is not None
        assert store.get(_key("s1", "L", 1)) is None
        assert store.get(_key("s2", "L", 1)) is None
        store.close()

    def test_recency_survives_a_reopen(self, tmp_path):
        path = str(tmp_path / "c.db")
        store = CacheStore(path)
        for index in range(3):
            store.put(
                _key(f"s{index}", "L", 1),
                position=index, generation=None, json_full="{}", json_elided="{}",
            )
        assert store.get(_key("s0", "L", 1)) is not None
        store.close()
        # The access clock reseeds past every persisted stamp: new activity
        # is newer than everything that came before the restart.
        store = CacheStore(path)
        store.put(
            _key("s3", "L", 1),
            position=3, generation=None, json_full="{}", json_elided="{}",
        )
        assert store.trim(2) == 2  # drops s1 and s2; keeps read-s0 and new-s3
        assert store.get(_key("s0", "L", 1)) is not None
        assert store.get(_key("s3", "L", 1)) is not None
        store.close()

    def test_just_promoted_row_survives_a_trim(self, tmp_path):
        cache = TieredDecisionCache(str(tmp_path / "c.db"), maxsize=2)
        _put(cache, "a", "L", 1)
        _put(cache, "b", "L", 2)
        _put(cache, "c", "L", 3)  # "a" demoted to disk-only
        assert cache.get("a", "L", 1) is not None  # disk hit -> promotion
        # "a" owns the oldest rowid in the file: the v1 insertion-order trim
        # would evict exactly the row that was just proven hot.
        assert cache.sidecar.trim(2) == 1
        assert cache.sidecar.get(_key("a", "L", 1)) is not None
        assert cache.sidecar.get(_key("c", "L", 3)) is None
        cache.close()

    def test_v1_sidecar_is_migrated_then_purged(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "c.db")
        store = CacheStore(path)
        store.put(
            _key("A", "L", 1), position=0, generation=None, json_full="{}", json_elided="{}"
        )
        store.close()
        # Forge a v1 file: no last_access column, format_version 1.
        raw = sqlite3.connect(path)
        raw.execute("UPDATE cache_meta SET value = '1' WHERE key = 'format_version'")
        raw.execute("DROP INDEX IF EXISTS idx_cache_access")
        raw.execute("ALTER TABLE cache_entries DROP COLUMN last_access")
        raw.commit()
        raw.close()
        store = CacheStore(path)  # must not crash on the missing column
        assert store.count() == 0  # a foreign format never resurrects entries
        assert store.get_meta("format_version") == "2"
        store.put(
            _key("B", "L", 2), position=1, generation=None, json_full="{}", json_elided="{}"
        )
        assert store.get(_key("B", "L", 2)) is not None
        assert store.trim(0) == 1  # the migrated schema trims cleanly
        store.close()
