"""DecisionCache behavior: keying, LRU bounds, event-wise invalidation."""

from __future__ import annotations

import pytest

from repro.core.requests import AccessRequest, DenialReason
from repro.api.decision import Decision
from repro.service.cache import DecisionCache
from repro.service.errors import ServiceError
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
)


def _decision(time=15, subject="Alice", location="CAIS"):
    return Decision.denied_by(
        AccessRequest(time, subject, location), DenialReason.NO_AUTHORIZATION
    )


def test_get_put_and_stats():
    cache = DecisionCache()
    assert cache.get("Alice", "CAIS", 15) is None
    decision = _decision()
    cache.put("Alice", "CAIS", 15, decision, payload={"granted": False})
    entry = cache.get("Alice", "CAIS", 15)
    assert entry.decision is decision and entry.payload == {"granted": False}
    assert cache.get("Alice", "CAIS", 16) is None  # bucket=1: exact time keys
    assert cache.get("Bob", "CAIS", 15) is None
    stats = cache.stats
    assert stats["hits"] == 1 and stats["misses"] == 3 and stats["size"] == 1


def test_bucket_groups_times():
    cache = DecisionCache(bucket=10)
    cache.put("Alice", "CAIS", 15, _decision())
    assert cache.get("Alice", "CAIS", 11) is not None  # same bucket
    assert cache.get("Alice", "CAIS", 21) is None  # next bucket


def test_constructor_validation():
    with pytest.raises(ServiceError):
        DecisionCache(bucket=0)
    with pytest.raises(ServiceError):
        DecisionCache(maxsize=0)


def test_lru_eviction_order():
    cache = DecisionCache(maxsize=2)
    cache.put("a", "L", 1, _decision(1, "a", "L"))
    cache.put("b", "L", 2, _decision(2, "b", "L"))
    assert cache.get("a", "L", 1) is not None  # refresh "a": now "b" is LRU
    cache.put("c", "L", 3, _decision(3, "c", "L"))
    assert cache.get("b", "L", 2) is None
    assert cache.get("a", "L", 1) is not None
    assert cache.get("c", "L", 3) is not None
    assert cache.stats["evicted"] == 1 and len(cache) == 2


def test_invalidate_location_evicts_only_that_location():
    cache = DecisionCache()
    cache.put("Alice", "CAIS", 15, _decision())
    cache.put("Alice", "Lab", 15, _decision(15, "Alice", "Lab"))
    assert cache.invalidate_location("CAIS") == 1
    assert cache.get("Alice", "CAIS", 15) is None
    assert cache.get("Alice", "Lab", 15) is not None


def test_invalidate_pair_is_subject_scoped():
    cache = DecisionCache()
    cache.put("Alice", "CAIS", 15, _decision())
    cache.put("Bob", "CAIS", 15, _decision(15, "Bob", "CAIS"))
    assert cache.invalidate_pair("Alice", "CAIS") == 1
    assert cache.get("Alice", "CAIS", 15) is None
    assert cache.get("Bob", "CAIS", 15) is not None


def test_clear():
    cache = DecisionCache()
    cache.put("Alice", "CAIS", 15, _decision())
    cache.put("Bob", "Lab", 3, _decision(3, "Bob", "Lab"))
    assert cache.clear() == 2 and len(cache) == 0


def test_pdp_hooks_lookup_store():
    cache = DecisionCache()
    request = AccessRequest(15, "Alice", "CAIS")
    assert cache.lookup(request) is None
    decision = _decision()
    cache.store(request, decision)
    assert cache.lookup(request) is decision
    # A different request with the same key is served the cached decision.
    assert cache.lookup(AccessRequest(15, "Alice", "CAIS")) is decision


def test_connect_evicts_on_movements():
    cache = DecisionCache()
    db = InMemoryMovementDatabase()
    unsubscribe = cache.connect(db)
    cache.put("Alice", "CAIS", 15, _decision())
    cache.put("Bob", "Lab", 15, _decision(15, "Bob", "Lab"))
    db.record_entry(16, "Alice", "CAIS")
    assert cache.get("Alice", "CAIS", 15) is None  # CAIS evicted
    assert cache.get("Bob", "Lab", 15) is not None  # Lab untouched
    unsubscribe()
    cache.put("Bob", "Lab", 15, _decision(15, "Bob", "Lab"))
    db.record_entry(17, "Carol", "Lab")
    assert cache.get("Bob", "Lab", 15) is not None  # unsubscribed: no eviction


def test_enter_while_elsewhere_evicts_both_locations():
    """An ENTER with the subject tracked elsewhere changes two occupancies."""
    cache = DecisionCache()
    db = InMemoryMovementDatabase()
    cache.connect(db)
    db.record_entry(1, "Alice", "Lab")
    cache.put("Bob", "Lab", 5, _decision(5, "Bob", "Lab"))
    cache.put("Bob", "CAIS", 5, _decision(5, "Bob", "CAIS"))
    cache.put("Bob", "Gym", 5, _decision(5, "Bob", "Gym"))
    # Alice jumps Lab -> CAIS without an exit record: occupancy of both changes.
    db.record_entry(6, "Alice", "CAIS")
    assert cache.get("Bob", "Lab", 5) is None
    assert cache.get("Bob", "CAIS", 5) is None
    assert cache.get("Bob", "Gym", 5) is not None


def test_batch_record_many_evicts_touched_locations_only():
    cache = DecisionCache()
    db = InMemoryMovementDatabase()
    cache.connect(db)
    cache.put("x", "A", 1, _decision(1, "x", "A"))
    cache.put("x", "B", 1, _decision(1, "x", "B"))
    cache.put("x", "C", 1, _decision(1, "x", "C"))
    db.record_many(
        [
            MovementRecord(2, "Alice", "A", MovementKind.ENTER),
            MovementRecord(3, "Alice", "A", MovementKind.EXIT),
            MovementRecord(4, "Alice", "B", MovementKind.ENTER),
        ]
    )
    assert cache.get("x", "A", 1) is None
    assert cache.get("x", "B", 1) is None
    assert cache.get("x", "C", 1) is not None


class TestGenerationTokens:
    """A store racing an invalidation must be dropped, not resurrected."""

    def test_store_dropped_when_location_invalidated_after_token(self):
        cache = DecisionCache()
        token = cache.generation("CAIS")
        # The mutation lands (and evicts) between evaluation start and store.
        cache.invalidate_location("CAIS")
        assert not cache.put("Alice", "CAIS", 15, _decision(), generation=token)
        assert cache.get("Alice", "CAIS", 15) is None
        assert cache.stats["stale_stores"] == 1

    def test_store_accepted_when_generation_unmoved(self):
        cache = DecisionCache()
        token = cache.generation("CAIS")
        assert cache.put("Alice", "CAIS", 15, _decision(), generation=token)
        assert cache.get("Alice", "CAIS", 15) is not None

    def test_movement_notice_bumps_generation_even_with_no_cached_keys(self):
        cache = DecisionCache()
        db = InMemoryMovementDatabase()
        cache.connect(db)
        token = cache.generation("CAIS")
        db.record_entry(1, "Alice", "CAIS")  # nothing cached for CAIS yet
        assert not cache.put("Bob", "CAIS", 15, _decision(15, "Bob", "CAIS"), generation=token)

    def test_clear_moves_every_generation(self):
        cache = DecisionCache()
        token = cache.generation("Lab")
        cache.clear()
        assert not cache.put("Alice", "Lab", 1, _decision(1, "Alice", "Lab"), generation=token)

    def test_pair_invalidation_bumps_the_location(self):
        cache = DecisionCache()
        token = cache.generation("CAIS")
        cache.invalidate_pair("Alice", "CAIS")
        assert not cache.put("Bob", "CAIS", 1, _decision(1, "Bob", "CAIS"), generation=token)

    def test_pdp_decide_store_respects_a_mid_evaluation_mutation(self):
        """End-to-end: mutate the store mid-pipeline; the decision must not be cached."""
        from repro.api import Ltam, grant
        from repro.api.stages import default_pipeline
        from repro.locations.multilevel import LocationHierarchy
        from repro.simulation.buildings import grid_building

        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.grant(grant("alice").at("B.R0C0").during(0, 100).entries(5))
        cache = engine.attach_decision_cache()

        class MutateMidPipeline:
            """A stage that simulates a concurrent observe during evaluation."""

            name = "mutate-mid-pipeline"
            fired = False

            def evaluate(self, context):
                from repro.api.decision import StageOutcome, StageResult

                if not MutateMidPipeline.fired:
                    MutateMidPipeline.fired = True
                    engine.movement_db.record_entry(1, "alice", "B.R0C0")
                return StageResult(self.name, StageOutcome.CONTINUE)

        engine.pdp._stages = (MutateMidPipeline(),) + tuple(default_pipeline())
        decision = engine.decide((10, "alice", "B.R0C0"))
        assert decision.granted
        # The mid-evaluation mutation invalidated 'B.R0C0'; the stale
        # decision (computed partly against pre-mutation state) must NOT
        # have been cached.
        assert cache.get("alice", "B.R0C0", 10) is None
        assert cache.stats["stale_stores"] >= 1


class TestEngineCacheLifecycle:
    def test_detach_decision_cache_unsubscribes(self):
        from repro.api import Ltam
        from repro.locations.multilevel import LocationHierarchy
        from repro.simulation.buildings import grid_building

        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        first = engine.attach_decision_cache()
        assert engine.detach_decision_cache() is first
        first.put("x", "B.R0C0", 1, _decision(1, "x", "B.R0C0"))
        engine.movement_db.record_entry(2, "alice", "B.R0C0")
        # Detached: the old cache no longer hears movement notifications.
        assert first.get("x", "B.R0C0", 1) is not None
        assert engine.pdp.cache is None

    def test_reattach_replaces_the_subscription(self):
        from repro.api import Ltam
        from repro.locations.multilevel import LocationHierarchy
        from repro.simulation.buildings import grid_building

        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        first = engine.attach_decision_cache()
        second = engine.attach_decision_cache()
        assert engine.pdp.cache is second
        first.put("x", "B.R0C0", 1, _decision(1, "x", "B.R0C0"))
        second.put("x", "B.R0C0", 1, _decision(1, "x", "B.R0C0"))
        engine.movement_db.record_entry(2, "alice", "B.R0C0")
        assert first.get("x", "B.R0C0", 1) is not None  # unsubscribed
        assert second.get("x", "B.R0C0", 1) is None  # live subscription
