"""The binary wire codec: round trips, fuzzing, interning, negotiation.

The invariants the fleet depends on:

* anything the NDJSON protocol can say, the binary codec says back
  **identically** (same Python object tree after decode);
* a truncated or garbage frame raises a typed
  :class:`~repro.service.errors.ProtocolError` — it never hangs a reader,
  never kills the process with an unexpected exception type;
* a client talking to a pre-negotiation (or ``--wire json``) server falls
  back to NDJSON transparently;
* a mid-frame disconnect surfaces as a transport error and drops the
  connection from a :class:`~repro.service.client.ConnectionPool`.
"""

from __future__ import annotations

import socket
import threading

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.requests import DenialReason
from repro.engine.alerts import AlertKind
from repro.errors import LTAMError, QuerySyntaxError, StorageError
from repro.service import wire
from repro.service.client import ConnectionPool, ServiceClient
from repro.service.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.protocol import encode_frame, error_from_dict, error_to_dict


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
json_scalars = (
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=300)
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=64), children, max_size=4),
    max_leaves=25,
)


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @settings(max_examples=200)
    @given(json_values)
    def test_stateless_round_trip(self, value):
        assert wire.Decoder().decode(wire.encode_value(value)) == value

    @settings(max_examples=100)
    @given(st.lists(json_values, max_size=6))
    def test_interned_stream_round_trip(self, values):
        """One encoder/decoder pair per connection, frames in order."""
        encoder, decoder = wire.Encoder(), wire.Decoder()
        for value in values:
            assert decoder.decode(encoder.encode(value)) == value

    @settings(max_examples=100)
    @given(st.lists(json_values, min_size=2, max_size=4))
    def test_repeating_frames_round_trip(self, values):
        """Repetition exercises every intern state: candidate, def, ref."""
        encoder, decoder = wire.Encoder(), wire.Decoder()
        for _ in range(3):
            for value in values:
                assert decoder.decode(encoder.encode(value)) == value

    def test_every_denial_reason_survives(self):
        for reason in DenialReason:
            payload = {"granted": False, "reason": reason.value, "entries_used": 0}
            assert wire.Decoder().decode(wire.encode_value(payload)) == payload

    def test_every_alert_kind_survives(self):
        for kind in AlertKind:
            payload = {"kind": kind.value, "subject": "Alice", "location": "CAIS"}
            assert wire.Decoder().decode(wire.encode_value(payload)) == payload

    @pytest.mark.parametrize(
        "error",
        [
            ProtocolError("bad frame"),
            ServiceError("wrong knob"),
            ServiceConnectionError("gone"),
            RemoteServiceError("far away"),
            LTAMError("base"),
            QuerySyntaxError("WHO IS WHAT"),
            StorageError("disk full — of regrets"),
        ],
    )
    def test_typed_errors_survive(self, error):
        envelope = wire.Decoder().decode(wire.encode_value(error_to_dict(error)))
        back = error_from_dict(envelope)
        assert type(back) is type(error)
        assert str(back) == str(error)

    def test_unicode_and_oversized_ids(self):
        values = [
            "subjëct-ünïcødé-😀",
            "x" * wire.INTERN_MAX_BYTES,
            "y" * (wire.INTERN_MAX_BYTES + 1),  # too long to intern
            "z" * 70_000,  # STR32 territory
            "",  # empty strings never intern
        ]
        encoder, decoder = wire.Encoder(), wire.Decoder()
        for _ in range(3):
            frame = encoder.encode(values)
            assert decoder.decode(frame) == values

    def test_int_width_boundaries(self):
        boundaries = [
            0, 1, 127, 128, -1, -128, -129,
            2**31 - 1, -(2**31), 2**31, -(2**31) - 1,
            2**63 - 1, -(2**63), 2**63, -(2**63) - 1,
            10**40, -(10**40),
        ]
        assert wire.Decoder().decode(wire.encode_value(boundaries)) == boundaries


# --------------------------------------------------------------------- #
# Hostile input
# --------------------------------------------------------------------- #
class TestHostileFrames:
    @settings(max_examples=300)
    @given(st.binary(min_size=0, max_size=300))
    def test_garbage_never_escapes_typed_errors(self, blob):
        """Random bytes either decode or raise ProtocolError — nothing else."""
        try:
            wire.Decoder().decode(blob)
        except ProtocolError:
            pass

    @settings(max_examples=150)
    @given(json_values, st.integers(min_value=0, max_value=10_000))
    def test_truncations_raise_protocol_error(self, value, cut):
        """Every strict prefix of a valid body is a typed error."""
        body = wire.encode_value(value)
        prefix = body[: min(cut, len(body) - 1)] if body else b""
        with pytest.raises(ProtocolError):
            wire.Decoder().decode(prefix)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            wire.Decoder().decode(wire.encode_value({"a": 1}) + b"\x00")

    def test_unknown_intern_reference_rejected(self):
        import struct

        frame = struct.pack(">BH", 0xCC, 7)  # REF to an id never defined
        with pytest.raises(ProtocolError, match="unknown interned"):
            wire.Decoder().decode(frame)

    def test_lying_container_headers_rejected(self):
        import struct

        # A map claiming 2**32 - 1 entries in a 5-byte frame must fail fast
        # (header sanity), not iterate toward a hang.
        for tag in (0xCD, 0xCE):
            with pytest.raises(ProtocolError):
                wire.Decoder().decode(struct.pack(">BI", tag, 0xFFFFFFFF))

    def test_deep_nesting_is_a_typed_error(self):
        value = None
        for _ in range(20_000):
            value = [value]
        with pytest.raises(ProtocolError, match="nests too deeply"):
            wire.encode_value(value)

    def test_frame_length_guards(self):
        import struct

        with pytest.raises(ProtocolError, match="zero-length"):
            wire.frame_length(struct.pack(">I", 0), 1024)
        with pytest.raises(ProtocolError, match="exceeds"):
            wire.frame_length(struct.pack(">I", 4096), 1024)
        assert wire.frame_length(struct.pack(">I", 17), 1024) == 17

    def test_unencodable_values_are_typed_errors(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            wire.encode_value({"key": object()})
        with pytest.raises(ProtocolError, match="keys must be strings"):
            wire.encode_value({1: "value"})


# --------------------------------------------------------------------- #
# Interning mechanics
# --------------------------------------------------------------------- #
class TestInterning:
    def test_second_occurrence_promotes_third_references(self):
        encoder = wire.Encoder()
        first = encoder.encode("user-42")  # plain str, becomes a candidate
        second = encoder.encode("user-42")  # INTERN_DEF: carries the text
        third = encoder.encode("user-42")  # 3-byte INTERN_REF
        assert first[0] == 0xC9 and second[0] == 0xCB and third[0] == 0xCC
        assert len(third) == 3
        decoder = wire.Decoder()
        assert [decoder.decode(f) for f in (first, second, third)] == ["user-42"] * 3

    def test_interning_shrinks_repeated_payloads(self):
        request = {"time": 100, "subject": "user-000017", "location": "B.R0C2"}
        encoder = wire.Encoder()
        sizes = [len(encoder.encode(request)) for _ in range(4)]
        assert sizes[3] < sizes[0] / 2  # keys + values all collapsed to refs

    def test_encode_value_never_interns(self):
        fragment = wire.encode_value(["dup", "dup", "dup"])
        # A fresh decoder with no stream history must read it (Raw splicing
        # into any connection depends on this).
        assert wire.Decoder().decode(fragment) == ["dup", "dup", "dup"]
        assert 0xCB not in fragment and 0xCC not in fragment

    def test_raw_fragments_splice_into_interned_streams(self):
        fragment = wire.Raw(wire.encode_value({"granted": True}))
        encoder, decoder = wire.Encoder(), wire.Decoder()
        for _ in range(3):
            frame = encoder.encode({"id": 1, "result": fragment})
            assert decoder.decode(frame) == {"id": 1, "result": {"granted": True}}

    def test_long_strings_never_intern(self):
        text = "L" * (wire.INTERN_MAX_BYTES + 1)
        encoder = wire.Encoder()
        frames = [encoder.encode(text) for _ in range(3)]
        assert all(frame[0] == 0xCA for frame in frames)  # plain STR32 each time


# --------------------------------------------------------------------- #
# Negotiation
# --------------------------------------------------------------------- #
class TestNegotiation:
    def test_binary_server_accepts_binary_offer(self):
        chosen, reply = wire.negotiate_hello(
            {"op": "hello", "wire": ["binary"]}, binary_enabled=True
        )
        assert chosen == "binary"
        assert reply == {
            "wire": "binary",
            "formats": ["json", "binary"],
            "version": 1,
            "telemetry": ["tctx"],
        }

    def test_json_server_declines_politely(self):
        chosen, reply = wire.negotiate_hello(
            {"op": "hello", "wire": ["binary"]}, binary_enabled=False
        )
        assert chosen == "json" and reply["wire"] == "json"
        assert reply["formats"] == ["json"]

    def test_json_only_offer_stays_json(self):
        chosen, _ = wire.negotiate_hello({"op": "hello"}, binary_enabled=True)
        assert chosen == "json"

    def test_malformed_offer_is_a_typed_error(self):
        with pytest.raises(ProtocolError):
            wire.negotiate_hello({"op": "hello", "wire": 42}, binary_enabled=True)
        with pytest.raises(ProtocolError):
            wire.negotiate_hello({"op": "hello", "wire": [1]}, binary_enabled=True)


# --------------------------------------------------------------------- #
# Transport robustness (scripted byte-level servers)
# --------------------------------------------------------------------- #
class ScriptedServer:
    """A fake server running one byte-level script per connection."""

    def __init__(self, script):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.address = self._sock.getsockname()
        self._script = script
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            try:
                self._script(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _accept_hello(conn) -> None:
    """Read the NDJSON hello and upgrade the connection to binary."""
    reader = conn.makefile("rb")
    line = reader.readline()
    assert b'"hello"' in line
    conn.sendall(
        encode_frame(
            {
                "id": 1,
                "ok": True,
                "result": {"wire": "binary", "formats": ["json", "binary"], "version": 1},
            }
        )
    )
    return reader


class TestMidFrameDisconnect:
    def test_binary_body_truncation_is_a_transport_error(self):
        def script(conn):
            reader = _accept_hello(conn)
            header = reader.read(4)
            reader.read(wire.frame_length(header, 1 << 24))  # drain the request
            conn.sendall(wire.pack_frame(b"x" * 64)[:20])  # 4+16 of 68 bytes

        with ScriptedServer(script) as server:
            client = ServiceClient(*server.address, wire="binary")
            assert client.wire == "binary"
            with pytest.raises(ServiceConnectionError, match="mid-frame"):
                client.call("health")
            assert client.closed

    def test_binary_header_truncation_is_a_transport_error(self):
        def script(conn):
            reader = _accept_hello(conn)
            header = reader.read(4)
            reader.read(wire.frame_length(header, 1 << 24))
            conn.sendall(b"\x00\x00")  # half a length prefix

        with ScriptedServer(script) as server:
            client = ServiceClient(*server.address, wire="binary")
            with pytest.raises(ServiceConnectionError, match="mid-frame"):
                client.call("health")
            assert client.closed

    def test_json_line_truncation_is_a_transport_error(self):
        """The NDJSON reader must not tolerate EOF mid-line either."""

        def script(conn):
            conn.makefile("rb").readline()
            conn.sendall(b'{"id": 1, "ok": true, "result": {"status": "ok"')  # no \n

        with ScriptedServer(script) as server:
            client = ServiceClient(*server.address)
            with pytest.raises(ServiceConnectionError, match="mid-frame"):
                client.call("health")
            assert client.closed

    def test_pool_drops_the_connection_that_died_mid_frame(self):
        calls = []

        def script(conn):
            calls.append(conn)
            reader = _accept_hello(conn)
            header = reader.read(4)
            reader.read(wire.frame_length(header, 1 << 24))
            conn.sendall(wire.pack_frame(b"y" * 64)[:10])

        with ScriptedServer(script) as server:
            pool = ConnectionPool(*server.address, size=2, wire="binary")
            with pytest.raises(ServiceConnectionError):
                with pool.lease() as client:
                    client.call("health")
            # The broken client must not be re-leased: the pool is empty and
            # the next lease dials a brand-new connection.
            assert pool._idle == []
            with pytest.raises(ServiceConnectionError):
                with pool.lease() as client:
                    client.call("health")
            assert len(calls) == 2
            pool.close()

    def test_fallback_against_a_pre_negotiation_server(self):
        """An 'old' server rejects hello with a typed error; the client
        shrugs and speaks NDJSON."""

        def script(conn):
            reader = conn.makefile("rb")
            reader.readline()  # the hello
            conn.sendall(
                encode_frame(
                    {
                        "id": 1,
                        "ok": False,
                        "error": {"type": "ProtocolError", "message": "unknown op 'hello'"},
                    }
                )
            )
            reader.readline()  # the health call, answered as NDJSON
            conn.sendall(encode_frame({"id": 2, "ok": True, "result": {"status": "ok"}}))

        with ScriptedServer(script) as server:
            client = ServiceClient(*server.address, wire="binary")
            assert client.wire == "json"
            assert client.call("health") == {"status": "ok"}
            client.close()
