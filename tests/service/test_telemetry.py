"""The observability layer: metrics registry, span propagation, slow sampling.

Three families of tests:

* registry units — counters/gauges/histograms, quantile estimation, the
  Prometheus text exposition and the HTTP exporter;
* trace propagation — ``tctx`` in, spans echoed and grafted back, one
  connected span tree across a router scatter-gather (both wire formats),
  and the slow-request sampler's dump;
* the engine-fingerprint extension — derivation rules now flip the
  fingerprint (so rule edits invalidate warm restarts) while instance
  trivia (rule ids, descriptions) do not.
"""

from __future__ import annotations

import json
import logging
import urllib.request

import pytest

from repro.core.operators.temporal import Intersection
from repro.core.rules import AuthorizationRule, OperatorTuple
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.service import (
    DecisionCache,
    FabricRouter,
    LtamServer,
    PartitionMap,
    ServiceClient,
    engine_fingerprint,
)
from repro.service import telemetry
from repro.service.telemetry import (
    MetricsExporter,
    MetricsRegistry,
    Trace,
)

SUBJECT_COUNT = 24


def _hierarchy() -> LocationHierarchy:
    return LocationHierarchy(grid_building("B", 3, 3))


def _seeded_engine(hierarchy=None) -> Ltam:
    hierarchy = hierarchy if hierarchy is not None else _hierarchy()
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=7)
    subjects = generate_subjects(SUBJECT_COUNT)
    engine = Ltam.builder().hierarchy(hierarchy).build()
    engine.grant_all(generator.authorizations(subjects))
    return engine


def _requests(hierarchy, count=40, seed=13):
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=seed)
    return generator.requests(generate_subjects(SUBJECT_COUNT), count)


# --------------------------------------------------------------------- #
# Registry units
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits_total") is counter  # idempotent handle
        assert registry.counter_value("hits_total") == 5
        assert registry.counter_value("absent_total") == 0

        gauge = registry.gauge("depth")
        gauge.set(12)
        assert gauge.value == 12
        calls = []
        registry.gauge("derived", fn=lambda: calls.append(1) or 42.0)
        collected = registry.collect()
        derived = [g for g in collected["gauges"] if g["name"] == "derived"]
        assert derived[0]["value"] == 42.0
        assert calls  # callback gauges are read at collect time

    def test_gauge_callback_errors_read_as_zero(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("backend gone")

        registry.gauge("flaky", fn=broken)
        collected = registry.collect()
        assert collected["gauges"][0]["value"] == 0.0

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", op="decide").inc(3)
        registry.counter("ops_total", op="observe").inc(1)
        assert registry.counter_value("ops_total", op="decide") == 3
        assert registry.counter_value("ops_total", op="observe") == 1

    def test_histogram_counts_and_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for _ in range(98):
            histogram.observe(0.005)  # lands in the 0.01 bucket
        histogram.observe(0.05)
        histogram.observe(0.5)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["sum"] == pytest.approx(98 * 0.005 + 0.05 + 0.5)
        # p50 interpolates inside the (0.001, 0.01] bucket; p99 must reach
        # the (0.1, 1.0] bucket that holds the single slowest observation.
        assert 0.001 <= snapshot["p50"] <= 0.01
        assert 0.1 <= snapshot["p99"] <= 1.0
        buckets = dict(
            (str(bound), count) for bound, count in snapshot["buckets"]
        )
        assert buckets["0.01"] == 98
        assert buckets["+Inf"] == 0

    def test_histogram_overflow_lands_in_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.1,))
        histogram.observe(5.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"][-1] == ["+Inf", 1]
        # +Inf-bucket quantiles report the last finite boundary, not inf.
        assert snapshot["p99"] == pytest.approx(0.1)

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", op="decide").inc(2)
        registry.gauge("repro_depth").set(3)
        histogram = registry.histogram("repro_latency_seconds", buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{op="decide"} 2' in text
        assert "repro_depth 3" in text
        # Bucket counts are cumulative, Prometheus le semantics.
        assert 'repro_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_latency_seconds_count 2" in text

    def test_exporter_serves_both_formats(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total").inc(7)
        exporter = MetricsExporter(registry, port=0)
        port = exporter.start()
        try:
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") as response:
                text = response.read().decode("utf-8")
            assert "repro_ops_total 7" in text
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics.json"
            ) as response:
                document = json.loads(response.read().decode("utf-8"))
            assert document["counters"][0]["value"] == 7
        finally:
            exporter.stop()


# --------------------------------------------------------------------- #
# Trace plumbing
# --------------------------------------------------------------------- #
class TestTrace:
    def test_tctx_roundtrip(self):
        trace = Trace()
        restored = Trace.from_tctx(trace.tctx("abcd1234"))
        assert restored is not None
        assert restored.trace_id == trace.trace_id
        assert restored.root_parent == "abcd1234"

    @pytest.mark.parametrize(
        "bad", [None, "x", 7, [], ["only-one"], [1, 2], ["id", 3], ["a", "b", "c"]]
    )
    def test_malformed_tctx_is_none(self, bad):
        assert Trace.from_tctx(bad) is None

    def test_spans_nest_and_parent_link(self):
        trace = Trace()
        with telemetry.activated(trace):
            with telemetry.trace_span("outer") as outer:
                with telemetry.trace_span("inner", detail=1):
                    telemetry.trace_event("blip")
        spans = {item[2]: item for item in trace.spans_to_wire()}
        assert set(spans) == {"outer", "inner", "blip"}
        assert spans["outer"][1] is None
        assert spans["inner"][1] == outer.span_id
        assert spans["blip"][1] == spans["inner"][0]

    def test_no_active_trace_is_inert(self):
        assert telemetry.active_trace() is None
        with telemetry.trace_span("nothing") as span:
            span.annotate(ignored=True)
        telemetry.trace_event("nothing-either")  # must not raise


# --------------------------------------------------------------------- #
# Over the wire: metrics op, span echo, slow sampling
# --------------------------------------------------------------------- #
class TestServerTelemetry:
    def test_metrics_op_reports_decides(self):
        hierarchy = _hierarchy()
        server = LtamServer(_seeded_engine(hierarchy), cache=DecisionCache())
        with server:
            with ServiceClient(*server.address) as client:
                for request in _requests(hierarchy, count=10):
                    client.decide(request)
                document = client.call("metrics")
        assert document["identity"]["role"] == "server"
        decides = [
            item
            for item in document["counters"]
            if item["name"] == "repro_ops_total" and item["labels"].get("op") == "decide"
        ]
        assert decides and decides[0]["value"] == 10
        latency = [
            item
            for item in document["histograms"]
            if item["name"] == "repro_op_latency_seconds"
            and item["labels"].get("op") == "decide"
        ]
        assert latency and latency[0]["count"] == 10
        cache_size = [
            item for item in document["gauges"] if item["name"] == "repro_cache_size"
        ]
        assert cache_size and cache_size[0]["value"] >= 1

    @pytest.mark.parametrize("wire", ["json", "binary"])
    def test_spans_echoed_and_grafted(self, wire):
        hierarchy = _hierarchy()
        server = LtamServer(_seeded_engine(hierarchy), cache=DecisionCache())
        with server:
            with ServiceClient(*server.address, wire=wire) as client:
                trace = Trace()
                with telemetry.activated(trace):
                    client.decide(_requests(hierarchy, count=1)[0])
        names = [item[2] for item in trace.spans_to_wire()]
        assert "server.op" in names  # grafted from the response envelope
        assert "pipeline.evaluate" in names  # the cold decide ran the pipeline
        spans = {item[2]: item for item in trace.spans_to_wire()}
        assert spans["pipeline.evaluate"][1] == spans["server.op"][0]
        assert spans["server.op"][5]["cache"] == "miss"

    def test_no_tctx_means_no_spans_key(self):
        """The inertness contract at the frame level: a request without tctx
        gets a byte-shape-identical response even when the server samples
        every request (slow_request_ms=0)."""
        hierarchy = _hierarchy()
        server = LtamServer(
            _seeded_engine(hierarchy), cache=DecisionCache(), slow_request_ms=0.0
        )
        with server:
            with ServiceClient(*server.address) as client:
                message_id = next(client._ids)
                frame = (
                    json.dumps({"op": "health", "id": message_id}) + "\n"
                ).encode("utf-8")
                client._sock.sendall(frame)
                line = client._reader.readline()
        response = json.loads(line)
        assert "spans" not in response

    def test_slow_sampler_dumps_span_tree(self):
        hierarchy = _hierarchy()
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        logger = logging.getLogger("repro.service.requests")
        handler = Capture()
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            server = LtamServer(
                _seeded_engine(hierarchy), cache=DecisionCache(), slow_request_ms=0.0
            )
            with server:
                with ServiceClient(*server.address) as client:
                    client.decide(_requests(hierarchy, count=1)[0])
        finally:
            logger.removeHandler(handler)
        slow = [json.loads(line) for line in records if '"slow"' in line]
        assert slow, f"no slow-request line in {records!r}"
        entry = slow[0]
        assert entry["op"] == "decide"
        assert entry["threshold_ms"] == 0.0
        names = [item[2] for item in entry["spans"]]
        assert "server.op" in names and "pipeline.evaluate" in names
        assert server.metrics.counter_value("repro_slow_requests_total") >= 1


# --------------------------------------------------------------------- #
# The fabric: one connected tree across a scatter-gather
# --------------------------------------------------------------------- #
class TestFabricTracePropagation:
    @pytest.mark.parametrize("wire", ["json", "binary"])
    def test_trace_connects_router_and_both_partitions(self, wire):
        hierarchy = _hierarchy()
        servers = []
        addresses = {}
        for partition in ("east", "west"):
            engine = _seeded_engine(hierarchy)
            server = LtamServer(engine, cache=DecisionCache(), partition=partition)
            server.start()
            servers.append(server)
            addresses[partition] = "%s:%d" % server.address
        partition_map = PartitionMap(addresses)
        router = FabricRouter(partition_map, wire=wire)
        try:
            # A batch whose subjects span both partitions forces a true
            # scatter-gather (not a single-owner fast path).
            subjects = generate_subjects(SUBJECT_COUNT)
            east = [s for s in subjects if partition_map.owner(s) == "east"]
            west = [s for s in subjects if partition_map.owner(s) == "west"]
            assert east and west, "workload subjects all hash to one partition"
            location = sorted(hierarchy.primitive_names)[0]
            requests = [
                {"time": 10, "subject": east[0], "location": location},
                {"time": 10, "subject": west[0], "location": location},
            ]
            trace = Trace()
            with telemetry.activated(trace):
                decisions = router.decide_many_raw(requests, trace=False)
            assert len(decisions) == 2
        finally:
            router.close()
            for server in servers:
                server.stop()

        wire_spans = trace.spans_to_wire()
        by_id = {item[0]: item for item in wire_spans}
        by_name = {}
        for item in wire_spans:
            by_name.setdefault(item[2], []).append(item)

        fan_outs = by_name.get("router.fan_out", [])
        calls = by_name.get("router.call", [])
        # The binary wire's hello handshake is traced too when it happens
        # inside the traced region — only the decide dispatches matter here.
        server_ops = [
            item
            for item in by_name.get("server.op", [])
            if item[5].get("op") == "decide_many"
        ]
        assert len(fan_outs) == 1
        assert len(calls) == 2, f"expected one router.call per partition: {by_name}"
        assert len(server_ops) == 2, f"expected one server.op per partition: {by_name}"

        # Parent linkage: server.op -> router.call -> router.fan_out -> root.
        fan_out_id = fan_outs[0][0]
        assert fan_outs[0][1] is None
        call_ids = set()
        for call in calls:
            assert call[1] == fan_out_id
            call_ids.add(call[0])
        seen_partitions = set()
        for op_span in server_ops:
            assert op_span[1] in call_ids, (
                f"server.op parent {op_span[1]!r} is not a router.call span"
            )
            seen_partitions.add(op_span[5]["partition"])
        assert seen_partitions == {"east", "west"}
        # Every span's parent chain resolves inside this one trace.
        for item in wire_spans:
            parent = item[1]
            assert parent is None or parent in by_id or parent == fan_outs[0][1]


# --------------------------------------------------------------------- #
# Satellite: the fingerprint covers derivation rules
# --------------------------------------------------------------------- #
class TestFingerprintRules:
    def _engine_with_rule(self, operators=None, rule_id=None, description=""):
        # The base id need not resolve — rules over unknown bases are
        # skipped at derivation time, which keeps the engines comparable
        # while still exercising the fingerprint's rule canonicalization.
        engine = _seeded_engine()
        engine.add_rule(
            AuthorizationRule(
                5,
                "base-under-test",
                operators if operators is not None else OperatorTuple(),
                rule_id=rule_id,
                description=description,
            )
        )
        return engine

    def test_same_rules_same_fingerprint(self):
        assert engine_fingerprint(self._engine_with_rule()) == engine_fingerprint(
            self._engine_with_rule()
        )

    def test_rule_edit_flips_fingerprint(self):
        plain = engine_fingerprint(_seeded_engine())
        with_rule = engine_fingerprint(self._engine_with_rule())
        assert plain != with_rule
        edited = engine_fingerprint(
            self._engine_with_rule(
                operators=OperatorTuple(op_entry=Intersection((10, 30)))
            )
        )
        assert edited != with_rule

    def test_rule_instance_trivia_is_ignored(self):
        a = engine_fingerprint(
            self._engine_with_rule(rule_id="rule-x", description="first")
        )
        b = engine_fingerprint(
            self._engine_with_rule(rule_id="rule-y", description="second")
        )
        assert a == b
