"""Shared pytest fixtures: paper layouts, paper authorizations, engine factories."""

from __future__ import annotations

import pytest

from repro.core import SubjectDirectory
from repro.engine import AccessControlEngine
from repro.locations import LocationHierarchy, figure4_hierarchy, ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.simulation import AuthorizationWorkloadGenerator, WorkloadConfig, campus_hierarchy, generate_subjects
from repro.storage import InMemoryAuthorizationDatabase


@pytest.fixture
def ntu() -> LocationHierarchy:
    """The NTU campus hierarchy of Figures 1 and 2."""
    return ntu_campus_hierarchy()


@pytest.fixture
def figure4() -> LocationHierarchy:
    """The four-location graph of Figure 4."""
    return figure4_hierarchy()


@pytest.fixture
def paper_profiles() -> SubjectDirectory:
    """Alice and Bob with Bob supervising Alice (the paper's examples)."""
    return paper.paper_directory()


@pytest.fixture
def table1_db() -> InMemoryAuthorizationDatabase:
    """The Table 1 authorization set loaded into an in-memory database."""
    return InMemoryAuthorizationDatabase(paper.table1_authorizations())


@pytest.fixture
def ntu_engine(ntu) -> AccessControlEngine:
    """An access-control engine protecting the NTU campus."""
    return AccessControlEngine(ntu)


@pytest.fixture
def small_campus() -> LocationHierarchy:
    """A small synthetic campus (3 buildings, 4 rooms each)."""
    return campus_hierarchy("Campus", 3, rooms_per_building=4, seed=7)


@pytest.fixture
def small_workload(small_campus):
    """A deterministic workload over the small campus: subjects + authorizations."""
    subjects = generate_subjects(5)
    generator = AuthorizationWorkloadGenerator(
        small_campus, config=WorkloadConfig(horizon=500, coverage=0.7), seed=11
    )
    return subjects, generator.authorizations(subjects)
