"""Unit tests for the query-language tokenizer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.engine.query.ast import (
    AccessibleQuery,
    AuthorizationsQuery,
    CanEnterQuery,
    EntriesQuery,
    InaccessibleQuery,
    RouteQuery,
    ViolationsQuery,
    WhereIsQuery,
    WhoIsInQuery,
)
from repro.engine.query.parser import parse, tokenize
from repro.temporal.interval import TimeInterval


class TestTokenizer:
    def test_plain_tokens(self):
        assert tokenize("WHO IS IN CAIS") == ["WHO", "IS", "IN", "CAIS"]

    def test_quoted_names(self):
        assert tokenize('WHERE IS "Alice Smith"') == ["WHERE", "IS", "Alice Smith"]

    def test_whitespace_is_collapsed(self):
        assert tokenize("  WHO   IS IN   CAIS  ") == ["WHO", "IS", "IN", "CAIS"]

    @pytest.mark.parametrize("bad", ["", "   ", None, 42])
    def test_invalid_input(self, bad):
        with pytest.raises(QuerySyntaxError):
            tokenize(bad)


class TestParsing:
    def test_who_is_in(self):
        assert parse("WHO IS IN CAIS") == WhoIsInQuery("CAIS", None)
        assert parse("who is in CAIS at 15") == WhoIsInQuery("CAIS", 15)

    def test_where_is(self):
        assert parse("WHERE IS Alice") == WhereIsQuery("Alice", None)
        assert parse("WHERE IS Alice AT 30") == WhereIsQuery("Alice", 30)

    def test_can_enter(self):
        assert parse("CAN Bob ENTER CHIPES AT 16") == CanEnterQuery("Bob", "CHIPES", 16)

    def test_authorizations(self):
        assert parse("AUTHORIZATIONS FOR Alice") == AuthorizationsQuery("Alice", None)
        assert parse("AUTHORIZATIONS FOR Alice AT CAIS") == AuthorizationsQuery("Alice", "CAIS")

    def test_accessibility_queries(self):
        assert parse("INACCESSIBLE LOCATIONS FOR Alice") == InaccessibleQuery("Alice")
        assert parse("INACCESSIBLE FOR Alice") == InaccessibleQuery("Alice")
        assert parse("ACCESSIBLE FOR Alice") == AccessibleQuery("Alice")

    def test_violations(self):
        assert parse("VIOLATIONS") == ViolationsQuery(None, None)
        assert parse("VIOLATIONS FOR Bob") == ViolationsQuery("Bob", None)
        assert parse("VIOLATIONS BETWEEN 10 AND 50") == ViolationsQuery(None, TimeInterval(10, 50))
        assert parse("VIOLATIONS FOR Bob BETWEEN 10 AND 50") == ViolationsQuery(
            "Bob", TimeInterval(10, 50)
        )

    def test_entries(self):
        assert parse("ENTRIES OF Bob INTO CHIPES") == EntriesQuery("Bob", "CHIPES")

    def test_route(self):
        assert parse("ROUTE FROM SCE.GO TO CAIS") == RouteQuery("SCE.GO", "CAIS", None)
        assert parse("ROUTE FROM SCE.GO TO CAIS FOR Alice") == RouteQuery("SCE.GO", "CAIS", "Alice")

    def test_keywords_are_case_insensitive(self):
        assert parse("can Bob enter CHIPES at 16") == CanEnterQuery("Bob", "CHIPES", 16)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "HELLO WORLD",
            "WHO IS CAIS",
            "WHO IS IN",
            "WHERE Alice",
            "CAN Bob ENTER CHIPES",
            "CAN Bob ENTER CHIPES AT noon",
            "CAN Bob ENTER CHIPES AT -5",
            "AUTHORIZATIONS Alice",
            "VIOLATIONS BETWEEN 50 AND 10",
            "ENTRIES OF Bob",
            "ROUTE FROM SCE.GO",
            "WHO IS IN CAIS AT 15 EXTRA",
            "WHO IS IN FOR",
        ],
    )
    def test_malformed_queries_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse(text)
