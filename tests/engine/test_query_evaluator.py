"""Unit tests for the query engine (Figure 3's Query Engine)."""

import pytest

from repro.errors import QueryError
from repro.engine.access_control import AccessControlEngine
from repro.engine.query.ast import QueryResult, WhoIsInQuery
from repro.engine.query.evaluator import QueryEngine
from repro.locations.layouts import figure4_hierarchy, ntu_campus_hierarchy
from repro.paper import fixtures as paper


@pytest.fixture
def engine():
    engine = AccessControlEngine(ntu_campus_hierarchy())
    engine.grant_all(paper.section5_authorizations())
    # Replay the Section 5 timeline so the databases have content.
    for step in paper.section5_timeline():
        if step.action == "request":
            decision = engine.request_access(step.time, step.subject, step.location)
            if decision.granted:
                engine.observe_entry(step.time, step.subject, step.location)
        else:
            engine.observe_exit(step.time, step.subject, step.location)
    return engine


@pytest.fixture
def queries(engine):
    return QueryEngine(engine)


class TestOccupancyQueries:
    def test_who_is_in_now(self, queries):
        result = queries.evaluate("WHO IS IN CAIS")
        assert result.rows == (("Alice",),)
        assert result.kind == "who_is_in"

    def test_who_is_in_historical(self, queries):
        # At t=18 Bob was still inside CHIPES (he left at 20).
        assert queries.evaluate("WHO IS IN CHIPES AT 18").rows == (("Bob",),)
        assert queries.evaluate("WHO IS IN CHIPES AT 25").rows == ()

    def test_where_is(self, queries):
        assert queries.evaluate("WHERE IS Alice").scalar == "CAIS"
        assert queries.evaluate("WHERE IS Bob").scalar is None

    def test_where_is_historical(self, queries):
        assert queries.evaluate("WHERE IS Bob AT 18").scalar == "CHIPES"
        assert queries.evaluate("WHERE IS Bob AT 30").scalar is None
        assert queries.evaluate("WHERE IS Bob AT 5").scalar is None


class TestDecisionQueries:
    def test_can_enter(self, queries):
        assert queries.evaluate("CAN Alice ENTER CAIS AT 12").scalar is True
        assert queries.evaluate("CAN Bob ENTER CHIPES AT 30").scalar is False
        denied = queries.evaluate("CAN Bob ENTER CAIS AT 15")
        assert denied.scalar is False
        assert denied.rows[0][4] == "no_authorization"

    def test_can_enter_does_not_pollute_audit(self, queries, engine):
        before = len(engine.audit)
        queries.evaluate("CAN Bob ENTER CAIS AT 15")
        assert len(engine.audit) == before

    def test_entries(self, queries):
        assert queries.evaluate("ENTRIES OF Bob INTO CHIPES").scalar == 1
        assert queries.evaluate("ENTRIES OF Alice INTO CHIPES").scalar == 0

    def test_authorizations(self, queries):
        result = queries.evaluate("AUTHORIZATIONS FOR Alice")
        assert len(result) == 1
        assert result.rows[0][1] == "CAIS"
        scoped = queries.evaluate("AUTHORIZATIONS FOR Alice AT CHIPES")
        assert len(scoped) == 0


class TestReasoningQueries:
    def test_inaccessible_and_accessible(self):
        engine = AccessControlEngine(figure4_hierarchy())
        engine.grant_all(paper.table1_authorizations())
        queries = QueryEngine(engine)
        assert queries.evaluate("INACCESSIBLE FOR Alice").rows == (("C",),)
        assert queries.evaluate("ACCESSIBLE FOR Alice").rows == (("A",), ("B",), ("D",))

    def test_route_query(self, queries):
        result = queries.evaluate("ROUTE FROM SCE.GO TO CAIS")
        assert [row[1] for row in result.rows] == ["SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"]
        assert result.scalar is None  # no subject given

    def test_route_query_with_subject(self, queries):
        result = queries.evaluate("ROUTE FROM SCE.GO TO CAIS FOR Alice")
        # Alice has no authorization on SCE.GO so the route is unauthorized.
        assert result.scalar is False

    def test_violations(self, queries):
        all_violations = queries.evaluate("VIOLATIONS")
        assert len(all_violations) == 2  # two denied requests in the timeline
        bob_only = queries.evaluate("VIOLATIONS FOR Bob")
        assert all(row[2] == "Bob" for row in bob_only.rows)
        windowed = queries.evaluate("VIOLATIONS BETWEEN 0 AND 20")
        assert len(windowed) == 1


class TestResultObjectAndErrors:
    def test_result_rendering(self, queries):
        result = queries.evaluate("AUTHORIZATIONS FOR Alice")
        text = result.to_text()
        assert "auth_id" in text
        assert "CAIS" in text
        scalar_only = QueryResult("demo", ("x",), (), scalar=42)
        assert "42" in scalar_only.to_text()

    def test_result_helpers(self, queries):
        result = queries.evaluate("WHO IS IN CAIS")
        assert result.first() == ("Alice",)
        assert len(result) == 1
        assert list(result) == [("Alice",)]
        empty = queries.evaluate("WHO IS IN Lab1")
        assert empty.first() is None

    def test_evaluate_accepts_ast_nodes(self, queries):
        assert queries.evaluate(WhoIsInQuery("CAIS")).rows == (("Alice",),)

    def test_explain(self, queries):
        assert "WhoIsInQuery" in queries.explain("WHO IS IN CAIS")

    def test_unsupported_query_type(self, queries):
        class Weird:
            pass

        with pytest.raises(QueryError):
            queries.evaluate(Weird())
