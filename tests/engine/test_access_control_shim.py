"""The legacy engine facade: shim behavior, derivation caching, traces."""

import pytest

from repro.api import Decision, Ltam
from repro.core.requests import AccessRequest, DenialReason
from repro.engine.access_control import AccessControlEngine
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.storage.profile_db import SqliteUserProfileDatabase


@pytest.fixture
def engine():
    return AccessControlEngine(ntu_campus_hierarchy())


class TestShim:
    def test_engine_is_an_ltam(self, engine):
        assert isinstance(engine, Ltam)

    def test_legacy_decisions_carry_traces(self, engine):
        engine.grant_all(paper.section5_authorizations())
        decision = engine.check_request(AccessRequest(15, "Alice", "CAIS"))
        assert isinstance(decision, Decision)
        assert decision.deciding_stage == "entry-budget"
        denied = engine.request_access(15, "Mallory", "CAIS", record=False)
        assert denied.reason is DenialReason.NO_AUTHORIZATION
        assert denied.deciding_stage == "candidate-lookup"

    def test_request_access_records_only_when_asked(self, engine):
        engine.grant_all(paper.section5_authorizations())
        engine.request_access(15, "Alice", "CAIS", record=False)
        assert len(engine.audit) == 0
        engine.request_access(15, "Alice", "CAIS")
        assert len(engine.audit.decisions()) == 1


class TestDerivationCaching:
    def test_cached_engine_reused_while_profiles_unchanged(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        first = engine.derivation
        engine.derive_authorizations()
        engine.derive_authorizations()
        # The in-memory profile directory mutates in place, so the cached
        # derivation engine stays valid and is not rebuilt per call.
        assert engine.derivation is first

    def test_in_memory_profile_changes_visible_through_cache(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        cached = engine.derivation
        engine.profile_db.set_supervisor("Alice", "Carol")
        engine.derive_authorizations()
        assert engine.derivation is cached
        subjects = {a.subject for a in engine.authorization_db.for_location("CAIS")}
        assert "Carol" in subjects

    def test_sqlite_profile_change_rebuilds_the_engine(self):
        engine = AccessControlEngine(
            ntu_campus_hierarchy(), profile_db=SqliteUserProfileDatabase()
        )
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        stale = engine.derivation
        # A write invalidates the SQLite directory cache; the derivation
        # engine must follow the fresh directory object.
        engine.profile_db.set_supervisor("Alice", "Carol")
        engine.derive_authorizations()
        assert engine.derivation is not stale
        subjects = {a.subject for a in engine.authorization_db.for_location("CAIS")}
        assert "Carol" in subjects

    def test_rules_survive_a_rebuild(self):
        engine = AccessControlEngine(
            ntu_campus_hierarchy(), profile_db=SqliteUserProfileDatabase()
        )
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        rule = paper.example_rule_r1(base)
        engine.add_rule(rule)
        engine.profile_db.set_supervisor("Alice", "Carol")
        rebuilt = engine.derivation
        assert [r.rule_id for r in rebuilt.rules] == [rule.rule_id]
