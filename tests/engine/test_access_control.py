"""Unit and scenario tests for the Access Control Engine (Section 5)."""

import pytest

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessRequest, DenialReason
from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import AlertKind
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.storage.authorization_db import SqliteAuthorizationDatabase
from repro.storage.movement_db import SqliteMovementDatabase
from repro.storage.profile_db import SqliteUserProfileDatabase


@pytest.fixture
def engine():
    return AccessControlEngine(ntu_campus_hierarchy())


@pytest.fixture
def loaded(engine):
    engine.grant_all(paper.section5_authorizations())
    return engine


class TestAdministration:
    def test_grant_and_revoke(self, engine):
        auth = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 10), (0, 20), auth_id="g1")
        engine.grant(auth)
        assert "g1" in engine.authorization_db
        revoked = engine.revoke("g1")
        assert [a.auth_id for a in revoked] == ["g1"]

    def test_grant_rejects_unknown_location(self, engine):
        bad = LocationTemporalAuthorization(("Alice", "Narnia"), (0, 10), (0, 20))
        with pytest.raises(EnforcementError):
            engine.grant(bad)

    def test_revoke_cascades_to_derived(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        derived_ids = [a.auth_id for a in engine.authorization_db.all() if a.derived_from == "a1"]
        assert derived_ids
        engine.revoke("a1")
        assert len(engine.authorization_db) == 0

    def test_revoke_without_cascade(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        engine.revoke("a1", cascade=False)
        assert len(engine.authorization_db) == 1  # the derived one survives

    def test_add_rule_derives_and_stores(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        result = engine.add_rule(paper.example_rule_r1(base))
        assert len(result.derived) == 1
        stored = engine.authorization_db.for_subject_location("Bob", "CAIS")
        assert len(stored) == 1
        assert stored[0] == paper.expected_derived_a2()
        assert engine.rules

    def test_add_rule_without_deriving(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        result = engine.add_rule(paper.example_rule_r1(base), derive_now=False)
        assert result.derived == ()
        assert len(engine.authorization_db) == 1

    def test_rederivation_after_profile_change(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        # Alice gets a new supervisor; re-derivation grants Carol as well.
        engine.profile_db.set_supervisor("Alice", "Carol")
        engine.derive_authorizations()
        subjects = {a.subject for a in engine.authorization_db.for_location("CAIS")}
        assert "Carol" in subjects

    def test_derivation_is_idempotent(self, engine):
        base = paper.example_base_authorization_a1()
        engine.grant(base)
        engine.profile_db.set_supervisor("Alice", "Bob")
        engine.advance_to(10)
        engine.add_rule(paper.example_rule_r1(base))
        count = len(engine.authorization_db)
        engine.derive_authorizations()
        assert len(engine.authorization_db) == count


class TestRequestEvaluation:
    def test_unknown_location_denied(self, loaded):
        decision = loaded.request_access(5, "Alice", "SCE.GO")
        assert not decision.granted
        assert decision.reason is DenialReason.NO_AUTHORIZATION
        missing = loaded.check_request(AccessRequest(5, "Alice", "Narnia"))
        assert missing.reason is DenialReason.UNKNOWN_LOCATION

    def test_outside_entry_duration(self, loaded):
        decision = loaded.request_access(5, "Alice", "CAIS")
        assert decision.reason is DenialReason.OUTSIDE_ENTRY_DURATION

    def test_grant_and_entry_counting(self, loaded):
        assert loaded.request_and_enter(10, "Alice", "CAIS").granted
        # The budget is 2: one more entry is allowed, then exhausted.
        loaded.observe_exit(12, "Alice", "CAIS")
        assert loaded.request_and_enter(15, "Alice", "CAIS").granted
        loaded.observe_exit(16, "Alice", "CAIS")
        final = loaded.request_access(18, "Alice", "CAIS")
        assert not final.granted
        assert final.reason is DenialReason.ENTRY_LIMIT_EXHAUSTED
        assert final.entries_used == 2

    def test_check_request_is_pure(self, loaded):
        before = len(loaded.audit)
        loaded.check_request(AccessRequest(10, "Alice", "CAIS"))
        assert len(loaded.audit) == before

    def test_denied_requests_raise_denied_alert_and_audit_entry(self, loaded):
        loaded.request_access(15, "Bob", "CAIS")
        assert [a.kind for a in loaded.alerts] == [AlertKind.DENIED_REQUEST]
        assert len(loaded.audit.decisions(granted=False)) == 1

    def test_request_access_without_recording(self, loaded):
        loaded.request_access(15, "Bob", "CAIS", record=False)
        assert len(loaded.alerts) == 0
        assert len(loaded.audit) == 0


class TestSection5Scenario:
    def test_full_timeline_matches_paper(self, loaded):
        outcomes = []
        for step in paper.section5_timeline():
            if step.action == "request":
                decision = loaded.request_access(step.time, step.subject, step.location)
                outcomes.append(decision.granted)
                if decision.granted:
                    loaded.observe_entry(step.time, step.subject, step.location)
            else:
                loaded.observe_exit(step.time, step.subject, step.location)
        expected = [s.expected_granted for s in paper.section5_timeline() if s.action == "request"]
        assert outcomes == expected

    def test_where_is_and_occupants(self, loaded):
        loaded.request_and_enter(10, "Alice", "CAIS")
        assert loaded.where_is("Alice") == "CAIS"
        assert loaded.occupants("CAIS") == ["Alice"]
        loaded.observe_exit(20, "Alice", "CAIS")
        assert loaded.where_is("Alice") is None

    def test_overstay_alert_via_clock(self, loaded):
        loaded.request_and_enter(10, "Alice", "CAIS")
        loaded.advance_to(49)
        assert not loaded.alerts.of_kind(AlertKind.OVERSTAY)
        loaded.tick(5)  # past the exit window end (50)
        assert len(loaded.alerts.of_kind(AlertKind.OVERSTAY)) == 1

    def test_inaccessible_locations_via_engine(self):
        from repro.locations.layouts import figure4_hierarchy

        engine = AccessControlEngine(figure4_hierarchy())
        engine.grant_all(paper.table1_authorizations())
        report = engine.inaccessible_locations("Alice")
        assert report.inaccessible == {"C"}


class TestSqliteBackedEngine:
    def test_engine_with_sqlite_backends(self):
        hierarchy = ntu_campus_hierarchy()
        engine = AccessControlEngine(
            hierarchy,
            authorization_db=SqliteAuthorizationDatabase(),
            movement_db=SqliteMovementDatabase(":memory:", hierarchy),
            profile_db=SqliteUserProfileDatabase(),
        )
        engine.grant_all(paper.section5_authorizations())
        assert engine.request_and_enter(10, "Alice", "CAIS").granted
        engine.observe_exit(12, "Alice", "CAIS")
        assert engine.request_and_enter(15, "Alice", "CAIS").granted
        engine.observe_exit(16, "Alice", "CAIS")
        assert not engine.request_access(18, "Alice", "CAIS").granted
