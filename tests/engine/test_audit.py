"""Unit tests for the audit log."""

import pytest

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.engine.alerts import Alert, AlertKind
from repro.engine.audit import AuditEntryKind, AuditLog
from repro.storage.movement_db import MovementKind, MovementRecord
from repro.temporal.interval import TimeInterval


AUTH = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 20), (0, 50), 2, auth_id="A1")


@pytest.fixture
def log():
    audit = AuditLog()
    audit.record_decision(AccessDecision.grant(AccessRequest(10, "Alice", "CAIS"), AUTH))
    audit.record_decision(AccessDecision.deny(AccessRequest(15, "Bob", "CAIS"), DenialReason.NO_AUTHORIZATION))
    audit.record_movement(MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER))
    audit.record_alert(Alert(60, AlertKind.OVERSTAY, "Alice", "CAIS"))
    audit.record_derivation(5, "Alice", "rule r1 derived 1 authorization(s)")
    return audit


class TestAppend:
    def test_entry_count_and_order(self, log):
        assert len(log) == 5
        times = [entry.time for entry in log]
        assert times == [10, 15, 10, 60, 5]  # append order, not time order

    def test_counts_by_kind(self, log):
        counts = log.counts()
        assert counts[AuditEntryKind.DECISION] == 2
        assert counts[AuditEntryKind.MOVEMENT] == 1
        assert counts[AuditEntryKind.ALERT] == 1
        assert counts[AuditEntryKind.DERIVATION] == 1


class TestQueries:
    def test_of_kind(self, log):
        assert len(log.of_kind(AuditEntryKind.DECISION)) == 2
        assert len(log.of_kind("alert")) == 1

    def test_for_subject(self, log):
        assert len(log.for_subject("Alice")) == 4
        assert len(log.for_subject("Bob")) == 1

    def test_within_window(self, log):
        assert len(log.within(TimeInterval(0, 20))) == 4
        assert len(log.within(TimeInterval(50, 70))) == 1

    def test_decisions_filtered_by_outcome(self, log):
        assert len(log.decisions()) == 2
        assert len(log.decisions(granted=True)) == 1
        assert len(log.decisions(granted=False)) == 1

    def test_alerts(self, log):
        alerts = log.alerts()
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.OVERSTAY

    def test_entry_str(self, log):
        assert "decision" in str(log.entries[0])

    def test_clear(self, log):
        log.clear()
        assert len(log) == 0
        assert log.decisions() == []
