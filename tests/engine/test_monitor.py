"""Unit tests for the movement monitor (continuous monitoring, Section 1 & 5)."""

import pytest

from repro.core.authorization import LocationTemporalAuthorization
from repro.engine.alerts import AlertKind, AlertSink
from repro.engine.monitor import MovementMonitor
from repro.locations.layouts import ntu_campus_hierarchy
from repro.storage.authorization_db import InMemoryAuthorizationDatabase
from repro.storage.movement_db import InMemoryMovementDatabase, MovementKind, MovementRecord


@pytest.fixture
def setup():
    hierarchy = ntu_campus_hierarchy()
    auth_db = InMemoryAuthorizationDatabase(
        [
            LocationTemporalAuthorization(("Alice", "CAIS"), (10, 20), (10, 50), 2, auth_id="A1"),
            LocationTemporalAuthorization(("Bob", "CHIPES"), (5, 35), (20, 100), 1, auth_id="A2"),
        ]
    )
    movement_db = InMemoryMovementDatabase(hierarchy)
    monitor = MovementMonitor(auth_db, movement_db)
    return monitor, auth_db, movement_db


class TestEntries:
    def test_authorized_entry_raises_no_alert(self, setup):
        monitor, _, movement_db = setup
        alerts = monitor.observe_entry(10, "Alice", "CAIS")
        assert alerts == []
        assert movement_db.current_location("Alice") == "CAIS"
        session = monitor.sessions.current("Alice")
        assert session is not None and session.is_authorized
        assert session.authorization.auth_id == "A1"

    def test_unauthorized_entry_raises_alert(self, setup):
        monitor, _, movement_db = setup
        alerts = monitor.observe_entry(10, "Mallory", "CAIS")
        assert [a.kind for a in alerts] == [AlertKind.UNAUTHORIZED_ENTRY]
        # The observation is still recorded: the database holds what happened.
        assert movement_db.current_location("Mallory") == "CAIS"
        assert not monitor.sessions.current("Mallory").is_authorized

    def test_entry_outside_window_raises_alert(self, setup):
        monitor, _, _ = setup
        alerts = monitor.observe_entry(60, "Alice", "CAIS")
        assert [a.kind for a in alerts] == [AlertKind.UNAUTHORIZED_ENTRY]

    def test_tailgating_second_entry_beyond_budget(self, setup):
        monitor, _, _ = setup
        # Bob's authorization allows a single entry into CHIPES.
        assert monitor.observe_entry(16, "Bob", "CHIPES") == []
        monitor.observe_exit(20, "Bob", "CHIPES")
        alerts = monitor.observe_entry(30, "Bob", "CHIPES")
        assert [a.kind for a in alerts] == [AlertKind.UNAUTHORIZED_ENTRY]

    def test_observe_dispatches_on_record_kind(self, setup):
        monitor, _, _ = setup
        assert monitor.observe(MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER)) == []
        alerts = monitor.observe(MovementRecord(55, "Alice", "CAIS", MovementKind.EXIT))
        assert [a.kind for a in alerts] == [AlertKind.EXIT_OUTSIDE_DURATION]


class TestExits:
    def test_exit_within_window_is_clean(self, setup):
        monitor, _, movement_db = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        alerts = monitor.observe_exit(30, "Alice", "CAIS")
        assert alerts == []
        assert movement_db.current_location("Alice") is None
        assert monitor.sessions.current("Alice") is None

    def test_exit_after_exit_window_raises_alert(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        alerts = monitor.observe_exit(60, "Alice", "CAIS")
        assert [a.kind for a in alerts] == [AlertKind.EXIT_OUTSIDE_DURATION]
        assert alerts[0].authorization_id == "A1"

    def test_exit_without_entry_raises_untracked_alert(self, setup):
        monitor, _, _ = setup
        alerts = monitor.observe_exit(10, "Alice", "CAIS")
        assert [a.kind for a in alerts] == [AlertKind.UNTRACKED_EXIT]

    def test_exit_from_wrong_location_raises_untracked_alert(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        alerts = monitor.observe_exit(15, "Alice", "CHIPES")
        assert [a.kind for a in alerts] == [AlertKind.UNTRACKED_EXIT]


class TestOverstays:
    def test_overstay_detected_after_exit_window_closes(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        assert monitor.check_overstays(50) == []    # window closes at 50
        alerts = monitor.check_overstays(51)
        assert [a.kind for a in alerts] == [AlertKind.OVERSTAY]
        assert alerts[0].subject == "Alice"

    def test_overstay_alert_not_repeated(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        assert len(monitor.check_overstays(60)) == 1
        assert monitor.check_overstays(61) == []
        assert monitor.check_overstays(99) == []

    def test_overstay_flag_resets_after_exit_and_reentry(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Alice", "CAIS")
        monitor.check_overstays(60)
        monitor.observe_exit(61, "Alice", "CAIS")
        # Re-entering (even unauthorized now it's late) opens a new session.
        monitor.observe_entry(70, "Alice", "CAIS")
        # A later tick does not re-alert for the *old* stay; the new session
        # has no authorization so it never overstays.
        assert monitor.check_overstays(80) == []

    def test_unauthorized_session_never_flagged_as_overstay(self, setup):
        monitor, _, _ = setup
        monitor.observe_entry(10, "Mallory", "CAIS")
        assert monitor.check_overstays(1000) == []


class TestSharedSink:
    def test_alerts_accumulate_in_provided_sink(self, setup):
        hierarchy = ntu_campus_hierarchy()
        auth_db = InMemoryAuthorizationDatabase()
        sink = AlertSink()
        monitor = MovementMonitor(auth_db, InMemoryMovementDatabase(hierarchy), sink)
        monitor.observe_entry(1, "Eve", "CAIS")
        monitor.observe_exit(2, "Eve", "CAIS")
        assert monitor.alert_sink is sink
        assert [a.kind for a in sink.alerts] == [AlertKind.UNAUTHORIZED_ENTRY]
