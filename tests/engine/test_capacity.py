"""Unit tests for occupancy-capacity monitoring (extension of the monitor)."""

import pytest

from repro.core.authorization import LocationTemporalAuthorization
from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import AlertKind
from repro.errors import EnforcementError
from repro.locations.layouts import ntu_campus_hierarchy


@pytest.fixture
def engine():
    hierarchy = ntu_campus_hierarchy()
    engine = AccessControlEngine(hierarchy)
    for person in ("Alice", "Bob", "Carol"):
        engine.grant(LocationTemporalAuthorization((person, "CAIS"), (0, 100), (0, 200)))
    return engine


class TestCapacityConfiguration:
    def test_set_and_read_capacity(self, engine):
        engine.set_capacity("CAIS", 2)
        assert engine.monitor.capacity_of("CAIS") == 2
        assert engine.monitor.capacity_of("CHIPES") is None

    def test_invalid_capacity_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.set_capacity("CAIS", 0)

    def test_unknown_location_rejected(self, engine):
        with pytest.raises(EnforcementError):
            engine.set_capacity("Narnia", 2)


class TestCapacityAlerts:
    def test_alert_when_limit_exceeded(self, engine):
        engine.set_capacity("CAIS", 2)
        assert engine.observe_entry(10, "Alice", "CAIS") == []
        assert engine.observe_entry(11, "Bob", "CAIS") == []
        alerts = engine.observe_entry(12, "Carol", "CAIS")
        assert [a.kind for a in alerts] == [AlertKind.OVER_CAPACITY]
        assert "capacity limit of 2" in alerts[0].message

    def test_no_alert_after_someone_leaves(self, engine):
        engine.set_capacity("CAIS", 2)
        engine.observe_entry(10, "Alice", "CAIS")
        engine.observe_entry(11, "Bob", "CAIS")
        engine.observe_exit(12, "Alice", "CAIS")
        assert engine.observe_entry(13, "Carol", "CAIS") == []

    def test_no_limit_means_no_alert(self, engine):
        for index, person in enumerate(("Alice", "Bob", "Carol")):
            assert engine.observe_entry(10 + index, person, "CAIS") == []

    def test_capacity_alert_can_coexist_with_unauthorized_entry(self, engine):
        engine.set_capacity("CAIS", 1)
        engine.observe_entry(10, "Alice", "CAIS")
        alerts = engine.observe_entry(11, "Mallory", "CAIS")
        kinds = {a.kind for a in alerts}
        assert kinds == {AlertKind.UNAUTHORIZED_ENTRY, AlertKind.OVER_CAPACITY}
