"""LIVE/ARCHIVED scope modifiers: grammar and evaluator behavior."""

import pytest

from repro.errors import QuerySyntaxError
from repro.engine.query import HistoryScope, QueryEngine, parse
from repro.engine.query.ast import WhereIsQuery, WhoIsInQuery
from repro.api import Ltam
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building


class TestGrammar:
    def test_default_scope_is_full_history(self):
        query = parse("WHO IS IN Lobby AT 10")
        assert isinstance(query, WhoIsInQuery)
        assert query.scope is HistoryScope.ARCHIVED
        assert query.scope.include_archived

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("WHO IS IN Lobby AT 10 LIVE", HistoryScope.LIVE),
            ("WHO IS IN Lobby AT 10 ARCHIVED", HistoryScope.ARCHIVED),
            ("who is in Lobby at 10 live", HistoryScope.LIVE),  # case-insensitive
        ],
    )
    def test_who_is_in_scope(self, text, scope):
        query = parse(text)
        assert query.scope is scope

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("WHERE IS Alice AT 10 LIVE", HistoryScope.LIVE),
            ("WHERE IS Alice AT 10 ARCHIVED", HistoryScope.ARCHIVED),
            ("WHERE IS Alice LIVE", HistoryScope.LIVE),  # scope without AT parses too
        ],
    )
    def test_where_is_scope(self, text, scope):
        query = parse(text)
        assert isinstance(query, WhereIsQuery)
        assert query.scope is scope

    def test_scope_must_be_trailing(self):
        with pytest.raises(QuerySyntaxError):
            parse("WHO IS IN Lobby LIVE AT 10")

    def test_scope_keyword_is_reserved_as_a_name(self):
        with pytest.raises(QuerySyntaxError):
            parse("WHERE IS LIVE")  # LIVE cannot be a subject name


class TestEvaluation:
    @pytest.fixture
    def engine(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        # Pre-checkpoint era: Alice settles into R0C0.
        engine.movement_db.record_entry(1, "Alice", "B.R0C0")
        engine.movement_db.record_entry(2, "Bob", "B.R0C1")
        engine.checkpoint()  # compacts: the era above moves to the archive
        # Post-checkpoint era: only Bob moves.
        engine.movement_db.record_exit(10, "Bob", "B.R0C1")
        return engine

    def test_default_replay_spans_the_archive(self, engine):
        queries = QueryEngine(engine)
        assert queries.evaluate("WHERE IS Alice AT 5").scalar == "B.R0C0"
        assert queries.evaluate("WHO IS IN B.R0C0 AT 5").rows == (("Alice",),)

    def test_live_replay_sees_only_events_since_compaction(self, engine):
        queries = QueryEngine(engine)
        # Alice's entry lives in the archive: a LIVE replay cannot see it.
        assert queries.evaluate("WHERE IS Alice AT 5 LIVE").scalar is None
        assert queries.evaluate("WHO IS IN B.R0C0 AT 5 LIVE").rows == ()
        # Explicit ARCHIVED matches the default.
        assert (
            queries.evaluate("WHERE IS Alice AT 5 ARCHIVED").scalar
            == queries.evaluate("WHERE IS Alice AT 5").scalar
        )

    def test_scope_does_not_affect_projection_reads(self, engine):
        queries = QueryEngine(engine)
        # No AT time: the current-occupancy projection answers; the archive
        # was already folded in, so both scopes agree.
        assert queries.evaluate("WHERE IS Alice LIVE").scalar == "B.R0C0"
        assert queries.evaluate("WHERE IS Alice").scalar == "B.R0C0"
