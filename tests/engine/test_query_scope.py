"""LIVE/ARCHIVED scope modifiers: grammar and evaluator behavior."""

import pytest

from repro.errors import QuerySyntaxError
from repro.engine.query import HistoryScope, QueryEngine, parse
from repro.engine.query.ast import (
    EntriesQuery,
    ViolationsQuery,
    WhereIsQuery,
    WhoIsInQuery,
)
from repro.api import Ltam
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building


class TestGrammar:
    def test_default_scope_is_full_history(self):
        query = parse("WHO IS IN Lobby AT 10")
        assert isinstance(query, WhoIsInQuery)
        assert query.scope is HistoryScope.ARCHIVED
        assert query.scope.include_archived

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("WHO IS IN Lobby AT 10 LIVE", HistoryScope.LIVE),
            ("WHO IS IN Lobby AT 10 ARCHIVED", HistoryScope.ARCHIVED),
            ("who is in Lobby at 10 live", HistoryScope.LIVE),  # case-insensitive
        ],
    )
    def test_who_is_in_scope(self, text, scope):
        query = parse(text)
        assert query.scope is scope

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("WHERE IS Alice AT 10 LIVE", HistoryScope.LIVE),
            ("WHERE IS Alice AT 10 ARCHIVED", HistoryScope.ARCHIVED),
            ("WHERE IS Alice LIVE", HistoryScope.LIVE),  # scope without AT parses too
        ],
    )
    def test_where_is_scope(self, text, scope):
        query = parse(text)
        assert isinstance(query, WhereIsQuery)
        assert query.scope is scope

    def test_scope_must_be_trailing(self):
        with pytest.raises(QuerySyntaxError):
            parse("WHO IS IN Lobby LIVE AT 10")

    def test_scope_keyword_is_reserved_as_a_name(self):
        with pytest.raises(QuerySyntaxError):
            parse("WHERE IS LIVE")  # LIVE cannot be a subject name

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("VIOLATIONS LIVE", HistoryScope.LIVE),
            ("VIOLATIONS FOR Alice LIVE", HistoryScope.LIVE),
            ("VIOLATIONS FOR Alice BETWEEN 0 AND 50 ARCHIVED", HistoryScope.ARCHIVED),
            ("VIOLATIONS", HistoryScope.ARCHIVED),  # default: full retention
        ],
    )
    def test_violations_scope(self, text, scope):
        query = parse(text)
        assert isinstance(query, ViolationsQuery)
        assert query.scope is scope

    @pytest.mark.parametrize(
        "text, scope",
        [
            ("ENTRIES OF Alice INTO Lobby LIVE", HistoryScope.LIVE),
            ("ENTRIES OF Alice INTO Lobby ARCHIVED", HistoryScope.ARCHIVED),
            ("ENTRIES OF Alice INTO Lobby", HistoryScope.ARCHIVED),
        ],
    )
    def test_entries_scope(self, text, scope):
        query = parse(text)
        assert isinstance(query, EntriesQuery)
        assert query.scope is scope

    def test_entries_scope_must_be_trailing(self):
        with pytest.raises(QuerySyntaxError):
            parse("ENTRIES OF Alice LIVE INTO Lobby")


class TestEvaluation:
    @pytest.fixture
    def engine(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        # Pre-checkpoint era: Alice settles into R0C0.
        engine.movement_db.record_entry(1, "Alice", "B.R0C0")
        engine.movement_db.record_entry(2, "Bob", "B.R0C1")
        engine.checkpoint()  # compacts: the era above moves to the archive
        # Post-checkpoint era: only Bob moves.
        engine.movement_db.record_exit(10, "Bob", "B.R0C1")
        return engine

    def test_default_replay_spans_the_archive(self, engine):
        queries = QueryEngine(engine)
        assert queries.evaluate("WHERE IS Alice AT 5").scalar == "B.R0C0"
        assert queries.evaluate("WHO IS IN B.R0C0 AT 5").rows == (("Alice",),)

    def test_live_replay_sees_only_events_since_compaction(self, engine):
        queries = QueryEngine(engine)
        # Alice's entry lives in the archive: a LIVE replay cannot see it.
        assert queries.evaluate("WHERE IS Alice AT 5 LIVE").scalar is None
        assert queries.evaluate("WHO IS IN B.R0C0 AT 5 LIVE").rows == ()
        # Explicit ARCHIVED matches the default.
        assert (
            queries.evaluate("WHERE IS Alice AT 5 ARCHIVED").scalar
            == queries.evaluate("WHERE IS Alice AT 5").scalar
        )

    def test_scope_does_not_affect_projection_reads(self, engine):
        queries = QueryEngine(engine)
        # No AT time: the current-occupancy projection answers; the archive
        # was already folded in, so both scopes agree.
        assert queries.evaluate("WHERE IS Alice LIVE").scalar == "B.R0C0"
        assert queries.evaluate("WHERE IS Alice").scalar == "B.R0C0"


class TestCounterAndAlertScope:
    @pytest.fixture
    def engine(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        # Archived era: two entries, one violation (Mallory is unauthorized).
        engine.observe_entry(1, "Alice", "B.R0C0")
        engine.observe_entry(2, "Mallory", "B.R0C0")
        engine.observe_exit(3, "Alice", "B.R0C0")
        engine.checkpoint()  # compacts: the era above moves to the archive
        # Live era: one more entry each, one more violation.
        engine.observe_entry(10, "Alice", "B.R0C0")
        engine.observe_entry(11, "Mallory", "B.R0C1")
        return engine

    def test_entries_default_is_the_lifetime_counter(self, engine):
        queries = QueryEngine(engine)
        assert queries.evaluate("ENTRIES OF Alice INTO B.R0C0").scalar == 2
        assert (
            queries.evaluate("ENTRIES OF Alice INTO B.R0C0 ARCHIVED").scalar
            == queries.evaluate("ENTRIES OF Alice INTO B.R0C0").scalar
        )

    def test_entries_live_counts_only_since_compaction(self, engine):
        queries = QueryEngine(engine)
        assert queries.evaluate("ENTRIES OF Alice INTO B.R0C0 LIVE").scalar == 1

    def test_entries_default_survives_archive_pruning(self, engine):
        engine.movement_db.prune_archive(0)
        queries = QueryEngine(engine)
        # The projection counter folded the pruned entries in; it stays exact.
        assert queries.evaluate("ENTRIES OF Alice INTO B.R0C0").scalar == 2
        assert queries.evaluate("ENTRIES OF Alice INTO B.R0C0 LIVE").scalar == 1

    def test_violations_live_reports_only_the_live_era(self, engine):
        queries = QueryEngine(engine)
        archived_times = [row[0] for row in queries.evaluate("VIOLATIONS")]
        live_times = [row[0] for row in queries.evaluate("VIOLATIONS LIVE")]
        boundary = engine.movement_db.archived_through
        assert boundary == 3
        assert any(time < boundary for time in archived_times)
        assert live_times and all(time >= boundary for time in live_times)

    def test_violations_live_keeps_boundary_time_alerts(self):
        """Movement times may repeat: a live-era violation raised at exactly
        the archived_through chronon must not be hidden (inclusive boundary
        over-reports rather than hides)."""
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.observe_entry(3, "Alice", "B.R0C0")
        engine.checkpoint()  # archived_through == 3
        engine.observe_entry(3, "Mallory", "B.R0C1")  # live violation at t=3
        queries = QueryEngine(engine)
        live = queries.evaluate("VIOLATIONS LIVE")
        assert any(row[2] == "Mallory" for row in live), live.rows

    def test_violations_live_with_no_compaction_equals_default(self):
        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.observe_entry(1, "Mallory", "B.R0C0")
        queries = QueryEngine(engine)
        assert queries.evaluate("VIOLATIONS LIVE") == queries.evaluate("VIOLATIONS")


class TestAlertRetentionFollowsPruning:
    def test_scheduled_prune_retires_the_pruned_eras_alerts(self):
        from repro.storage.ingest import CheckpointPolicy

        from repro.storage.movement_db import MovementKind, MovementRecord

        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.observe_entry(1, "Mallory", "B.R0C0")  # violation in the old era
        engine.observe_exit(2, "Mallory", "B.R0C0")
        policy = CheckpointPolicy(every_events=1, retain_archived=2)
        assert len(engine.alerts) >= 1
        with engine.observe_stream(batch_size=4, checkpoint_policy=policy) as stream:
            stream.submit(MovementRecord(10, "Mallory", "B.R0C1", MovementKind.ENTER))
            stream.submit(MovementRecord(11, "Mallory", "B.R0C1", MovementKind.EXIT))
        # The scheduled checkpoint archived everything and the prune kept
        # only the two newest records (t=10, t=11): the old era's movements
        # are gone, and the alerts attesting to them went with them.
        assert engine.movement_db.oldest_retained_time == 10
        remaining = [alert.time for alert in engine.alerts.alerts]
        assert remaining, "the retained era's violation must survive"
        assert all(time >= 10 for time in remaining), remaining

    def test_prune_that_empties_the_store_retires_all_attested_alerts(self):
        """retain_archived=0 drops every movement — the alerts attesting to
        them must not outlive the store (the aggressive-retention edge)."""
        from repro.storage.ingest import CheckpointPolicy
        from repro.storage.movement_db import MovementKind, MovementRecord

        hierarchy = LocationHierarchy(grid_building("B", 2, 2))
        engine = Ltam(hierarchy)
        engine.observe_entry(1, "Mallory", "B.R0C0")  # violation at t=1
        policy = CheckpointPolicy(every_events=1, retain_archived=0)
        with engine.observe_stream(batch_size=4, checkpoint_policy=policy) as stream:
            stream.submit(MovementRecord(10, "Mallory", "B.R0C1", MovementKind.ENTER))
        assert len(engine.movement_db) == 0
        assert engine.movement_db.archived_count == 0
        assert engine.alerts.alerts == (), engine.alerts.alerts

    def test_prune_before_is_a_noop_without_a_boundary(self):
        from repro.engine.alerts import AlertSink

        sink = AlertSink()
        assert sink.prune_before(None) == 0
