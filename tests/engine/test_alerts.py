"""Unit tests for alerts and the alert sink."""

import pytest

from repro.engine.alerts import Alert, AlertKind, AlertSink


class TestAlert:
    def test_construction_and_str(self):
        alert = Alert(10, AlertKind.OVERSTAY, "Alice", "CAIS", "late")
        assert alert.kind is AlertKind.OVERSTAY
        assert "overstay" in str(alert)
        assert "Alice" in str(alert)

    def test_kind_coercion_from_string(self):
        alert = Alert(10, "unauthorized_entry", "Alice", "CAIS")
        assert alert.kind is AlertKind.UNAUTHORIZED_ENTRY

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Alert(10, "meteor_strike", "Alice", "CAIS")


class TestAlertSink:
    def test_emit_collects_in_order(self):
        sink = AlertSink()
        first = sink.emit(Alert(1, AlertKind.OVERSTAY, "Alice", "CAIS"))
        second = sink.emit(Alert(2, AlertKind.DENIED_REQUEST, "Bob", "Lab1"))
        assert sink.alerts == (first, second)
        assert len(sink) == 2
        assert list(sink) == [first, second]

    def test_filters(self):
        sink = AlertSink()
        sink.emit(Alert(1, AlertKind.OVERSTAY, "Alice", "CAIS"))
        sink.emit(Alert(2, AlertKind.OVERSTAY, "Bob", "Lab1"))
        sink.emit(Alert(3, AlertKind.UNAUTHORIZED_ENTRY, "Bob", "Lab1"))
        assert len(sink.of_kind(AlertKind.OVERSTAY)) == 2
        assert len(sink.for_subject("Bob")) == 2
        assert sink.counts_by_kind() == {
            AlertKind.OVERSTAY: 2,
            AlertKind.UNAUTHORIZED_ENTRY: 1,
        }

    def test_callbacks(self):
        sink = AlertSink()
        seen = []
        sink.subscribe(seen.append)
        alert = sink.emit(Alert(1, AlertKind.OVERSTAY, "Alice", "CAIS"))
        assert seen == [alert]

    def test_clear_keeps_callbacks(self):
        sink = AlertSink()
        seen = []
        sink.subscribe(seen.append)
        sink.emit(Alert(1, AlertKind.OVERSTAY, "Alice", "CAIS"))
        sink.clear()
        assert len(sink) == 0
        sink.emit(Alert(2, AlertKind.OVERSTAY, "Alice", "CAIS"))
        assert len(seen) == 2
