"""Unit tests for occupancy sessions and the session table."""

import pytest

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.engine.session import OccupancySession, SessionTable


AUTH = LocationTemporalAuthorization(("Alice", "CAIS"), (0, 20), (5, 30), 2, auth_id="A1")


class TestOccupancySession:
    def test_open_and_close(self):
        session = OccupancySession("Alice", "CAIS", 10, AUTH)
        assert session.is_open
        assert session.is_authorized
        session.close(15)
        assert not session.is_open
        assert session.exited_at == 15
        assert session.duration() == 5

    def test_double_close_rejected(self):
        session = OccupancySession("Alice", "CAIS", 10)
        session.close(12)
        with pytest.raises(EnforcementError):
            session.close(13)

    def test_close_before_entry_rejected(self):
        with pytest.raises(EnforcementError):
            OccupancySession("Alice", "CAIS", 10).close(5)

    def test_duration_of_open_session_needs_now(self):
        session = OccupancySession("Alice", "CAIS", 10)
        assert session.duration(now=14) == 4
        with pytest.raises(EnforcementError):
            session.duration()

    def test_overstay_detection(self):
        session = OccupancySession("Alice", "CAIS", 10, AUTH)
        assert not session.overstayed_at(30)   # exit window closes at 30
        assert session.overstayed_at(31)
        session.close(20)
        assert not session.overstayed_at(99)   # closed sessions never overstay

    def test_unauthorized_session_never_overstays(self):
        session = OccupancySession("Mallory", "CAIS", 10, None)
        assert not session.is_authorized
        assert not session.overstayed_at(1000)


class TestSessionTable:
    def test_open_close_current(self):
        table = SessionTable()
        session = table.open("Alice", "CAIS", 10, AUTH)
        assert table.current("Alice") is session
        assert len(table) == 1
        closed = table.close("Alice", 20)
        assert closed is session
        assert table.current("Alice") is None
        assert table.closed_sessions() == [session]

    def test_close_unknown_subject_returns_none(self):
        assert SessionTable().close("Ghost", 5) is None

    def test_reopening_force_closes_previous_session(self):
        table = SessionTable()
        first = table.open("Alice", "CAIS", 10)
        second = table.open("Alice", "Lab1", 15)
        assert table.current("Alice") is second
        assert first in table.closed_sessions()
        assert first.exited_at == 15

    def test_occupants(self):
        table = SessionTable()
        table.open("Alice", "CAIS", 10)
        table.open("Bob", "CAIS", 11)
        table.open("Carol", "Lab1", 12)
        assert table.occupants("CAIS") == ["Alice", "Bob"]
        assert table.occupants("Lab1") == ["Carol"]
        assert table.occupants("Lab2") == []

    def test_iteration_over_open_sessions(self):
        table = SessionTable()
        table.open("Alice", "CAIS", 10)
        table.open("Bob", "Lab1", 11)
        assert {session.subject for session in table} == {"Alice", "Bob"}
        assert len(table.open_sessions()) == 2
