"""Sharded occupancy layer: hash ring, shard-merge parity, parallel ingest.

The sharded projection must be observationally identical to the single
:class:`~repro.storage.occupancy.OccupancyService` it partitions — these
tests drive both with the same traces (the single-shard service is the
oracle) and compare every read, then exercise the genuinely concurrent
paths: multi-threaded ``record_many`` ingest and shard-by-shard
checkpointing.
"""

import threading

import pytest

from repro.errors import StorageError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)
from repro.storage.occupancy import OccupancyService
from repro.storage.sharding import (
    HashRing,
    ShardedOccupancyService,
    default_shard_count,
    resolve_shard_count,
    stable_hash,
)
from repro.temporal.interval import TimeInterval


@pytest.fixture(scope="module")
def trace():
    hierarchy = LocationHierarchy(grid_building("B", 4, 4))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=23)
    subjects = generate_subjects(60)
    return hierarchy, subjects, generator.movement_events(subjects, 5_000)


class TestHashRing:
    def test_deterministic_across_instances(self):
        first, second = HashRing(8), HashRing(8)
        for key in generate_subjects(200):
            assert first.shard_for(key) == second.shard_for(key)

    def test_stable_hash_is_process_independent(self):
        # CRC32 of the UTF-8 bytes — a frozen value, not the salted hash().
        assert stable_hash("Alice") == 3863974723

    def test_distribution_is_roughly_even(self):
        ring = HashRing(4)
        counts = [0] * 4
        for key in generate_subjects(4_000):
            counts[ring.shard_for(key)] += 1
        assert min(counts) > 0.5 * (4_000 / 4)

    def test_consistency_under_growth(self):
        # Growing the ring by one shard remaps a minority of the keys.
        small, grown = HashRing(4), HashRing(5)
        keys = generate_subjects(2_000)
        moved = sum(1 for key in keys if small.shard_for(key) != grown.shard_for(key))
        assert moved < len(keys) / 2

    def test_rejects_bad_configuration(self):
        with pytest.raises(StorageError):
            HashRing(0)
        with pytest.raises(StorageError):
            HashRing(2, virtual_nodes=0)

    def test_resolve_shard_count(self):
        assert resolve_shard_count(None) is None
        assert resolve_shard_count(3) == 3
        assert resolve_shard_count("auto") == default_shard_count()
        for bogus in (0, -1, True, 2.5, "four"):
            with pytest.raises(StorageError):
                resolve_shard_count(bogus)


class TestShardMergeParity:
    """Every sharded read must equal the single-shard oracle's."""

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_reads_match_single_shard_oracle(self, trace, shards):
        hierarchy, subjects, events = trace
        oracle = OccupancyService()
        oracle.apply_many(events)
        sharded = ShardedOccupancyService(shards)
        sharded.apply_many(events)

        assert sharded.subjects_inside() == oracle.subjects_inside()
        assert sharded.entry_counts() == oracle.entry_counts()
        locations = sorted({record.location for record in events})
        for location in locations:
            assert sharded.occupants(location) == oracle.occupants(location)
            assert sharded.occupancy(location) == oracle.occupancy(location)
            assert sharded.entry_histogram(location) == oracle.entry_histogram(location)
        window = TimeInterval(100, 900)
        for subject in subjects:
            assert sharded.current_location(subject) == oracle.current_location(subject)
            assert sharded.inside_since(subject) == oracle.inside_since(subject)
            for location in locations[:5]:
                assert sharded.entry_count(subject, location) == oracle.entry_count(
                    subject, location
                )
                assert sharded.entry_count(subject, location, window) == oracle.entry_count(
                    subject, location, window
                )
                assert sharded.last_entry(subject, location) == oracle.last_entry(
                    subject, location
                )
                assert sharded.last_movement(subject, location) == oracle.last_movement(
                    subject, location
                )

    def test_anomalies_merge_in_time_order(self):
        sharded = ShardedOccupancyService(4)
        sharded.apply(MovementRecord(5, "Alice", "A", MovementKind.EXIT))
        sharded.apply(MovementRecord(9, "Bob", "B", MovementKind.EXIT))
        sharded.apply(MovementRecord(2, "Carol", "C", MovementKind.EXIT))
        assert [anomaly.time for anomaly in sharded.anomalies] == [2, 5, 9]

    def test_snapshot_restore_round_trip(self, trace):
        _, _, events = trace
        sharded = ShardedOccupancyService(3)
        sharded.apply_many(events[:2_000])
        state = sharded.snapshot()
        sharded.apply_many(events[2_000:])
        sharded.restore(state)
        oracle = OccupancyService()
        oracle.apply_many(events[:2_000])
        assert sharded.subjects_inside() == oracle.subjects_inside()
        assert sharded.entry_counts() == oracle.entry_counts()

    def test_restore_rejects_mismatched_shard_count(self):
        with pytest.raises(StorageError):
            ShardedOccupancyService(2).restore(ShardedOccupancyService(3).snapshot())


class TestShardedDatabase:
    def test_state_matches_unsharded_database(self, trace):
        hierarchy, subjects, events = trace
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        sharded = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        sharded.record_many(events)

        assert len(sharded) == len(oracle)
        assert sharded.subjects_inside() == oracle.subjects_inside()
        for subject in subjects:
            assert sharded.history(subject=subject) == oracle.history(subject=subject)

    def test_parallel_ingest_matches_serial_oracle(self, trace):
        hierarchy, subjects, events = trace
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=23)
        streams = generator.movement_streams(subjects, 5_000, trackers=4)

        oracle = InMemoryMovementDatabase(hierarchy)
        for stream in streams:
            oracle.record_many(stream)

        sharded = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        threads = [
            threading.Thread(target=sharded.record_many, args=(stream,)) for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(sharded) == sum(len(stream) for stream in streams)
        assert sharded.subjects_inside() == oracle.subjects_inside()
        assert (
            sharded.occupancy_service.entry_counts()
            == oracle.occupancy_service.entry_counts()
        )
        for subject in subjects:
            assert sharded.history(subject=subject) == oracle.history(subject=subject)

    def test_history_is_a_valid_linearization(self, trace):
        hierarchy, subjects, events = trace
        sharded = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        for start in range(0, len(events), 500):  # several batches
            sharded.record_many(events[start : start + 500])
        merged = sharded.history()
        assert sorted(
            (record.time, record.subject, record.location, record.kind) for record in merged
        ) == sorted((record.time, record.subject, record.location, record.kind) for record in events)
        per_subject = {}
        for record in merged:
            per_subject.setdefault(record.subject, []).append(record)
        for subject in subjects:
            expected = [record for record in events if record.subject == subject]
            assert per_subject.get(subject, []) == expected

    def test_strict_mode_rejects_like_unsharded(self, trace):
        hierarchy, _, _ = trace
        strict_oracle = InMemoryMovementDatabase(hierarchy, strict=True)
        strict_sharded = ShardedInMemoryMovementDatabase(hierarchy, strict=True, shards=4)
        bogus = MovementRecord(5, "Nobody", sorted(hierarchy.primitive_names)[0], MovementKind.EXIT)
        with pytest.raises(StorageError) as oracle_error:
            strict_oracle.record(bogus)
        with pytest.raises(StorageError) as sharded_error:
            strict_sharded.record(bogus)
        assert str(oracle_error.value) == str(sharded_error.value)
        assert len(strict_sharded) == 0

    def test_validation_rejects_unknown_locations(self, trace):
        hierarchy, _, _ = trace
        sharded = ShardedInMemoryMovementDatabase(hierarchy, shards=2)
        with pytest.raises(StorageError):
            sharded.record(MovementRecord(1, "Alice", "nowhere", MovementKind.ENTER))
        assert len(sharded) == 0

    def test_clear_resets_everything(self, trace):
        hierarchy, _, events = trace
        sharded = ShardedInMemoryMovementDatabase(hierarchy, shards=3)
        sharded.record_many(events[:1_000])
        sharded.checkpoint()
        sharded.record_many(events[1_000:1_100])
        sharded.clear()
        assert len(sharded) == 0
        assert sharded.archived_count == 0
        assert sharded.history(include_archived=True) == []
        assert sharded.subjects_inside() == {}

    def test_sqlite_projection_sharding_parity(self, trace):
        hierarchy, subjects, events = trace
        plain = SqliteMovementDatabase(":memory:", hierarchy)
        plain.record_many(events)
        sharded = SqliteMovementDatabase(":memory:", hierarchy, shards=4)
        sharded.record_many(events)
        assert sharded.shard_count == 4
        assert sharded.subjects_inside() == plain.subjects_inside()
        window = TimeInterval(0, 2_000)
        for subject in subjects[:20]:
            location = plain.current_location(subject)
            if location is None:
                continue
            assert sharded.entry_count(subject, location) == plain.entry_count(subject, location)
            assert sharded.entry_count(subject, location, window) == plain.entry_count(
                subject, location, window
            )
