"""Unit tests for the User Profile Database (in-memory and SQLite backends)."""

import pytest

from repro.errors import StorageError
from repro.core.subjects import Subject, SubjectDirectory
from repro.storage.profile_db import InMemoryUserProfileDatabase, SqliteUserProfileDatabase


BACKENDS = [InMemoryUserProfileDatabase, SqliteUserProfileDatabase]


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def db(request):
    return request.param()


class TestCommonBehaviour:
    def test_add_and_get_subject(self, db):
        db.add_subject(Subject("Alice", "Alice L.", {"researcher"}, {"office": "CAIS"}))
        subject = db.get("Alice")
        assert subject.display_name == "Alice L."
        assert subject.has_role("researcher")
        assert subject.attribute("office") == "CAIS"
        assert "Alice" in db
        assert len(db) == 1

    def test_supervisor_relation(self, db):
        db.set_supervisor("Alice", "Bob")
        assert db.supervisor_of("Alice").name == "Bob"
        assert db.supervisor_of("Bob") is None
        assert [s.name for s in db.directory().subordinates_of("Bob")] == ["Alice"]

    def test_groups(self, db):
        db.add_to_group("cleaners", "Dave", "Eve")
        assert [s.name for s in db.members_of("cleaners")] == ["Dave", "Eve"]
        assert db.directory().groups_of("Dave") == {"cleaners"}

    def test_invalid_group_name(self, db):
        with pytest.raises(Exception):
            db.add_to_group("", "Dave")

    def test_self_supervision_rejected(self, db):
        with pytest.raises(Exception):
            db.set_supervisor("Alice", "Alice")

    def test_supervision_cycle_rejected(self, db):
        db.set_supervisor("Alice", "Bob")
        db.set_supervisor("Bob", "Carol")
        with pytest.raises(Exception):
            db.set_supervisor("Carol", "Alice")

    def test_directory_view_supports_rule_operators(self, db):
        db.set_supervisor("Alice", "Bob")
        directory = db.directory()
        assert isinstance(directory, SubjectDirectory)
        assert directory.supervisor_of("Alice").name == "Bob"


class TestInMemorySpecific:
    def test_wraps_existing_directory(self):
        directory = SubjectDirectory()
        directory.set_supervisor("Alice", "Bob")
        db = InMemoryUserProfileDatabase(directory)
        assert db.supervisor_of("Alice").name == "Bob"
        assert db.directory() is directory


class TestSqliteSpecific:
    def test_roundtrip_of_roles_and_attributes(self):
        db = SqliteUserProfileDatabase()
        db.add_subject(Subject("Alice", "Alice L.", {"researcher", "staff"}, {"office": "CAIS"}))
        restored = db.get("Alice")
        assert restored.roles == {"researcher", "staff"}
        assert restored.attribute("office") == "CAIS"

    def test_persistence_to_file(self, tmp_path):
        path = str(tmp_path / "profiles.db")
        first = SqliteUserProfileDatabase(path)
        first.set_supervisor("Alice", "Bob")
        first.add_to_group("cleaners", "Dave")
        first.close()
        second = SqliteUserProfileDatabase(path)
        assert second.supervisor_of("Alice").name == "Bob"
        assert [s.name for s in second.members_of("cleaners")] == ["Dave"]
        second.close()

    def test_directory_cache_invalidation_on_write(self):
        db = SqliteUserProfileDatabase()
        db.add_subject("Alice")
        before = db.directory()
        db.set_supervisor("Alice", "Bob")
        after = db.directory()
        assert after.supervisor_of("Alice").name == "Bob"
        assert before is not after

    def test_reregistration_updates_profile(self):
        db = SqliteUserProfileDatabase()
        db.add_subject(Subject("Alice"))
        db.add_subject(Subject("Alice", display_name="Alice L."))
        assert db.get("Alice").display_name == "Alice L."
