"""Checkpoint/compaction: bounded replay, crash-recovery parity, archives.

The contract under test: a checkpoint persists the projection snapshot and
(compacting) archives the covered log prefix, after which

* every occupancy read — windowed entry counts included — is unchanged,
* ``history()`` scans only events since the checkpoint while
  ``history(include_archived=True)`` still replays the full log,
* a stale SQLite database (a writer that bypassed the derived tables, the
  crash-recovery shape) reprimes by replaying only the post-checkpoint
  suffix, landing on exactly the state a full-log oracle reaches.
"""

import sqlite3

import pytest

from repro.errors import StorageError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)
from repro.temporal.interval import TimeInterval


@pytest.fixture(scope="module")
def trace():
    hierarchy = LocationHierarchy(grid_building("B", 4, 4))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=31)
    subjects = generate_subjects(40)
    return hierarchy, subjects, generator.movement_events(subjects, 4_000)


def assert_state_parity(database, oracle, subjects, locations):
    assert database.subjects_inside() == oracle.subjects_inside()
    window = TimeInterval(0, 10_000)
    for subject in subjects:
        for location in locations:
            assert database.entry_count(subject, location) == oracle.entry_count(
                subject, location
            ), (subject, location)
            assert database.entry_count(subject, location, window) == oracle.entry_count(
                subject, location, window
            )
    for location in locations:
        assert database.occupants(location) == oracle.occupants(location)


class TestInMemoryCheckpoint:
    def test_reads_unchanged_and_history_bounded(self, trace):
        hierarchy, subjects, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:3_000])
        receipt = database.checkpoint()
        database.record_many(events[3_000:])

        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)

        locations = sorted({record.location for record in events})[:6]
        assert_state_parity(database, oracle, subjects[:15], locations)
        assert receipt.position == 3_000
        assert receipt.archived == 3_000
        assert database.archived_count == 3_000
        assert len(database) == 1_000
        assert database.events_since_checkpoint == 1_000
        assert database.history() == events[3_000:]
        assert database.history(include_archived=True) == events
        assert database.history(subject=subjects[0], include_archived=True) == [
            record for record in events if record.subject == subjects[0]
        ]

    def test_checkpoint_state_is_a_plain_tuple_snapshot(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:500])
        database.checkpoint()
        assert isinstance(database.checkpoint_state, tuple)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events[:500])
        assert database.checkpoint_state == oracle.occupancy_service.snapshot()

    def test_non_compacting_checkpoint_keeps_the_log(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:100])
        receipt = database.checkpoint(compact=False)
        assert receipt.archived == 0
        assert len(database) == 100
        assert database.archived_count == 0
        assert database.events_since_checkpoint == 0

    def test_repeated_checkpoints_accumulate_archive(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:100])
        database.checkpoint()
        database.record_many(events[100:250])
        receipt = database.checkpoint()
        assert receipt.position == 250
        assert receipt.archived == 150
        assert database.archived_count == 250
        assert database.history(include_archived=True) == events[:250]

    def test_base_class_without_checkpoint_support_raises(self, trace):
        # The default MovementDatabase.checkpoint raises for exotic backends.
        from repro.storage.movement_db import MovementDatabase

        class Duck(MovementDatabase):
            def record(self, record):  # pragma: no cover - unused
                return record

            def clear(self):  # pragma: no cover - unused
                pass

            def history(self, **kwargs):  # pragma: no cover - unused
                return []

        with pytest.raises(StorageError):
            Duck().checkpoint()


class TestShardedCheckpoint:
    def test_checkpoint_and_archive_across_shards(self, trace):
        hierarchy, subjects, events = trace
        database = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        database.record_many(events[:3_000])
        receipt = database.checkpoint()
        database.record_many(events[3_000:])

        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)

        locations = sorted({record.location for record in events})[:6]
        assert_state_parity(database, oracle, subjects[:15], locations)
        assert receipt.archived == 3_000
        assert database.archived_count == 3_000
        assert len(database) == 1_000
        assert database.events_since_checkpoint == 1_000
        full = database.history(include_archived=True)
        assert len(full) == len(events)
        for subject in subjects[:10]:
            assert [record for record in full if record.subject == subject] == [
                record for record in events if record.subject == subject
            ]


class TestSqliteCheckpoint:
    def test_checkpoint_then_reopen_matches_full_replay_oracle(self, tmp_path, trace):
        hierarchy, subjects, events = trace
        path = str(tmp_path / "movements.db")
        database = SqliteMovementDatabase(path, hierarchy)
        database.record_many(events[:3_000])
        receipt = database.checkpoint()
        database.record_many(events[3_000:])
        assert receipt.archived == 3_000
        assert database.archived_count == 3_000
        assert database.events_since_checkpoint == 1_000
        database.close()

        reopened = SqliteMovementDatabase(path, hierarchy)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        locations = sorted({record.location for record in events})[:6]
        assert_state_parity(reopened, oracle, subjects[:15], locations)
        assert reopened.history() == events[3_000:]
        assert reopened.history(include_archived=True) == events
        reopened.close()

    def test_crash_recovery_replays_only_the_suffix(self, tmp_path, trace):
        """A foreign writer appends raw log rows; reopen must self-heal.

        The recovery replay is primed from the checkpoint tables, so only
        the post-checkpoint rows are folded — verified here by state parity
        with a full-log oracle (the bounded *cost* is the benchmark's job).
        """
        hierarchy, subjects, events = trace
        path = str(tmp_path / "crashed.db")
        database = SqliteMovementDatabase(path, hierarchy)
        database.record_many(events[:3_000])
        database.checkpoint()
        database.close()

        # Simulate a crashed/legacy writer: movements rows land without the
        # derived tables or the applied_seq stamp being maintained.
        raw = sqlite3.connect(path)
        raw.executemany(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            [(r.time, r.subject, r.location, r.kind.value) for r in events[3_000:]],
        )
        raw.commit()
        raw.close()

        reopened = SqliteMovementDatabase(path, hierarchy)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        locations = sorted({record.location for record in events})[:6]
        assert_state_parity(reopened, oracle, subjects[:15], locations)
        reopened.close()

    def test_recovery_without_checkpoint_still_full_replays(self, tmp_path, trace):
        hierarchy, subjects, events = trace
        path = str(tmp_path / "legacy.db")
        raw = sqlite3.connect(path)
        seed = SqliteMovementDatabase(path, hierarchy)  # creates the schema
        seed.close()
        raw.executemany(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            [(r.time, r.subject, r.location, r.kind.value) for r in events[:1_000]],
        )
        raw.commit()
        raw.close()
        reopened = SqliteMovementDatabase(path, hierarchy)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events[:1_000])
        assert reopened.subjects_inside() == oracle.subjects_inside()
        reopened.close()

    def test_windowed_counts_span_the_archive_boundary(self, trace):
        hierarchy, subjects, events = trace
        database = SqliteMovementDatabase(":memory:", hierarchy)
        database.record_many(events)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        database.checkpoint()  # everything archived; live log empty
        assert len(database) == 0
        window = TimeInterval(0, 10_000)
        for subject in subjects[:15]:
            location = oracle.current_location(subject)
            if location is None:
                continue
            assert database.entry_count(subject, location, window) == oracle.entry_count(
                subject, location, window
            )
        database.close()

    def test_last_reads_fall_back_to_the_archive(self, tmp_path, trace):
        hierarchy, subjects, events = trace
        path = str(tmp_path / "archive-reads.db")
        database = SqliteMovementDatabase(path, hierarchy)
        database.record_many(events)
        database.checkpoint()
        database.close()
        reopened = SqliteMovementDatabase(path, hierarchy)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        hits = 0
        for subject in subjects:
            for location in sorted({record.location for record in events})[:4]:
                expected_last = oracle.last_movement(subject, location)
                expected_entry = oracle.last_entry(subject, location)
                if expected_last is None and expected_entry is None:
                    continue
                hits += 1
                assert reopened.last_movement(subject, location) == expected_last
                assert reopened.last_entry(subject, location) == expected_entry
        assert hits > 0
        reopened.close()

    def test_checkpoint_inside_bulk_scope_is_rejected(self, trace):
        hierarchy, _, events = trace
        database = SqliteMovementDatabase(":memory:", hierarchy)
        database.record_many(events[:10])
        with pytest.raises(StorageError):
            with database.bulk():
                database.checkpoint()
        database.close()

    def test_clear_resets_checkpoint_and_archive(self, trace):
        hierarchy, _, events = trace
        database = SqliteMovementDatabase(":memory:", hierarchy)
        database.record_many(events[:200])
        database.checkpoint()
        database.record_many(events[200:300])
        database.clear()
        assert len(database) == 0
        assert database.archived_count == 0
        assert database.events_since_checkpoint == 0
        assert database.history(include_archived=True) == []
        # The database keeps working after the reset.
        database.record_many(events[:50])
        assert len(database) == 50
        database.close()


class TestCheckpointRegressions:
    """Receipts stay truthful across repeated and snapshot-only checkpoints."""

    def test_repeated_non_compacting_checkpoints_do_not_double_count(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:3])
        first = database.checkpoint(compact=False)
        second = database.checkpoint(compact=False)
        assert first.position == 3
        assert second.position == 3
        assert database.events_since_checkpoint == 0
        third = database.checkpoint()  # compacting, still 3 events ever
        assert third.position == 3
        assert third.archived == 3

    def test_in_memory_bulk_scope_rolls_back_storage(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        database.record_many(events[:100])
        before_len = len(database)
        before_state = database.subjects_inside()
        location = sorted(hierarchy.primitive_names)[0]
        with pytest.raises(StorageError):
            with database.bulk():
                database.record(events[100])
                # A strict-mode inconsistent exit aborts the scope...
                database.record(MovementRecord(9_999, "Nobody", location, MovementKind.EXIT))
        # ...and the records landed inside it are rolled back whole.
        assert len(database) == before_len
        assert database.subjects_inside() == before_state
        assert database.events_since_checkpoint == before_len

    def test_in_memory_checkpoint_inside_bulk_scope_is_rejected(self, trace):
        hierarchy, _, events = trace
        database = InMemoryMovementDatabase(hierarchy)
        database.record_many(events[:10])
        with pytest.raises(StorageError):
            with database.bulk():
                database.checkpoint()
        # The guard kept the archive untouched and the scope intact.
        assert database.archived_count == 0
        assert len(database) == 10
