"""Backend parity: the in-memory and SQLite authorization stores must agree.

Every query the access-control engine issues — pair lookup, cascading
revocation, valid-at-time — is run against both backends loaded with the
same authorization set, and the answers are compared structurally.
"""

import pytest

from repro.errors import DuplicateRecordError, MissingRecordError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.storage.authorization_db import (
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)

BACKENDS = {
    "memory": InMemoryAuthorizationDatabase,
    "sqlite": SqliteAuthorizationDatabase,
}


def seed_authorizations():
    return [
        LocationTemporalAuthorization(("Alice", "CAIS"), (10, 20), (10, 50), 2, auth_id="a1"),
        LocationTemporalAuthorization(("Alice", "CAIS"), (100, 200), (100, 250), auth_id="a2"),
        LocationTemporalAuthorization(("Alice", "CHIPES"), (0, 40), (0, 60), 1, auth_id="a3"),
        LocationTemporalAuthorization(("Bob", "CAIS"), (15, 30), (15, 90), 3, auth_id="a4"),
        LocationTemporalAuthorization(
            ("Bob", "CHIPES"), (5, 25), (5, 35), UNLIMITED_ENTRIES,
            auth_id="a5", derived_from="a4", rule_id="r1",
        ),
        LocationTemporalAuthorization(
            ("Carol", "CAIS"), (0, 10), (0, 20), 1, auth_id="a6", derived_from="a4",
        ),
    ]


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def db(request):
    database = BACKENDS[request.param]()
    database.add_all(seed_authorizations())
    return database


@pytest.fixture
def both():
    memory = InMemoryAuthorizationDatabase()
    sqlite = SqliteAuthorizationDatabase()
    for backend in (memory, sqlite):
        backend.add_all(seed_authorizations())
    return memory, sqlite


def by_id(authorizations):
    return {auth.auth_id: auth for auth in authorizations}


class TestSingleBackendBehavior:
    def test_pair_lookup(self, db):
        assert {a.auth_id for a in db.for_subject_location("Alice", "CAIS")} == {"a1", "a2"}
        assert db.for_subject_location("Alice", "Narnia") == []

    def test_subject_and_location_lookup(self, db):
        assert {a.auth_id for a in db.for_subject("Bob")} == {"a4", "a5"}
        assert {a.auth_id for a in db.for_location("CAIS")} == {"a1", "a2", "a4", "a6"}

    def test_duplicate_id_rejected(self, db):
        with pytest.raises(DuplicateRecordError):
            db.add(LocationTemporalAuthorization(("Eve", "CAIS"), (0, 1), (0, 2), auth_id="a1"))

    def test_missing_id_raises(self, db):
        with pytest.raises(MissingRecordError):
            db.get("nope")
        with pytest.raises(MissingRecordError):
            db.revoke("nope")

    def test_cascading_revoke(self, db):
        revoked = db.revoke_cascading("a4")
        assert {a.auth_id for a in revoked} == {"a4", "a5", "a6"}
        assert "a5" not in db
        assert {a.auth_id for a in db.all()} == {"a1", "a2", "a3"}

    def test_enterable_at(self, db):
        assert {a.auth_id for a in db.enterable_at(15)} == {"a1", "a3", "a4", "a5"}
        assert {a.auth_id for a in db.enterable_at(15, subject="Alice")} == {"a1", "a3"}
        assert {a.auth_id for a in db.enterable_at(15, location="CAIS")} == {"a1", "a4"}
        assert {a.auth_id for a in db.enterable_at(15, subject="Alice", location="CAIS")} == {"a1"}


class TestCrossBackendParity:
    def test_pair_lookup_parity(self, both):
        memory, sqlite = both
        for subject, location in [("Alice", "CAIS"), ("Bob", "CHIPES"), ("Carol", "CAIS"), ("Eve", "CAIS")]:
            assert by_id(memory.for_subject_location(subject, location)) == by_id(
                sqlite.for_subject_location(subject, location)
            )

    def test_round_trip_preserves_fields(self, both):
        memory, sqlite = both
        for auth_id in ("a1", "a2", "a5"):
            left, right = memory.get(auth_id), sqlite.get(auth_id)
            assert left == right
            assert left.derived_from == right.derived_from
            assert left.rule_id == right.rule_id
            assert left.created_at == right.created_at
            assert (left.max_entries is UNLIMITED_ENTRIES) == (right.max_entries is UNLIMITED_ENTRIES)

    def test_cascading_revoke_parity(self, both):
        memory, sqlite = both
        removed_memory = {a.auth_id for a in memory.revoke_cascading("a4")}
        removed_sqlite = {a.auth_id for a in sqlite.revoke_cascading("a4")}
        assert removed_memory == removed_sqlite
        assert by_id(memory.all()) == by_id(sqlite.all())

    def test_enterable_at_parity(self, both):
        memory, sqlite = both
        for time in (0, 5, 15, 40, 150, 1000):
            assert by_id(memory.enterable_at(time)) == by_id(sqlite.enterable_at(time))
            assert by_id(memory.enterable_at(time, subject="Alice")) == by_id(
                sqlite.enterable_at(time, subject="Alice")
            )
            assert by_id(memory.enterable_at(time, location="CHIPES")) == by_id(
                sqlite.enterable_at(time, location="CHIPES")
            )
