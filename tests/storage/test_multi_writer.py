"""Two writer instances over one SQLite file converge identically.

The fenced pickup-before-write (``BEGIN IMMEDIATE``) makes pickup +
insert + commit one unit under the file's single write lock, so two
``SqliteMovementDatabase`` instances interleaving writes fold each
other's rows exactly once — the projection each holds matches a fresh
instance primed from the file.
"""

from __future__ import annotations

import threading

from repro.storage.movement_db import MovementKind, MovementRecord, SqliteMovementDatabase


def _canonical(db):
    """(time, subject, location, kind) for every row, in file order."""
    return [
        (r.time, r.subject, r.location, r.kind)
        for r in db.history(include_archived=True)
    ]


def test_interleaved_writers_fold_each_other_exactly_once(tmp_path):
    path = str(tmp_path / "movements.db")
    alpha = SqliteMovementDatabase(path)
    beta = SqliteMovementDatabase(path)
    try:
        # Strict alternation: every write on one instance happens after a
        # committed write it has never seen from the other.
        for step in range(40):
            writer = alpha if step % 2 == 0 else beta
            subject = f"user-{step % 5}"
            kind = MovementKind.ENTER if (step // 5) % 2 == 0 else MovementKind.EXIT
            writer.record(MovementRecord(step, subject, "CAIS", kind))

        alpha.pickup()
        beta.pickup()
        fresh = SqliteMovementDatabase(path)
        try:
            expected = _canonical(fresh)
            assert len(expected) == 40  # every row exactly once, none doubled
            assert _canonical(alpha) == expected
            assert _canonical(beta) == expected
            for subject in {f"user-{i}" for i in range(5)}:
                assert alpha.current_location(subject) == fresh.current_location(subject)
                assert beta.current_location(subject) == fresh.current_location(subject)
        finally:
            fresh.close()
    finally:
        alpha.close()
        beta.close()


def test_batch_writers_do_not_orphan_or_double_fold(tmp_path):
    path = str(tmp_path / "movements.db")
    alpha = SqliteMovementDatabase(path)
    beta = SqliteMovementDatabase(path)
    try:
        alpha.record_many(
            [MovementRecord(t, "Alice", "CAIS", MovementKind.ENTER) for t in range(10)]
        )
        beta.record_many(
            [MovementRecord(t, "Bob", "CAIS", MovementKind.ENTER) for t in range(10)]
        )
        alpha.record_many(
            [MovementRecord(20 + t, "Carol", "CAIS", MovementKind.ENTER) for t in range(10)]
        )
        alpha.pickup()
        beta.pickup()
        assert len(_canonical(alpha)) == 30
        assert _canonical(alpha) == _canonical(beta)
        # entry counters are derived inside the same fenced transaction
        assert alpha.entry_count("Bob", "CAIS") == beta.entry_count("Bob", "CAIS") == 10
    finally:
        alpha.close()
        beta.close()


def test_concurrent_writer_threads_converge(tmp_path):
    """Two instances hammered from two threads lose and duplicate nothing."""
    path = str(tmp_path / "movements.db")
    alpha = SqliteMovementDatabase(path)
    beta = SqliteMovementDatabase(path)
    per_writer = 150
    errors = []

    def pound(db, subject):
        try:
            for t in range(per_writer):
                db.record(MovementRecord(t, subject, "CAIS", MovementKind.ENTER))
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=pound, args=(alpha, "Alice")),
            threading.Thread(target=pound, args=(beta, "Bob")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        alpha.pickup()
        beta.pickup()
        fresh = SqliteMovementDatabase(path)
        try:
            rows = _canonical(fresh)
            assert len(rows) == 2 * per_writer
            assert sorted(rows) == sorted(_canonical(alpha)) == sorted(_canonical(beta))
            assert len(_canonical(alpha)) == 2 * per_writer  # exactly-once fold
        finally:
            fresh.close()
    finally:
        alpha.close()
        beta.close()
