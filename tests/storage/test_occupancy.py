"""The event-indexed occupancy read model: unit tests and backend parity.

Both movement-database backends fold every record into a shared
:class:`~repro.storage.occupancy.OccupancyService` projection; these tests
pin the projection's semantics (occupancy map, entry counters/timelines,
last entry/movement, anomaly notes, strict mode) and assert the in-memory
and SQLite backends answer every projection-served read identically —
including after the SQLite backend reopens a file and reprimes itself from
its derived tables instead of replaying the log.
"""

import pytest

from repro.errors import StorageError
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    SqliteMovementDatabase,
)
from repro.storage.occupancy import OccupancyService
from repro.temporal.interval import TimeInterval


def both_backends(**kwargs):
    return (
        InMemoryMovementDatabase(**kwargs),
        SqliteMovementDatabase(":memory:", **kwargs),
    )


def sample_records():
    return [
        MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER),
        MovementRecord(16, "Bob", "CHIPES", MovementKind.ENTER),
        MovementRecord(20, "Bob", "CHIPES", MovementKind.EXIT),
        MovementRecord(25, "Bob", "CHIPES", MovementKind.ENTER),
        MovementRecord(30, "Carol", "CAIS", MovementKind.ENTER),
        MovementRecord(40, "Alice", "CAIS", MovementKind.EXIT),
        MovementRecord(55, "Alice", "CHIPES", MovementKind.ENTER),
    ]


class TestOccupancyService:
    def test_projection_tracks_occupancy(self):
        service = OccupancyService()
        service.apply_many(sample_records())
        assert service.current_location("Alice") == "CHIPES"
        assert service.current_location("Ghost") is None
        assert service.occupants("CAIS") == ["Carol"]
        assert service.occupants("CHIPES") == ["Alice", "Bob"]
        assert service.occupancy("CHIPES") == 2
        assert service.subjects_inside() == {
            "Alice": "CHIPES",
            "Bob": "CHIPES",
            "Carol": "CAIS",
        }
        assert service.inside_since("Alice") == 55

    def test_entry_counters_and_windows(self):
        service = OccupancyService()
        service.apply_many(sample_records())
        assert service.entry_count("Bob", "CHIPES") == 2
        assert service.entry_count("Bob", "CHIPES", TimeInterval(0, 20)) == 1
        assert service.entry_count("Bob", "CHIPES", TimeInterval.from_onwards(17)) == 1
        assert service.entry_count("Alice", "CAIS", TimeInterval(10, 10)) == 1
        assert service.entry_count("Nobody", "CAIS") == 0
        assert service.entry_count("Nobody", "CAIS", TimeInterval(0, 100)) == 0

    def test_last_entry_and_last_movement(self):
        service = OccupancyService()
        service.apply_many(sample_records())
        assert service.last_entry("Bob", "CHIPES").time == 25
        assert service.last_movement("Bob", "CHIPES").time == 25
        assert service.last_movement("Alice", "CAIS").kind is MovementKind.EXIT
        assert service.last_entry("Alice", "CAIS").time == 10
        assert service.last_entry("Ghost", "CAIS") is None

    def test_out_of_order_entry_keeps_timeline_sorted(self):
        service = OccupancyService()
        service.apply(MovementRecord(50, "Alice", "CAIS", MovementKind.ENTER))
        service.apply(MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER))
        service.apply(MovementRecord(30, "Alice", "CAIS", MovementKind.ENTER))
        assert service.entry_count("Alice", "CAIS", TimeInterval(0, 35)) == 2

    def test_entry_histogram_buckets(self):
        service = OccupancyService(histogram_bucket=10)
        service.apply_many(sample_records())
        # CAIS entries at t=10 and t=30 -> buckets 1 and 3.
        assert service.entry_histogram("CAIS") == {1: 1, 3: 1}
        # CHIPES entries at t=16, 25, 55 -> buckets 1, 2, 5.
        assert service.entry_histogram("CHIPES") == {1: 1, 2: 1, 5: 1}
        assert service.entry_histogram("Nowhere") == {}
        with pytest.raises(StorageError):
            OccupancyService(histogram_bucket=0)

    def test_windowed_counts_rejected_without_timelines(self):
        service = OccupancyService(track_timelines=False)
        service.apply(MovementRecord(5, "Alice", "CAIS", MovementKind.ENTER))
        assert service.entry_count("Alice", "CAIS") == 1
        with pytest.raises(StorageError):
            service.entry_count("Alice", "CAIS", TimeInterval(0, 10))

    def test_anomalous_exits_are_noted_not_applied(self):
        service = OccupancyService()
        service.apply(MovementRecord(1, "Alice", "CAIS", MovementKind.ENTER))
        # Exit from a location Alice is not inside: noted, occupancy kept.
        service.apply(MovementRecord(2, "Alice", "CHIPES", MovementKind.EXIT))
        assert service.current_location("Alice") == "CAIS"
        # Exit with no tracked entry at all: noted, still a no-op.
        service.apply(MovementRecord(3, "Bob", "CAIS", MovementKind.EXIT))
        assert service.current_location("Bob") is None
        notes = service.anomalies
        assert len(notes) == 2
        assert "tracked inside 'CAIS'" in notes[0].note
        assert "not tracked inside any location" in notes[1].note

    def test_clear_resets_everything(self):
        service = OccupancyService()
        service.apply_many(sample_records())
        service.clear()
        assert service.subjects_inside() == {}
        assert service.entry_count("Bob", "CHIPES") == 0
        assert service.anomalies == ()
        assert service.entry_histogram("CAIS") == {}


class TestBackendParity:
    """Both backends must answer every projection read identically."""

    @pytest.fixture
    def loaded(self):
        memory, sqlite = both_backends()
        for db in (memory, sqlite):
            db.record_many(sample_records())
        yield memory, sqlite
        sqlite.close()

    def test_occupancy_reads_agree(self, loaded):
        memory, sqlite = loaded
        assert memory.subjects_inside() == sqlite.subjects_inside()
        for location in ("CAIS", "CHIPES", "Nowhere"):
            assert memory.occupants(location) == sqlite.occupants(location)
            assert memory.occupancy(location) == sqlite.occupancy(location)
        for subject in ("Alice", "Bob", "Carol", "Ghost"):
            assert memory.current_location(subject) == sqlite.current_location(subject)

    def test_entry_counts_agree(self, loaded):
        memory, sqlite = loaded
        windows = (
            None,
            TimeInterval(0, 20),
            TimeInterval(17, 60),
            TimeInterval.from_onwards(26),
            TimeInterval.instant(25),
        )
        for subject in ("Alice", "Bob", "Carol", "Ghost"):
            for location in ("CAIS", "CHIPES"):
                for window in windows:
                    assert memory.entry_count(subject, location, window) == sqlite.entry_count(
                        subject, location, window
                    ), (subject, location, window)

    def test_last_reads_agree(self, loaded):
        memory, sqlite = loaded
        for subject in ("Alice", "Bob", "Ghost"):
            for location in ("CAIS", "CHIPES"):
                assert memory.last_entry(subject, location) == sqlite.last_entry(subject, location)
                assert memory.last_movement(subject, location) == sqlite.last_movement(
                    subject, location
                )

    def test_mismatched_exit_keeps_tracked_location_on_both(self):
        memory, sqlite = both_backends()
        for db in (memory, sqlite):
            db.record_entry(1, "Alice", "CAIS")
            db.record_exit(2, "Alice", "CHIPES")  # bogus: tracked inside CAIS
        # The seed backends disagreed here (SQLite forgot the location, the
        # in-memory store kept it); the shared projection pins one answer.
        assert memory.current_location("Alice") == "CAIS"
        assert sqlite.current_location("Alice") == "CAIS"
        assert memory.occupants("CAIS") == sqlite.occupants("CAIS") == ["Alice"]
        for db in (memory, sqlite):
            assert len(db.anomalies) == 1
            assert "tracked inside 'CAIS'" in db.anomalies[0].note
        sqlite.close()

    def test_strict_mode_raises_identically(self):
        memory, sqlite = both_backends(strict=True)
        for db in (memory, sqlite):
            db.record_entry(1, "Alice", "CAIS")
        errors = []
        for db in (memory, sqlite):
            with pytest.raises(StorageError) as excinfo:
                db.record_exit(2, "Alice", "CHIPES")
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "inconsistent exit rejected" in errors[0]
        # Nothing was recorded, the subject is still tracked.
        for db in (memory, sqlite):
            assert len(db) == 1
            assert db.current_location("Alice") == "CAIS"
        sqlite.close()

    def test_strict_record_many_is_all_or_nothing(self):
        for db in both_backends(strict=True):
            with pytest.raises(StorageError):
                db.record_many(
                    [
                        MovementRecord(1, "Alice", "CAIS", MovementKind.ENTER),
                        MovementRecord(2, "Bob", "CAIS", MovementKind.EXIT),  # bogus
                    ]
                )
            assert len(db) == 0
            assert db.current_location("Alice") is None


class TestSqliteDerivedTables:
    def test_reopen_primes_projection_from_derived_tables(self, tmp_path):
        path = str(tmp_path / "movements.db")
        first = SqliteMovementDatabase(path)
        first.record_many(sample_records())
        first.close()

        second = SqliteMovementDatabase(path)
        memory = InMemoryMovementDatabase()
        memory.record_many(sample_records())
        assert second.subjects_inside() == memory.subjects_inside()
        for location in ("CAIS", "CHIPES"):
            assert second.occupants(location) == memory.occupants(location)
        for subject in ("Alice", "Bob", "Carol"):
            for location in ("CAIS", "CHIPES"):
                assert second.entry_count(subject, location) == memory.entry_count(
                    subject, location
                )
                assert second.entry_count(
                    subject, location, TimeInterval(0, 30)
                ) == memory.entry_count(subject, location, TimeInterval(0, 30))
                assert second.last_entry(subject, location) == memory.last_entry(
                    subject, location
                )
                assert second.last_movement(subject, location) == memory.last_movement(
                    subject, location
                )
        second.close()

    def test_stale_derived_tables_are_rebuilt(self, tmp_path):
        # A database written before the derived tables existed: movement rows
        # present, projection tables empty.  Opening must heal it.
        import sqlite3

        path = str(tmp_path / "legacy.db")
        connection = sqlite3.connect(path)
        connection.executescript(
            """
            CREATE TABLE movements (
                seq      INTEGER PRIMARY KEY AUTOINCREMENT,
                time     INTEGER NOT NULL,
                subject  TEXT NOT NULL,
                location TEXT NOT NULL,
                kind     TEXT NOT NULL CHECK (kind IN ('enter', 'exit'))
            );
            """
        )
        connection.executemany(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            [(r.time, r.subject, r.location, r.kind.value) for r in sample_records()],
        )
        connection.commit()
        connection.close()

        db = SqliteMovementDatabase(path)
        assert db.subjects_inside() == {
            "Alice": "CHIPES",
            "Bob": "CHIPES",
            "Carol": "CAIS",
        }
        assert db.entry_count("Bob", "CHIPES") == 2
        assert db.last_entry("Bob", "CHIPES").time == 25
        db.close()

    def test_clear_resets_derived_tables(self, tmp_path):
        path = str(tmp_path / "cleared.db")
        db = SqliteMovementDatabase(path)
        db.record_many(sample_records())
        db.clear()
        assert len(db) == 0
        assert db.subjects_inside() == {}
        db.close()
        reopened = SqliteMovementDatabase(path)
        assert reopened.subjects_inside() == {}
        assert reopened.entry_count("Bob", "CHIPES") == 0
        reopened.close()

    def test_bulk_scope_commits_once_and_rolls_back_cleanly(self):
        db = SqliteMovementDatabase(":memory:")
        with db.bulk():
            db.record_entry(1, "Alice", "CAIS")
            db.record_entry(2, "Bob", "CAIS")
        assert db.occupants("CAIS") == ["Alice", "Bob"]
        # A failure inside the scope rolls back and restores the projection.
        with pytest.raises(StorageError):
            with db.bulk():
                db.record_entry(3, "Carol", "CAIS")
                raise StorageError("boom")
        assert len(db) == 2
        assert db.occupants("CAIS") == ["Alice", "Bob"]
        db.close()

    def test_record_many_joins_enclosing_bulk_transaction(self):
        # record_many inside bulk() must not commit on its own: a failure at
        # the end of the scope undoes the whole scope, batch included.
        db = SqliteMovementDatabase(":memory:")
        db.record_entry(0, "Zed", "CAIS")
        with pytest.raises(StorageError):
            with db.bulk():
                db.record_many([MovementRecord(1, "Alice", "CAIS", MovementKind.ENTER)])
                db.record_entry(2, "Bob", "CAIS")
                raise StorageError("boom")
        assert len(db) == 1
        assert db.occupants("CAIS") == ["Zed"]
        db.close()

    def test_rollback_preserves_committed_anomalies_and_histograms(self):
        db = SqliteMovementDatabase(":memory:")
        db.record_entry(1, "Alice", "CAIS")
        db.record_exit(2, "Alice", "CHIPES")  # committed anomalous exit
        assert len(db.anomalies) == 1
        histogram_before = db.occupancy_service.entry_histogram("CAIS")
        assert histogram_before != {}
        with pytest.raises(StorageError):
            with db.bulk():
                db.record_entry(3, "Bob", "CAIS")
                raise StorageError("boom")
        # The rolled-back scope must not erase in-process state that belongs
        # to records which did commit.
        assert len(db.anomalies) == 1
        assert db.occupancy_service.entry_histogram("CAIS") == histogram_before
        assert db.current_location("Alice") == "CAIS"
        db.close()
