"""Checkpoint scheduling on the ingest writer, retry-able batch failures,
and archive retention across the movement backends."""

import time

import pytest

from repro.errors import IngestError, StorageError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.api import Ltam
from repro.storage.ingest import BatchFailure, CheckpointPolicy, MovementIngestor
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)


@pytest.fixture()
def deployment():
    hierarchy = LocationHierarchy(grid_building("B", 3, 3))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=19)
    subjects = generate_subjects(25)
    return hierarchy, subjects, generator.movement_events(subjects, 1_000)


class TestCheckpointPolicyValidation:
    def test_needs_a_trigger(self):
        with pytest.raises(IngestError):
            CheckpointPolicy()

    def test_rejects_bad_values(self):
        with pytest.raises(IngestError):
            CheckpointPolicy(every_events=0)
        with pytest.raises(IngestError):
            CheckpointPolicy(every_seconds=0)
        with pytest.raises(IngestError):
            CheckpointPolicy(every_events=10, retain_archived=-1)

    def test_ingestor_requires_checkpoint_callable_with_policy(self):
        database = InMemoryMovementDatabase()
        with pytest.raises(IngestError):
            MovementIngestor(
                database.record_many, checkpoint_policy=CheckpointPolicy(every_events=10)
            )


class TestScheduledCheckpoints:
    def test_every_events_checkpoints_during_the_stream(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        policy = CheckpointPolicy(every_events=200)
        with MovementIngestor(
            database.record_many,
            batch_size=100,
            checkpoint_policy=policy,
            checkpoint=lambda: policy.run(database),
        ) as ingestor:
            # Chunked like a tracker stream; each chunk is one flush unit.
            for start in range(0, len(events), 100):
                ingestor.submit_many(events[start : start + 100])
            ingestor.flush()
            assert ingestor.checkpoints >= len(events) // 200 - 1
        assert ingestor.checkpoint_errors == ()
        # The stream was compacted as it flowed: the live log is bounded by
        # the policy interval, the archive holds the rest.
        assert database.archived_count + len(database) == len(events)
        assert database.archived_count >= len(events) - 400
        assert database.events_since_checkpoint <= 400

    def test_every_seconds_checkpoints_an_idle_stream_once(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        policy = CheckpointPolicy(every_seconds=0.05)
        with MovementIngestor(
            database.record_many,
            batch_size=10_000,  # never flushes by size
            max_latency=0.01,
            checkpoint_policy=policy,
            checkpoint=lambda: policy.run(database),
        ) as ingestor:
            ingestor.submit_many(events[:100])
            deadline = time.monotonic() + 2.0
            while ingestor.checkpoints == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert ingestor.checkpoints >= 1
            # Idle from here on: the writer must not re-checkpoint an
            # unchanged database.
            settled = ingestor.checkpoints
            time.sleep(0.2)
            assert ingestor.checkpoints == settled
        assert database.archived_count == 100

    def test_checkpoint_errors_do_not_stop_ingest(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)

        def broken_checkpoint():
            raise StorageError("checkpoint target unavailable")

        policy = CheckpointPolicy(every_events=100)
        with MovementIngestor(
            database.record_many,
            batch_size=100,
            checkpoint_policy=policy,
            checkpoint=broken_checkpoint,
        ) as ingestor:
            ingestor.submit_many(events)
            ingestor.flush()  # batch failures would raise here; none expected
        assert len(database) == len(events)
        assert ingestor.checkpoints == 0
        assert len(ingestor.checkpoint_errors) >= 1
        assert all(isinstance(e, StorageError) for e in ingestor.checkpoint_errors)

    def test_retention_caps_the_archive(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        policy = CheckpointPolicy(every_events=100, retain_archived=150)
        with MovementIngestor(
            database.record_many,
            batch_size=50,
            checkpoint_policy=policy,
            checkpoint=lambda: policy.run(database),
        ) as ingestor:
            for start in range(0, len(events), 50):
                ingestor.submit_many(events[start : start + 50])
            ingestor.flush()
        assert ingestor.checkpoints >= 5
        assert database.archived_count <= 150

    def test_engine_observe_stream_accepts_a_policy(self, deployment):
        hierarchy, _, events = deployment
        engine = Ltam(hierarchy)
        policy = CheckpointPolicy(every_events=250, retain_archived=300)
        with engine.observe_stream(batch_size=125, checkpoint_policy=policy) as stream:
            for start in range(0, len(events), 125):
                stream.submit_many(events[start : start + 125])
            stream.flush()
            assert stream.checkpoints >= 2
        assert engine.movement_db.archived_count <= 300
        assert engine.movement_db.archived_count + len(engine.movement_db) <= len(events)
        # The projection kept every read exact through compaction+retention.
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        assert engine.movement_db.subjects_inside() == oracle.subjects_inside()


class TestBatchFailureRecords:
    def test_failure_carries_the_rejected_records(self, deployment):
        hierarchy, _, _ = deployment
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        poison = [
            MovementRecord(5, "ghost", "B.R0C0", MovementKind.EXIT),
            MovementRecord(6, "ghost", "B.R0C1", MovementKind.EXIT),
        ]
        ingestor = MovementIngestor(database.record_many, batch_size=10)
        ingestor.submit_many(poison)
        with pytest.raises(IngestError) as excinfo:
            ingestor.flush()
        (failure,) = excinfo.value.failures
        assert isinstance(failure, BatchFailure)
        assert failure.dropped == 2
        assert list(failure.records) == poison
        ingestor.close()

    def test_failed_records_can_be_retried(self, deployment):
        hierarchy, _, _ = deployment
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        ingestor = MovementIngestor(database.record_many, batch_size=10)
        ingestor.submit(MovementRecord(5, "ghost", "B.R0C0", MovementKind.EXIT))
        with pytest.raises(IngestError) as excinfo:
            ingestor.flush()
        (failure,) = excinfo.value.failures
        # Fix the cause (the missing entry), then replay the dropped records.
        ingestor.submit(MovementRecord(4, "ghost", "B.R0C0", MovementKind.ENTER))
        ingestor.submit_many(failure.records)
        ingestor.close()  # raises if the retry failed too
        assert len(database) == 2
        assert database.current_location("ghost") is None


class TestPruneArchive:
    def _trace(self, count=120):
        return [
            MovementRecord(t, f"s{t % 7}", "B.R0C0", MovementKind.ENTER if t % 2 == 0 else MovementKind.EXIT)
            for t in range(count)
        ]

    def _seeded(self, database):
        hierarchy = LocationHierarchy(grid_building("B", 3, 3))
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=3)
        events = generator.movement_events(generate_subjects(9), 120)
        database.record_many(events)
        database.checkpoint()
        return events

    def test_in_memory_prune(self):
        database = InMemoryMovementDatabase()
        events = self._seeded(database)
        assert database.archived_count == len(events)
        assert database.prune_archive(30) == len(events) - 30
        assert database.archived_count == 30
        # The newest archived records survive.
        assert database.history(include_archived=True) == events[-30:]
        assert database.prune_archive(30) == 0  # already at the cap

    def test_sharded_prune(self):
        hierarchy = LocationHierarchy(grid_building("B", 3, 3))
        database = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        generator = AuthorizationWorkloadGenerator(hierarchy, seed=3)
        events = generator.movement_events(generate_subjects(9), 120)
        database.record_many(events)
        database.checkpoint()
        dropped = database.prune_archive(45)
        assert dropped == len(events) - 45
        assert database.archived_count == 45

    def test_sqlite_prune_drops_oldest(self, tmp_path):
        path = str(tmp_path / "prune.db")
        database = SqliteMovementDatabase(path)
        events = self._seeded(database)
        assert database.prune_archive(40) == len(events) - 40
        assert database.archived_count == 40
        kept = database.history(include_archived=True)
        assert kept == events[-40:]
        database.close()

    def test_prune_validates_retention(self):
        database = InMemoryMovementDatabase()
        with pytest.raises(StorageError):
            database.prune_archive(-1)


class TestBackpressure:
    def test_queue_bound_counts_records_not_batches(self):
        """submit_many batches must count record-by-record against queue_size.

        The bound covers records queued behind a busy writer (like the old
        bounded queue, the batch the writer already picked up is not
        counted) — so: park the writer inside the sink, fill the queue to
        the bound with one batch, and check the next batch blocks.
        """
        import threading

        gate = threading.Event()
        in_sink = threading.Event()

        def slow_sink(batch):
            in_sink.set()
            gate.wait(10)

        ingestor = MovementIngestor(slow_sink, batch_size=10, max_latency=60, queue_size=100)
        records = [MovementRecord(t, "s", "L", MovementKind.ENTER) for t in range(80)]
        ingestor.submit_many(records)  # picked up by the writer, parked in the sink
        assert in_sink.wait(5)
        ingestor.submit_many(records)  # 80 queued behind the busy writer: fits

        blocked = threading.Event()
        passed = threading.Event()

        def submit_more():
            blocked.set()
            ingestor.submit_many(records)  # 80 more would exceed 100: must block
            passed.set()

        thread = threading.Thread(target=submit_more, daemon=True)
        thread.start()
        assert blocked.wait(2)
        assert not passed.wait(0.3), "third batch was admitted past the record bound"
        gate.set()  # writer drains; capacity frees; the submitter unblocks
        assert passed.wait(5)
        ingestor.close(raise_failures=False)

    def test_oversized_single_batch_is_admitted_alone(self):
        database = InMemoryMovementDatabase()
        ingestor = MovementIngestor(database.record_many, queue_size=10)
        big = [MovementRecord(t, f"s{t}", "L", MovementKind.ENTER) for t in range(50)]
        assert ingestor.submit_many(big) == 50  # larger than the bound: no deadlock
        ingestor.close()
        assert len(database) == 50
