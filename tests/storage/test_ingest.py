"""The streaming observe path: flush-on-close, latency flush, rollback.

:class:`~repro.storage.ingest.MovementIngestor` wraps all-or-nothing batch
sinks; what these tests pin down is the durability contract (everything
accepted is written by ``flush()``/``close()``), the group-commit triggers
(batch size and max latency), and the failure semantics (a rejected batch
is dropped whole, leaves the sink untouched, and surfaces as
:class:`~repro.errors.IngestError` at the next flush/close — later batches
keep flowing).
"""

import time

import pytest

from repro.errors import IngestError, StorageError
from repro.locations.multilevel import LocationHierarchy
from repro.simulation.buildings import grid_building
from repro.simulation.workload import AuthorizationWorkloadGenerator, generate_subjects
from repro.storage.ingest import MovementIngestor
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    ShardedInMemoryMovementDatabase,
)


@pytest.fixture()
def deployment():
    hierarchy = LocationHierarchy(grid_building("B", 3, 3))
    generator = AuthorizationWorkloadGenerator(hierarchy, seed=41)
    subjects = generate_subjects(25)
    return hierarchy, subjects, generator.movement_events(subjects, 1_200)


class TestGroupCommit:
    def test_flush_makes_submissions_visible(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        ingestor = MovementIngestor(database.record_many, batch_size=64)
        ingestor.submit_many(events)
        ingestor.flush()
        assert len(database) == len(events)
        assert ingestor.written == len(events)
        assert database.history() == events
        ingestor.close()

    def test_close_flushes_pending_records(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        # Batch size larger than the trace: nothing flushes by size.
        ingestor = MovementIngestor(database.record_many, batch_size=10_000, max_latency=60)
        ingestor.submit_many(events)
        ingestor.close()
        assert len(database) == len(events)
        assert ingestor.closed

    def test_context_manager_closes_and_flushes(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        with MovementIngestor(database.record_many, batch_size=10_000, max_latency=60) as stream:
            accepted = stream.submit_many(events)
        assert accepted == len(events)
        assert len(database) == len(events)

    def test_max_latency_flushes_a_trickle(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        ingestor = MovementIngestor(database.record_many, batch_size=10_000, max_latency=0.02)
        ingestor.submit(events[0])
        deadline = time.monotonic() + 2.0
        while len(database) == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(database) == 1  # flushed by age, not by size or close
        ingestor.close()

    def test_sharded_database_as_sink(self, deployment):
        hierarchy, subjects, events = deployment
        database = ShardedInMemoryMovementDatabase(hierarchy, shards=3)
        with MovementIngestor(database.record_many, batch_size=100) as stream:
            stream.submit_many(events)
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        assert database.subjects_inside() == oracle.subjects_inside()
        for subject in subjects[:10]:
            assert database.history(subject=subject) == oracle.history(subject=subject)


class TestFailureSemantics:
    def test_rejected_batch_rolls_back_and_surfaces_on_close(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        location = sorted(hierarchy.primitive_names)[0]
        poison = MovementRecord(3, "Intruder", location, MovementKind.EXIT)

        ingestor = MovementIngestor(database.record_many, batch_size=10_000, max_latency=60)
        ingestor.submit(poison)
        ingestor.flush(raise_failures=False)
        # The poisoned batch was dropped whole: nothing reached the store.
        assert len(database) == 0
        assert ingestor.dropped == 1
        assert len(ingestor.failures) == 1
        assert isinstance(ingestor.failures[0].error, StorageError)
        with pytest.raises(IngestError) as error:
            ingestor.close()
        assert "1 ingest batch(es) were rejected" in str(error.value)

    def test_later_batches_flow_after_a_failure(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        location = sorted(hierarchy.primitive_names)[0]
        poison = MovementRecord(3, "Intruder", location, MovementKind.EXIT)

        ingestor = MovementIngestor(database.record_many, batch_size=10_000, max_latency=60)
        ingestor.submit(poison)
        with pytest.raises(IngestError):
            ingestor.flush()
        good = events[:100]
        ingestor.submit_many(good)
        ingestor.flush()  # the earlier failure was already surfaced
        assert len(database) == len(good)
        ingestor.close()

    def test_flush_reraises_with_cause(self, deployment):
        hierarchy, _, _ = deployment
        database = InMemoryMovementDatabase(hierarchy, strict=True)
        location = sorted(hierarchy.primitive_names)[0]
        ingestor = MovementIngestor(database.record_many, batch_size=1)
        ingestor.submit(MovementRecord(1, "Ghost", location, MovementKind.EXIT))
        with pytest.raises(IngestError) as error:
            ingestor.flush()
        assert isinstance(error.value.__cause__, StorageError)
        ingestor.close()

    def test_submit_after_close_is_rejected(self, deployment):
        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        ingestor = MovementIngestor(database.record_many)
        ingestor.close()
        with pytest.raises(IngestError):
            ingestor.submit(events[0])
        with pytest.raises(IngestError):
            ingestor.flush()
        ingestor.close()  # idempotent

    def test_configuration_validation(self, deployment):
        hierarchy, _, _ = deployment
        database = InMemoryMovementDatabase(hierarchy)
        for kwargs in ({"batch_size": 0}, {"max_latency": 0}, {"queue_size": 0}):
            with pytest.raises(IngestError):
                MovementIngestor(database.record_many, **kwargs)


class TestEnginePath:
    def test_observe_stream_monitors_and_audits(self, deployment):
        from repro.api import Ltam, grant

        hierarchy, _, _ = deployment
        location = sorted(hierarchy.primitive_names)[0]
        engine = (
            Ltam.builder()
            .hierarchy(hierarchy)
            .shards(2)
            .grant(grant("alice").at(location).during(0, 100).entries(5))
            .build()
        )
        with engine.observe_stream(batch_size=16) as stream:
            stream.submit(MovementRecord(5, "alice", location, MovementKind.ENTER))
            stream.submit(MovementRecord(9, "alice", location, MovementKind.EXIT))
            stream.submit(MovementRecord(11, "mallory", location, MovementKind.ENTER))
        assert engine.movement_db.entry_count("alice", location) == 1
        assert engine.occupants(location) == ["mallory"]
        # The unauthorized entry raised an alert through the monitor...
        kinds = [alert.kind.value for alert in engine.alerts.alerts]
        assert "unauthorized_entry" in " ".join(kinds)
        # ...and the audit log recorded the movements.
        assert len(engine.audit) > 0

    def test_observe_stream_on_a_sqlite_backend(self, deployment):
        """Regression: the writer thread drives SQLite connections created
        on the main thread — the stores must allow cross-thread use."""
        from repro.api import Ltam, grant

        hierarchy, _, _ = deployment
        location = sorted(hierarchy.primitive_names)[0]
        engine = (
            Ltam.builder()
            .hierarchy(hierarchy)
            .backend("sqlite")
            .shards(2)
            .grant(grant("alice").at(location).during(0, 100).entries(5))
            .build()
        )
        with engine.observe_stream(batch_size=4) as stream:
            stream.submit(MovementRecord(5, "alice", location, MovementKind.ENTER))
            stream.submit(MovementRecord(9, "alice", location, MovementKind.EXIT))
        assert engine.movement_db.entry_count("alice", location) == 1
        assert engine.occupants(location) == []


class TestConcurrencyRegressions:
    def test_sharded_history_is_globally_time_ordered(self, deployment):
        """Regression: the query engine's point-in-time replay early-breaks
        on the first record past the query time, so history() must come
        back time-sorted even when one batch spans several shards."""
        hierarchy, _, events = deployment
        database = ShardedInMemoryMovementDatabase(hierarchy, shards=4)
        database.record_many(events)
        merged = database.history()
        assert [r.time for r in merged] == sorted(r.time for r in merged)

    def test_point_in_time_queries_on_a_sharded_engine(self, deployment):
        from repro.api import Ltam
        from repro.engine.query.evaluator import QueryEngine

        hierarchy, _, events = deployment
        sharded = Ltam.builder().hierarchy(hierarchy).shards(4).build()
        plain = Ltam.builder().hierarchy(hierarchy).build()
        for engine in (sharded, plain):
            engine.movement_db.record_many(events[:400])
        probe_location = events[0].location
        probe_time = events[200].time
        lhs = QueryEngine(sharded).evaluate(f"WHO IS IN {probe_location} AT {probe_time}")
        rhs = QueryEngine(plain).evaluate(f"WHO IS IN {probe_location} AT {probe_time}")
        assert lhs.rows == rhs.rows

    def test_checkpoint_concurrent_with_streaming(self, deployment):
        """Regression: checkpoint() racing the writer's bulk() scope must
        serialize on the store's transaction lock, not commit mid-batch."""
        import threading

        from repro.api import Ltam

        hierarchy, _, events = deployment
        engine = Ltam.builder().hierarchy(hierarchy).backend("sqlite").build()
        stop = threading.Event()

        def keep_checkpointing():
            while not stop.is_set():
                engine.checkpoint()

        checkpointer = threading.Thread(target=keep_checkpointing)
        checkpointer.start()
        try:
            with engine.observe_stream(batch_size=16, max_latency=0.005) as stream:
                stream.submit_many(events)
        finally:
            stop.set()
            checkpointer.join()
        engine.checkpoint()
        oracle = InMemoryMovementDatabase(hierarchy)
        oracle.record_many(events)
        assert engine.movement_db.subjects_inside() == oracle.subjects_inside()
        assert engine.movement_db.archived_count == len(events)

    def test_submissions_racing_close_are_never_lost(self, deployment):
        """Regression: a submit()/flush() that slips in behind _CLOSE is
        drained by the writer — accepted records stay durable, flush()
        callers are released."""
        import threading

        hierarchy, _, events = deployment
        database = InMemoryMovementDatabase(hierarchy)
        ingestor = MovementIngestor(database.record_many, batch_size=64)
        accepted = []

        def producer(chunk):
            for record in chunk:
                try:
                    ingestor.submit(record)
                except IngestError:
                    return
                accepted.append(record)

        chunk_size = len(events) // 3
        producers = [
            threading.Thread(target=producer, args=(events[i * chunk_size : (i + 1) * chunk_size],))
            for i in range(3)
        ]
        for thread in producers:
            thread.start()
        ingestor.close()  # races the producers
        for thread in producers:
            thread.join()
        assert ingestor.written == len(accepted)
        assert len(database) == len(accepted)
