"""Unit tests for the Authorization Database (in-memory and SQLite backends)."""

import pytest

from repro.errors import DuplicateRecordError, MissingRecordError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.storage.authorization_db import (
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


BACKENDS = [InMemoryAuthorizationDatabase, SqliteAuthorizationDatabase]


def sample_auths():
    return [
        LocationTemporalAuthorization(("Alice", "CAIS"), (10, 20), (10, 50), 2, auth_id="A1"),
        LocationTemporalAuthorization(("Bob", "CHIPES"), (5, 35), (20, 100), 1, auth_id="A2"),
        LocationTemporalAuthorization(("Alice", "CHIPES"), (0, FOREVER), None, auth_id="A3"),
    ]


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def db(request):
    database = request.param()
    database.add_all(sample_auths())
    return database


class TestWrites:
    def test_add_and_len(self, db):
        assert len(db) == 3

    def test_duplicate_id_rejected(self, db):
        with pytest.raises(DuplicateRecordError):
            db.add(LocationTemporalAuthorization(("Eve", "CAIS"), (0, 1), (0, 2), auth_id="A1"))

    def test_revoke(self, db):
        revoked = db.revoke("A1")
        assert revoked.auth_id == "A1"
        assert len(db) == 2
        assert "A1" not in db
        with pytest.raises(MissingRecordError):
            db.revoke("A1")

    def test_clear(self, db):
        db.clear()
        assert len(db) == 0
        assert db.all() == []

    def test_cascading_revocation(self, db):
        derived = LocationTemporalAuthorization(
            ("Bob", "CAIS"), (10, 20), (10, 50), 2, auth_id="D1", derived_from="A1", rule_id="r1"
        )
        db.add(derived)
        revoked = db.revoke_cascading("A1")
        assert {auth.auth_id for auth in revoked} == {"A1", "D1"}
        assert "D1" not in db

    def test_revoke_derived_from_only(self, db):
        derived = LocationTemporalAuthorization(
            ("Bob", "CAIS"), (10, 20), (10, 50), 2, auth_id="D1", derived_from="A1", rule_id="r1"
        )
        db.add(derived)
        revoked = db.revoke_derived_from("A1")
        assert [auth.auth_id for auth in revoked] == ["D1"]
        assert "A1" in db


class TestReads:
    def test_get_roundtrips_every_field(self, db):
        auth = db.get("A2")
        assert auth.subject == "Bob"
        assert auth.location == "CHIPES"
        assert auth.entry_duration == TimeInterval(5, 35)
        assert auth.exit_duration == TimeInterval(20, 100)
        assert auth.max_entries == 1

    def test_get_roundtrips_unbounded_and_unlimited(self, db):
        auth = db.get("A3")
        assert auth.entry_duration.is_unbounded
        assert auth.exit_duration.is_unbounded
        assert auth.max_entries is UNLIMITED_ENTRIES

    def test_get_missing(self, db):
        with pytest.raises(MissingRecordError):
            db.get("ZZZ")

    def test_for_subject_location(self, db):
        assert [a.auth_id for a in db.for_subject_location("Alice", "CAIS")] == ["A1"]
        assert db.for_subject_location("Alice", "Lab1") == []

    def test_for_subject(self, db):
        assert {a.auth_id for a in db.for_subject("Alice")} == {"A1", "A3"}
        assert db.for_subject("Mallory") == []

    def test_for_location(self, db):
        assert {a.auth_id for a in db.for_location("CHIPES")} == {"A2", "A3"}

    def test_iteration_and_contains(self, db):
        assert {auth.auth_id for auth in db} == {"A1", "A2", "A3"}
        assert "A2" in db
        assert "nope" not in db


class TestEnterableAt:
    def test_filter_by_time_only(self, db):
        assert {a.auth_id for a in db.enterable_at(15)} == {"A1", "A2", "A3"}
        assert {a.auth_id for a in db.enterable_at(40)} == {"A3"}

    def test_filter_by_subject_and_location(self, db):
        assert {a.auth_id for a in db.enterable_at(15, subject="Alice")} == {"A1", "A3"}
        assert {a.auth_id for a in db.enterable_at(15, location="CHIPES")} == {"A2", "A3"}
        assert {a.auth_id for a in db.enterable_at(15, subject="Alice", location="CAIS")} == {"A1"}
        assert db.enterable_at(40, subject="Alice", location="CAIS") == []

    def test_revoked_authorizations_not_returned(self, db):
        db.revoke("A1")
        assert db.enterable_at(15, subject="Alice", location="CAIS") == []


class TestSqliteSpecific:
    def test_persistence_to_file(self, tmp_path):
        path = str(tmp_path / "auth.db")
        first = SqliteAuthorizationDatabase(path)
        first.add_all(sample_auths())
        first.close()
        second = SqliteAuthorizationDatabase(path)
        assert len(second) == 3
        assert second.get("A1").subject == "Alice"
        second.close()

    def test_parity_with_memory_backend(self):
        memory = InMemoryAuthorizationDatabase(sample_auths())
        sqlite = SqliteAuthorizationDatabase()
        sqlite.add_all(sample_auths())
        for time in (0, 5, 15, 40, 200):
            assert {a.auth_id for a in memory.enterable_at(time)} == {
                a.auth_id for a in sqlite.enterable_at(time)
            }
        assert {a.auth_id for a in memory.for_subject("Alice")} == {
            a.auth_id for a in sqlite.for_subject("Alice")
        }
