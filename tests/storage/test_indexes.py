"""Unit tests for the interval index used by the authorization database."""

import pytest

from repro.storage.indexes import IntervalIndex
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture
def index():
    idx = IntervalIndex()
    idx.add(TimeInterval(0, 10), "early")
    idx.add(TimeInterval(5, 20), "middle")
    idx.add(TimeInterval(50, FOREVER), "open")
    return idx


class TestStabbing:
    def test_point_queries(self, index):
        assert sorted(index.at(0)) == ["early"]
        assert sorted(index.at(7)) == ["early", "middle"]
        assert sorted(index.at(15)) == ["middle"]
        assert index.at(30) == []
        assert index.at(1_000_000) == ["open"]

    def test_boundaries_are_inclusive(self, index):
        assert "early" in index.at(10)
        assert "middle" in index.at(5)
        assert "open" in index.at(50)


class TestOverlap:
    def test_window_queries(self, index):
        assert sorted(index.overlapping(TimeInterval(0, 4))) == ["early"]
        assert sorted(index.overlapping(TimeInterval(8, 60))) == ["early", "middle", "open"]
        assert index.overlapping(TimeInterval(25, 40)) == []

    def test_unbounded_window(self, index):
        assert sorted(index.overlapping(TimeInterval(0, FOREVER))) == ["early", "middle", "open"]
        assert sorted(index.overlapping(TimeInterval(30, FOREVER))) == ["open"]


class TestMutation:
    def test_remove_by_predicate(self, index):
        removed = index.remove(lambda payload: payload == "middle")
        assert removed == 1
        assert len(index) == 2
        assert index.at(15) == []

    def test_remove_nothing(self, index):
        assert index.remove(lambda payload: False) == 0
        assert len(index) == 3

    def test_iteration(self, index):
        assert set(index) == {"early", "middle", "open"}

    def test_empty_index(self):
        empty = IntervalIndex()
        assert len(empty) == 0
        assert empty.at(5) == []
        assert empty.overlapping(TimeInterval(0, 10)) == []
