"""Unit tests for the interval index used by the authorization database.

The index is now an augmented interval tree (AVL + max-end); the original
sorted-list behavior suite is carried over unchanged so the swap is
behavior-proven, and the tree-specific cases (rebalancing inserts,
predicate removal rebuilds, unbounded windows, FOREVER ends, ordering
stability) are layered on top — including a randomized comparison against
a brute-force scan.
"""

import random

import pytest

from repro.storage.indexes import IntervalIndex
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture
def index():
    idx = IntervalIndex()
    idx.add(TimeInterval(0, 10), "early")
    idx.add(TimeInterval(5, 20), "middle")
    idx.add(TimeInterval(50, FOREVER), "open")
    return idx


class TestStabbing:
    def test_point_queries(self, index):
        assert sorted(index.at(0)) == ["early"]
        assert sorted(index.at(7)) == ["early", "middle"]
        assert sorted(index.at(15)) == ["middle"]
        assert index.at(30) == []
        assert index.at(1_000_000) == ["open"]

    def test_boundaries_are_inclusive(self, index):
        assert "early" in index.at(10)
        assert "middle" in index.at(5)
        assert "open" in index.at(50)

    def test_results_ordered_by_start_then_insertion(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(5, 30), "b1")
        idx.add(TimeInterval(0, 30), "a")
        idx.add(TimeInterval(5, 30), "b2")  # same start as b1, inserted later
        idx.add(TimeInterval(2, 30), "ab")
        assert idx.at(10) == ["a", "ab", "b1", "b2"]
        assert list(idx) == ["a", "ab", "b1", "b2"]

    def test_stab_at_forever_hits_exactly_the_unbounded_intervals(self, index):
        # FOREVER is a valid time point; it stabs the unbounded entries only
        # (the same answer TimeInterval.contains gives).
        assert index.at(FOREVER) == ["open"]
        empty = IntervalIndex()
        assert empty.at(FOREVER) == []

    def test_long_lived_interval_found_behind_many_later_starts(self):
        # The old prefix walk scanned everything started before t; the tree
        # must still find an early, still-live interval among them.
        idx = IntervalIndex()
        idx.add(TimeInterval(0, FOREVER), "anchor")
        for start in range(1, 200):
            idx.add(TimeInterval(start, start + 1), f"short-{start}")
        hits = idx.at(10_000)
        assert hits == ["anchor"]


class TestOverlap:
    def test_window_queries(self, index):
        assert sorted(index.overlapping(TimeInterval(0, 4))) == ["early"]
        assert sorted(index.overlapping(TimeInterval(8, 60))) == ["early", "middle", "open"]
        assert index.overlapping(TimeInterval(25, 40)) == []

    def test_unbounded_window(self, index):
        assert sorted(index.overlapping(TimeInterval(0, FOREVER))) == ["early", "middle", "open"]
        assert sorted(index.overlapping(TimeInterval(30, FOREVER))) == ["open"]

    def test_unbounded_window_against_unbounded_entries(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(0, FOREVER), "a")
        idx.add(TimeInterval(100, FOREVER), "b")
        idx.add(TimeInterval(5, 10), "bounded")
        assert sorted(idx.overlapping(TimeInterval(0, FOREVER))) == ["a", "b", "bounded"]
        assert sorted(idx.overlapping(TimeInterval(50, FOREVER))) == ["a", "b"]
        assert sorted(idx.overlapping(TimeInterval(7, 7))) == ["a", "bounded"]

    def test_degenerate_window(self, index):
        assert sorted(index.overlapping(TimeInterval.instant(5))) == ["early", "middle"]
        assert index.overlapping(TimeInterval.instant(49)) == []


class TestMutation:
    def test_remove_by_predicate(self, index):
        removed = index.remove(lambda payload: payload == "middle")
        assert removed == 1
        assert len(index) == 2
        assert index.at(15) == []

    def test_remove_nothing(self, index):
        assert index.remove(lambda payload: False) == 0
        assert len(index) == 3

    def test_remove_everything(self, index):
        assert index.remove(lambda payload: True) == 3
        assert len(index) == 0
        assert index.at(7) == []
        assert list(index) == []

    def test_remove_forever_entry_keeps_bounded_ones(self, index):
        assert index.remove(lambda payload: payload == "open") == 1
        assert index.at(1_000_000) == []
        assert sorted(index.at(7)) == ["early", "middle"]

    def test_queries_still_correct_after_removal_rebuild(self):
        idx = IntervalIndex()
        for start in range(100):
            idx.add(TimeInterval(start, start + 10), start)
        removed = idx.remove(lambda payload: payload % 3 == 0)
        assert removed == 34
        assert len(idx) == 66
        for t in (0, 15, 50, 105):
            expect = sorted(
                p for p in range(100) if p % 3 != 0 and p <= t <= p + 10
            )
            assert sorted(idx.at(t)) == expect

    def test_iteration(self, index):
        assert set(index) == {"early", "middle", "open"}

    def test_intervals_accessor_round_trips(self, index):
        pairs = index.intervals()
        assert [payload for _, payload in pairs] == list(index)
        rebuilt = IntervalIndex()
        for interval, payload in pairs:
            rebuilt.add(interval, payload)
        for t in (0, 7, 15, 30, 50, 10_000):
            assert rebuilt.at(t) == index.at(t)

    def test_empty_index(self):
        empty = IntervalIndex()
        assert len(empty) == 0
        assert empty.at(5) == []
        assert empty.overlapping(TimeInterval(0, 10)) == []
        assert empty.overlapping(TimeInterval(0, FOREVER)) == []


class TestAgainstBruteForce:
    def test_randomized_parity_with_linear_scan(self):
        rng = random.Random(1234)
        idx = IntervalIndex()
        entries = []
        for payload in range(500):
            start = rng.randrange(0, 1_000)
            end = FOREVER if rng.random() < 0.1 else start + rng.randrange(0, 200)
            interval = TimeInterval(start, end)
            idx.add(interval, payload)
            entries.append((interval, payload))
        for t in range(0, 1_400, 37):
            assert sorted(idx.at(t)) == sorted(
                p for interval, p in entries if interval.contains(t)
            )
        for _ in range(50):
            lo = rng.randrange(0, 1_200)
            hi = FOREVER if rng.random() < 0.2 else lo + rng.randrange(0, 300)
            window = TimeInterval(lo, hi)
            assert sorted(idx.overlapping(window)) == sorted(
                p for interval, p in entries if interval.overlaps(window)
            )
        # Remove half at random; parity must survive the rebuild.
        doomed = set(rng.sample(range(500), 250))
        assert idx.remove(lambda p: p in doomed) == 250
        entries = [(interval, p) for interval, p in entries if p not in doomed]
        for t in range(0, 1_400, 53):
            assert sorted(idx.at(t)) == sorted(
                p for interval, p in entries if interval.contains(t)
            )
