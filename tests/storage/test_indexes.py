"""Unit tests for the interval index used by the authorization database.

The index is now an augmented interval tree (AVL + max-end); the original
sorted-list behavior suite is carried over unchanged so the swap is
behavior-proven, and the tree-specific cases (rebalancing inserts,
predicate removal rebuilds, unbounded windows, FOREVER ends, ordering
stability) are layered on top — including a randomized comparison against
a brute-force scan.
"""

import random

import pytest

from repro.storage.indexes import IntervalIndex
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval


@pytest.fixture
def index():
    idx = IntervalIndex()
    idx.add(TimeInterval(0, 10), "early")
    idx.add(TimeInterval(5, 20), "middle")
    idx.add(TimeInterval(50, FOREVER), "open")
    return idx


class TestStabbing:
    def test_point_queries(self, index):
        assert sorted(index.at(0)) == ["early"]
        assert sorted(index.at(7)) == ["early", "middle"]
        assert sorted(index.at(15)) == ["middle"]
        assert index.at(30) == []
        assert index.at(1_000_000) == ["open"]

    def test_boundaries_are_inclusive(self, index):
        assert "early" in index.at(10)
        assert "middle" in index.at(5)
        assert "open" in index.at(50)

    def test_results_ordered_by_start_then_insertion(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(5, 30), "b1")
        idx.add(TimeInterval(0, 30), "a")
        idx.add(TimeInterval(5, 30), "b2")  # same start as b1, inserted later
        idx.add(TimeInterval(2, 30), "ab")
        assert idx.at(10) == ["a", "ab", "b1", "b2"]
        assert list(idx) == ["a", "ab", "b1", "b2"]

    def test_stab_at_forever_hits_exactly_the_unbounded_intervals(self, index):
        # FOREVER is a valid time point; it stabs the unbounded entries only
        # (the same answer TimeInterval.contains gives).
        assert index.at(FOREVER) == ["open"]
        empty = IntervalIndex()
        assert empty.at(FOREVER) == []

    def test_long_lived_interval_found_behind_many_later_starts(self):
        # The old prefix walk scanned everything started before t; the tree
        # must still find an early, still-live interval among them.
        idx = IntervalIndex()
        idx.add(TimeInterval(0, FOREVER), "anchor")
        for start in range(1, 200):
            idx.add(TimeInterval(start, start + 1), f"short-{start}")
        hits = idx.at(10_000)
        assert hits == ["anchor"]


class TestOverlap:
    def test_window_queries(self, index):
        assert sorted(index.overlapping(TimeInterval(0, 4))) == ["early"]
        assert sorted(index.overlapping(TimeInterval(8, 60))) == ["early", "middle", "open"]
        assert index.overlapping(TimeInterval(25, 40)) == []

    def test_unbounded_window(self, index):
        assert sorted(index.overlapping(TimeInterval(0, FOREVER))) == ["early", "middle", "open"]
        assert sorted(index.overlapping(TimeInterval(30, FOREVER))) == ["open"]

    def test_unbounded_window_against_unbounded_entries(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(0, FOREVER), "a")
        idx.add(TimeInterval(100, FOREVER), "b")
        idx.add(TimeInterval(5, 10), "bounded")
        assert sorted(idx.overlapping(TimeInterval(0, FOREVER))) == ["a", "b", "bounded"]
        assert sorted(idx.overlapping(TimeInterval(50, FOREVER))) == ["a", "b"]
        assert sorted(idx.overlapping(TimeInterval(7, 7))) == ["a", "bounded"]

    def test_degenerate_window(self, index):
        assert sorted(index.overlapping(TimeInterval.instant(5))) == ["early", "middle"]
        assert index.overlapping(TimeInterval.instant(49)) == []


class TestMutation:
    def test_remove_by_predicate(self, index):
        removed = index.remove(lambda payload: payload == "middle")
        assert removed == 1
        assert len(index) == 2
        assert index.at(15) == []

    def test_remove_nothing(self, index):
        assert index.remove(lambda payload: False) == 0
        assert len(index) == 3

    def test_remove_everything(self, index):
        assert index.remove(lambda payload: True) == 3
        assert len(index) == 0
        assert index.at(7) == []
        assert list(index) == []

    def test_remove_forever_entry_keeps_bounded_ones(self, index):
        assert index.remove(lambda payload: payload == "open") == 1
        assert index.at(1_000_000) == []
        assert sorted(index.at(7)) == ["early", "middle"]

    def test_queries_still_correct_after_removal_rebuild(self):
        idx = IntervalIndex()
        for start in range(100):
            idx.add(TimeInterval(start, start + 10), start)
        removed = idx.remove(lambda payload: payload % 3 == 0)
        assert removed == 34
        assert len(idx) == 66
        for t in (0, 15, 50, 105):
            expect = sorted(
                p for p in range(100) if p % 3 != 0 and p <= t <= p + 10
            )
            assert sorted(idx.at(t)) == expect

    def test_iteration(self, index):
        assert set(index) == {"early", "middle", "open"}

    def test_intervals_accessor_round_trips(self, index):
        pairs = index.intervals()
        assert [payload for _, payload in pairs] == list(index)
        rebuilt = IntervalIndex()
        for interval, payload in pairs:
            rebuilt.add(interval, payload)
        for t in (0, 7, 15, 30, 50, 10_000):
            assert rebuilt.at(t) == index.at(t)

    def test_empty_index(self):
        empty = IntervalIndex()
        assert len(empty) == 0
        assert empty.at(5) == []
        assert empty.overlapping(TimeInterval(0, 10)) == []
        assert empty.overlapping(TimeInterval(0, FOREVER)) == []


class TestAgainstBruteForce:
    def test_randomized_parity_with_linear_scan(self):
        rng = random.Random(1234)
        idx = IntervalIndex()
        entries = []
        for payload in range(500):
            start = rng.randrange(0, 1_000)
            end = FOREVER if rng.random() < 0.1 else start + rng.randrange(0, 200)
            interval = TimeInterval(start, end)
            idx.add(interval, payload)
            entries.append((interval, payload))
        for t in range(0, 1_400, 37):
            assert sorted(idx.at(t)) == sorted(
                p for interval, p in entries if interval.contains(t)
            )
        for _ in range(50):
            lo = rng.randrange(0, 1_200)
            hi = FOREVER if rng.random() < 0.2 else lo + rng.randrange(0, 300)
            window = TimeInterval(lo, hi)
            assert sorted(idx.overlapping(window)) == sorted(
                p for interval, p in entries if interval.overlaps(window)
            )
        # Remove half at random; parity must survive the rebuild.
        doomed = set(rng.sample(range(500), 250))
        assert idx.remove(lambda p: p in doomed) == 250
        entries = [(interval, p) for interval, p in entries if p not in doomed]
        for t in range(0, 1_400, 53):
            assert sorted(idx.at(t)) == sorted(
                p for interval, p in entries if interval.contains(t)
            )


class TestTombstones:
    """Removal marks tombstones; compaction is deferred and amortized."""

    def test_remove_one_by_interval_and_payload(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(5, 10), "a")
        idx.add(TimeInterval(5, 10), "b")
        idx.add(TimeInterval(5, 20), "c")
        assert idx.remove_one(TimeInterval(5, 10), "b") is True
        assert idx.at(7) == ["a", "c"]
        assert len(idx) == 2
        # Already removed / never present: no-ops.
        assert idx.remove_one(TimeInterval(5, 10), "b") is False
        assert idx.remove_one(TimeInterval(5, 10), "zzz") is False
        assert idx.remove_one(TimeInterval(99, 100), "a") is False
        assert len(idx) == 2

    def test_remove_one_distinguishes_same_start_different_end(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(3, 8), "short")
        idx.add(TimeInterval(3, FOREVER), "long")
        assert idx.remove_one(TimeInterval(3, 8), "short") is True
        assert idx.at(5) == ["long"]
        assert idx.at(1_000_000) == ["long"]

    def test_tombstones_deferred_then_compacted(self):
        idx = IntervalIndex()
        for payload in range(100):
            idx.add(TimeInterval(payload, payload + 10), payload)
        # Remove a minority: tombstones accumulate, no rebuild yet.
        for payload in range(30):
            assert idx.remove_one(TimeInterval(payload, payload + 10), payload)
        assert idx.tombstones == 30
        assert len(idx) == 70
        # Push dead past live: the tree compacts itself along the way
        # (tombstones reset at the compaction point, then re-accumulate).
        for payload in range(30, 71):
            assert idx.remove_one(TimeInterval(payload, payload + 10), payload)
        assert idx.tombstones < 30
        assert len(idx) == 29
        assert list(idx) == list(range(71, 100))

    def test_queries_and_iteration_skip_tombstones(self):
        idx = IntervalIndex()
        for payload in range(20):
            idx.add(TimeInterval(0, 100), payload)
        idx.remove(lambda p: p % 2 == 0)
        assert idx.at(50) == list(range(1, 20, 2))
        assert idx.overlapping(TimeInterval(0, 1_000)) == list(range(1, 20, 2))
        assert [p for _, p in idx.intervals()] == list(range(1, 20, 2))
        assert list(idx) == list(range(1, 20, 2))

    def test_adds_after_tombstoning_keep_order(self):
        idx = IntervalIndex()
        idx.add(TimeInterval(0, 10), "first")
        idx.add(TimeInterval(0, 10), "second")
        idx.remove_one(TimeInterval(0, 10), "first")
        idx.add(TimeInterval(0, 10), "third")
        assert idx.at(5) == ["second", "third"]

    def test_randomized_churn_parity(self):
        rng = random.Random(99)
        idx = IntervalIndex()
        alive = {}
        next_payload = 0
        for round_number in range(2_000):
            if alive and rng.random() < 0.45:
                payload, interval = alive.popitem()
                assert idx.remove_one(interval, payload) is True
            else:
                start = rng.randrange(0, 500)
                end = FOREVER if rng.random() < 0.05 else start + rng.randrange(0, 80)
                interval = TimeInterval(start, end)
                idx.add(interval, next_payload)
                alive[next_payload] = interval
                next_payload += 1
            if round_number % 100 == 0:
                t = rng.randrange(0, 600)
                assert sorted(idx.at(t)) == sorted(
                    p for p, interval in alive.items() if interval.contains(t)
                )
        assert len(idx) == len(alive)
