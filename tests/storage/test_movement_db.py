"""Unit tests for the Location & Movements Database (in-memory and SQLite backends)."""

import pytest

from repro.errors import StorageError
from repro.locations.layouts import figure4_hierarchy
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementKind,
    MovementRecord,
    SqliteMovementDatabase,
)
from repro.temporal.interval import TimeInterval


BACKENDS = [InMemoryMovementDatabase, SqliteMovementDatabase]


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def db(request):
    if request.param is SqliteMovementDatabase:
        return SqliteMovementDatabase(":memory:")
    return InMemoryMovementDatabase()


def load_sample(db):
    db.record_entry(10, "Alice", "CAIS")
    db.record_entry(16, "Bob", "CHIPES")
    db.record_exit(20, "Bob", "CHIPES")
    db.record_entry(25, "Bob", "CHIPES")
    db.record_exit(40, "Alice", "CAIS")
    return db


class TestMovementRecord:
    def test_normalization_and_str(self):
        record = MovementRecord(5, "Alice", "CAIS", "enter")
        assert record.kind is MovementKind.ENTER
        assert "ENTER" in str(record)

    @pytest.mark.parametrize("bad_time", [-1, 2.5, None])
    def test_invalid_time(self, bad_time):
        with pytest.raises(StorageError):
            MovementRecord(bad_time, "Alice", "CAIS", MovementKind.ENTER)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            MovementRecord(0, "Alice", "CAIS", "teleport")


class TestRecordingAndOccupancy:
    def test_current_location_tracks_last_entry(self, db):
        load_sample(db)
        # Alice exited CAIS at t=40, Bob re-entered CHIPES at t=25.
        assert db.current_location("Alice") is None
        assert db.current_location("Bob") == "CHIPES"
        assert db.current_location("Ghost") is None

    def test_exit_clears_current_location(self, db):
        db.record_entry(1, "Alice", "CAIS")
        db.record_exit(2, "Alice", "CAIS")
        assert db.current_location("Alice") is None

    def test_occupants(self, db):
        load_sample(db)
        assert db.occupants("CAIS") == []
        assert db.occupants("CHIPES") == ["Bob"]
        assert db.occupants("Lab1") == []

    def test_occupants_before_any_exit(self, db):
        db.record_entry(10, "Alice", "CAIS")
        db.record_entry(11, "Carol", "CAIS")
        assert db.occupants("CAIS") == ["Alice", "Carol"]

    def test_subjects_inside(self, db):
        load_sample(db)
        assert db.subjects_inside() == {"Bob": "CHIPES"}

    def test_len_counts_records(self, db):
        load_sample(db)
        assert len(db) == 5

    def test_clear(self, db):
        load_sample(db)
        db.clear()
        assert len(db) == 0
        assert db.current_location("Alice") is None

    def test_hierarchy_validation(self):
        hierarchy = figure4_hierarchy()
        for backend in (InMemoryMovementDatabase(hierarchy), SqliteMovementDatabase(":memory:", hierarchy)):
            backend.record_entry(0, "Alice", "A")
            with pytest.raises(StorageError):
                backend.record_entry(1, "Alice", "NotARoom")


class TestHistoryAndCounting:
    def test_history_filters(self, db):
        load_sample(db)
        assert len(db.history(subject="Bob")) == 3
        assert len(db.history(location="CAIS")) == 2
        assert len(db.history(subject="Bob", location="CHIPES")) == 3
        assert len(db.history(window=TimeInterval(0, 20))) == 3
        assert len(db.history(subject="Bob", window=TimeInterval(18, 26))) == 2

    def test_history_preserves_order(self, db):
        load_sample(db)
        times = [record.time for record in db.history()]
        assert times == sorted(times)

    def test_entry_count(self, db):
        load_sample(db)
        # Definition 7's counter: Bob entered CHIPES twice in total.
        assert db.entry_count("Bob", "CHIPES") == 2
        assert db.entry_count("Bob", "CHIPES", TimeInterval(0, 20)) == 1
        assert db.entry_count("Alice", "CHIPES") == 0

    def test_last_entry(self, db):
        load_sample(db)
        last = db.last_entry("Bob", "CHIPES")
        assert last is not None and last.time == 25
        assert db.last_entry("Alice", "CHIPES") is None


class TestBatchRecording:
    def test_record_many_matches_loop(self, db):
        records = [
            MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER),
            MovementRecord(16, "Bob", "CHIPES", MovementKind.ENTER),
            MovementRecord(20, "Bob", "CHIPES", MovementKind.EXIT),
            MovementRecord(25, "Bob", "CHIPES", MovementKind.ENTER),
            MovementRecord(40, "Alice", "CAIS", MovementKind.EXIT),
        ]
        returned = db.record_many(records)
        assert returned == records
        assert len(db) == 5
        assert db.history() == records
        assert db.current_location("Bob") == "CHIPES"
        assert db.entry_count("Bob", "CHIPES") == 2
        assert db.entry_count("Bob", "CHIPES", TimeInterval(0, 20)) == 1

    def test_record_many_empty(self, db):
        assert db.record_many([]) == []
        assert len(db) == 0

    def test_record_many_rejects_unknown_location_up_front(self):
        hierarchy = figure4_hierarchy()
        for backend in (InMemoryMovementDatabase(hierarchy), SqliteMovementDatabase(":memory:", hierarchy)):
            with pytest.raises(StorageError):
                backend.record_many(
                    [
                        MovementRecord(0, "Alice", "A", MovementKind.ENTER),
                        MovementRecord(1, "Alice", "NotARoom", MovementKind.ENTER),
                    ]
                )
            # Validation happens before anything is written.
            assert len(backend) == 0

    def test_bulk_groups_writes(self, db):
        with db.bulk():
            db.record_entry(1, "Alice", "CAIS")
            db.record_entry(2, "Bob", "CAIS")
        assert db.occupants("CAIS") == ["Alice", "Bob"]


class TestOccupancyReads:
    def test_occupancy_counter(self, db):
        load_sample(db)
        assert db.occupancy("CHIPES") == 1
        assert db.occupancy("CAIS") == 0
        assert db.occupancy("Nowhere") == 0

    def test_last_movement(self, db):
        load_sample(db)
        last = db.last_movement("Alice", "CAIS")
        assert last is not None and last.time == 40 and last.kind is MovementKind.EXIT
        assert db.last_movement("Ghost", "CAIS") is None

    def test_mismatched_exit_is_noted(self, db):
        db.record_entry(1, "Alice", "CAIS")
        db.record_exit(2, "Alice", "CHIPES")
        assert db.current_location("Alice") == "CAIS"
        assert len(db.anomalies) == 1
        assert "CAIS" in db.anomalies[0].note

    def test_occupancy_service_exposed(self, db):
        load_sample(db)
        assert db.occupancy_service.subjects_inside() == {"Bob": "CHIPES"}


class TestSqlitePersistence:
    def test_reopen_preserves_history(self, tmp_path):
        path = str(tmp_path / "movements.db")
        first = SqliteMovementDatabase(path)
        load_sample(first)
        first.close()
        second = SqliteMovementDatabase(path)
        assert len(second) == 5
        assert second.entry_count("Bob", "CHIPES") == 2
        second.close()
