"""Unit tests for the TAM (temporal-only) baseline."""

import pytest

from repro.baselines.tam import TemporalAuthorization, TemporalOnlySystem, tam_view_of
from repro.core.requests import DenialReason
from repro.paper import fixtures as paper
from repro.temporal.interval import TimeInterval


class TestTemporalAuthorization:
    def test_permits(self):
        auth = TemporalAuthorization("Alice", "CAIS", TimeInterval(10, 20))
        assert auth.permits(10)
        assert auth.permits(20)
        assert not auth.permits(21)

    def test_projection_drops_exit_and_budget(self):
        ltam_auth = paper.section5_authorizations()[0]  # A1 for Alice on CAIS
        projected = tam_view_of(ltam_auth)
        assert projected.subject == "Alice"
        assert projected.object_name == "CAIS"
        assert projected.validity == ltam_auth.entry_duration
        # Nothing in the projection knows about the exit window or the budget.
        assert not hasattr(projected, "exit_duration")
        assert not hasattr(projected, "max_entries")


class TestTemporalOnlySystem:
    @pytest.fixture
    def system(self):
        return TemporalOnlySystem.from_ltam(paper.section5_authorizations())

    def test_grants_within_validity(self, system):
        assert system.check(10, "Alice", "CAIS").granted
        assert system.check(16, "Bob", "CHIPES").granted
        assert len(system) == 2

    def test_denies_without_authorization(self, system):
        decision = system.check(15, "Bob", "CAIS")
        assert decision.reason is DenialReason.NO_AUTHORIZATION

    def test_denies_outside_validity(self, system):
        decision = system.check(40, "Bob", "CHIPES")
        assert decision.reason is DenialReason.OUTSIDE_ENTRY_DURATION

    def test_tam_over_grants_relative_to_ltam(self, system):
        """The baseline's blind spot: TAM cannot exhaust an entry budget.

        In the Section 5 timeline LTAM denies Bob's second entry at t=30
        (budget of 1 already used); TAM, having no budget notion, grants it.
        """
        assert system.check(30, "Bob", "CHIPES").granted

    def test_add_explicit_temporal_authorization(self):
        system = TemporalOnlySystem()
        system.add(TemporalAuthorization("Carol", "Lab1", TimeInterval(0, 5)))
        assert system.check(3, "Carol", "Lab1").granted
        assert not system.check(9, "Carol", "Lab1").granted
