"""Unit tests for the brute-force inaccessibility oracle."""

import pytest

from repro.baselines.brute_force import brute_force_accessible, brute_force_inaccessible
from repro.core.accessibility import find_inaccessible
from repro.core.authorization import LocationTemporalAuthorization
from repro.locations.builder import LocationGraphBuilder
from repro.locations.layouts import figure4_hierarchy
from repro.paper import fixtures as paper
from repro.temporal.interval import TimeInterval


class TestOnPaperExample:
    def test_matches_algorithm1_on_figure4(self):
        hierarchy = figure4_hierarchy()
        auths = paper.table1_authorizations()
        oracle = brute_force_inaccessible(hierarchy, "Alice", auths)
        report = find_inaccessible(hierarchy, "Alice", auths)
        assert oracle == report.inaccessible == {"C"}

    def test_accessible_complement(self):
        hierarchy = figure4_hierarchy()
        auths = paper.table1_authorizations()
        accessible = brute_force_accessible(hierarchy, "Alice", auths)
        inaccessible = brute_force_inaccessible(hierarchy, "Alice", auths)
        assert accessible | inaccessible == hierarchy.primitive_names
        assert accessible & inaccessible == frozenset()

    def test_accepts_bare_location_graph(self):
        from repro.locations.layouts import figure4_graph

        assert brute_force_inaccessible(figure4_graph(), "Alice", paper.table1_authorizations()) == {"C"}


class TestModes:
    def test_walk_mode_agrees_on_small_graph(self):
        hierarchy = figure4_hierarchy()
        auths = paper.table1_authorizations()
        simple = brute_force_accessible(hierarchy, "Alice", auths)
        walks = brute_force_accessible(hierarchy, "Alice", auths, allow_revisits=True, max_length=8)
        assert simple == walks

    def test_request_duration_restriction(self):
        hierarchy = figure4_hierarchy()
        auths = paper.table1_authorizations()
        # With a request window entirely before every entry duration nothing is reachable.
        nothing = brute_force_accessible(
            hierarchy, "Alice", auths, request_duration=TimeInterval(0, 1)
        )
        assert nothing == frozenset()

    def test_max_length_can_cut_off_routes(self):
        graph = (
            LocationGraphBuilder("Line")
            .add_path("L0", "L1", "L2", "L3")
            .mark_entry("L0")
            .build()
        )
        auths = [
            LocationTemporalAuthorization(("Alice", name), (0, 100), (0, 200))
            for name in ("L0", "L1", "L2", "L3")
        ]
        full = brute_force_accessible(graph, "Alice", auths)
        assert full == {"L0", "L1", "L2", "L3"}
        clipped = brute_force_accessible(graph, "Alice", auths, max_length=1)
        assert clipped == {"L0", "L1"}

    def test_no_authorizations(self):
        hierarchy = figure4_hierarchy()
        assert brute_force_accessible(hierarchy, "Alice", []) == frozenset()
        assert brute_force_inaccessible(hierarchy, "Alice", []) == hierarchy.primitive_names
