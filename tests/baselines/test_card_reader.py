"""Unit tests for the card-reader baseline (request-time-only enforcement)."""

import pytest

from repro.baselines.card_reader import CardReaderSystem
from repro.core.requests import DenialReason
from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import AlertKind
from repro.locations.layouts import ntu_campus_hierarchy
from repro.paper import fixtures as paper
from repro.storage.authorization_db import InMemoryAuthorizationDatabase
from repro.storage.movement_db import MovementKind, MovementRecord


@pytest.fixture
def reader():
    system = CardReaderSystem(ntu_campus_hierarchy())
    system.authorization_db.add_all(paper.section5_authorizations())
    return system


class TestSwipeDecisions:
    def test_swipe_decisions_match_definition7(self, reader):
        assert reader.swipe(10, "Alice", "CAIS").granted
        assert reader.swipe(15, "Bob", "CAIS").reason is DenialReason.NO_AUTHORIZATION
        assert reader.swipe(16, "Bob", "CHIPES").granted
        # Second swipe exhausts Bob's single-entry budget.
        assert reader.swipe(30, "Bob", "CHIPES").reason is DenialReason.ENTRY_LIMIT_EXHAUSTED

    def test_swipe_outside_window(self, reader):
        assert reader.swipe(5, "Alice", "CAIS").reason is DenialReason.OUTSIDE_ENTRY_DURATION

    def test_unknown_location(self, reader):
        assert reader.swipe(5, "Alice", "Narnia").reason is DenialReason.UNKNOWN_LOCATION

    def test_swipes_are_logged(self, reader):
        reader.swipe(10, "Alice", "CAIS")
        assert reader.swipe_log.entry_count("Alice", "CAIS") == 1


class TestMonitoringBlindSpot:
    def test_observations_never_raise_alerts(self, reader):
        assert reader.observe_entry(10, "Mallory", "CAIS") == []
        assert reader.observe_exit(99, "Mallory", "CAIS") == []
        assert reader.observe(MovementRecord(10, "Mallory", "CAIS", MovementKind.ENTER)) == []
        assert reader.check_overstays(10_000) == []
        assert reader.detected_violations() == []

    def test_ltam_detects_what_the_card_reader_misses(self, reader):
        """The Section 1 claim: continuous monitoring catches tailgating and overstay."""
        hierarchy = ntu_campus_hierarchy()
        ltam = AccessControlEngine(hierarchy)
        ltam.grant_all(paper.section5_authorizations())

        # Mallory tailgates into CAIS, and Alice overstays past t=50.
        card_alerts = []
        card_alerts += reader.observe_entry(12, "Mallory", "CAIS")
        ltam_alerts = list(ltam.observe_entry(12, "Mallory", "CAIS"))

        reader.observe_entry(10, "Alice", "CAIS")
        ltam.observe_entry(10, "Alice", "CAIS")
        card_alerts += reader.check_overstays(60)
        ltam.advance_to(60)
        ltam_alerts += ltam.alerts.of_kind(AlertKind.OVERSTAY)

        assert card_alerts == []
        kinds = {alert.kind for alert in ltam_alerts}
        assert AlertKind.UNAUTHORIZED_ENTRY in kinds
        assert AlertKind.OVERSTAY in kinds

    def test_shared_authorization_db_with_ltam(self):
        """Both systems can run off the same authorization database."""
        hierarchy = ntu_campus_hierarchy()
        shared = InMemoryAuthorizationDatabase(paper.section5_authorizations())
        reader = CardReaderSystem(hierarchy, authorization_db=shared)
        ltam = AccessControlEngine(hierarchy, authorization_db=shared)
        assert reader.swipe(10, "Alice", "CAIS").granted
        assert ltam.request_access(10, "Alice", "CAIS").granted
