"""Unit tests for multilevel location graphs and the flattened hierarchy (Definition 2)."""

import pytest

from repro.errors import (
    DuplicateLocationError,
    GraphStructureError,
    UnknownLocationError,
)
from repro.locations.graph import LocationGraph
from repro.locations.layouts import ntu_campus, sce_school
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph


def building(name: str, entries=("Lobby",)) -> LocationGraph:
    return LocationGraph(
        name,
        [f"{name}.Lobby", f"{name}.Room1", f"{name}.Room2"],
        [(f"{name}.Lobby", f"{name}.Room1"), (f"{name}.Room1", f"{name}.Room2")],
        [f"{name}.{entry}" for entry in entries],
    )


def two_building_campus() -> MultilevelLocationGraph:
    return MultilevelLocationGraph(
        "Campus", [building("B1"), building("B2")], [("B1", "B2")], ["B1"]
    )


class TestMultilevelConstruction:
    def test_basic(self):
        campus = two_building_campus()
        assert campus.child_names == {"B1", "B2"}
        assert campus.entry_children == {"B1"}
        assert campus.has_edge("B1", "B2")
        assert len(campus) == 2

    def test_entry_children_default_to_all(self):
        campus = MultilevelLocationGraph("Campus", [building("B1"), building("B2")], [("B1", "B2")])
        assert campus.entry_children == {"B1", "B2"}

    def test_entry_locations_resolve_to_primitives(self):
        campus = two_building_campus()
        assert campus.entry_locations == {"B1.Lobby"}

    def test_requires_children(self):
        with pytest.raises(GraphStructureError):
            MultilevelLocationGraph("Campus", [])

    def test_children_must_be_disjoint(self):
        overlapping = LocationGraph(
            "B9", ["B1.Lobby", "B9.Room"], [("B1.Lobby", "B9.Room")], ["B1.Lobby"]
        )
        with pytest.raises(GraphStructureError):
            MultilevelLocationGraph("Campus", [building("B1"), overlapping], [("B1", "B9")])

    def test_duplicate_child_names_rejected(self):
        duplicate = building("B1")
        other = LocationGraph("B1", ["X"], [], ["X"])
        with pytest.raises((DuplicateLocationError, GraphStructureError)):
            MultilevelLocationGraph("Campus", [duplicate, other])

    def test_edge_with_unknown_child_rejected(self):
        with pytest.raises(UnknownLocationError):
            MultilevelLocationGraph("Campus", [building("B1")], [("B1", "B9")])

    def test_unknown_entry_child_rejected(self):
        with pytest.raises(UnknownLocationError):
            MultilevelLocationGraph("Campus", [building("B1")], [], ["B9"])

    def test_disconnected_children_rejected(self):
        with pytest.raises(GraphStructureError):
            MultilevelLocationGraph("Campus", [building("B1"), building("B2")], [])

    def test_child_neighbors(self):
        campus = two_building_campus()
        assert campus.child_neighbors("B1") == {"B2"}
        with pytest.raises(UnknownLocationError):
            campus.child_neighbors("B9")

    def test_get_child(self):
        campus = two_building_campus()
        assert campus.get_child("B1").name == "B1"
        with pytest.raises(UnknownLocationError):
            campus.get_child("B9")

    def test_nested_multilevel(self):
        inner = two_building_campus()
        outer = MultilevelLocationGraph("University", [inner, building("B3")], [("Campus", "B3")])
        assert outer.child_names == {"Campus", "B3"}
        assert "B1.Lobby" in outer.entry_locations


class TestHierarchy:
    def test_primitive_and_composite_membership(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.is_primitive("B1.Room1")
        assert hierarchy.is_composite("B2")
        assert hierarchy.is_composite("Campus")
        assert "B1.Room1" in hierarchy
        assert "nope" not in hierarchy
        assert len(hierarchy) == 6

    def test_wrapping_a_plain_location_graph(self):
        hierarchy = LocationHierarchy(building("B1"))
        assert hierarchy.primitive_names == {"B1.Lobby", "B1.Room1", "B1.Room2"}
        assert hierarchy.entry_locations == {"B1.Lobby"}

    def test_rejects_non_graph_root(self):
        with pytest.raises(GraphStructureError):
            LocationHierarchy("not a graph")

    def test_graph_of_and_members_of(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.graph_of("B1.Room1").name == "B1"
        assert hierarchy.members_of("B2") == {"B2.Lobby", "B2.Room1", "B2.Room2"}
        assert hierarchy.members_of("Campus") == hierarchy.primitive_names

    def test_unknown_lookups_raise(self):
        hierarchy = LocationHierarchy(two_building_campus())
        with pytest.raises(UnknownLocationError):
            hierarchy.get_primitive("missing")
        with pytest.raises(UnknownLocationError):
            hierarchy.get_graph("missing")
        with pytest.raises(UnknownLocationError):
            hierarchy.graph_of("missing")
        with pytest.raises(UnknownLocationError):
            hierarchy.members_of("missing")
        with pytest.raises(UnknownLocationError):
            hierarchy.neighbors("missing")

    def test_is_part_of(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.is_part_of("B1.Room1", "B1")
        assert hierarchy.is_part_of("B1.Room1", "Campus")
        assert hierarchy.is_part_of("B1", "Campus")
        assert not hierarchy.is_part_of("B1.Room1", "B2")
        assert not hierarchy.is_part_of("Campus", "Campus")

    def test_ancestors(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.ancestors_of("B1.Room1") == ["B1", "Campus"]
        assert hierarchy.ancestors_of("B1") == ["Campus"]
        assert hierarchy.ancestors_of("Campus") == []

    def test_flattened_adjacency_within_graph(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.are_adjacent("B1.Lobby", "B1.Room1")
        assert not hierarchy.are_adjacent("B1.Lobby", "B1.Room2")

    def test_flattened_adjacency_across_composites(self):
        # Complex-route steps: entry locations of adjacent composites connect.
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.are_adjacent("B1.Lobby", "B2.Lobby")
        assert not hierarchy.are_adjacent("B1.Room1", "B2.Room1")

    def test_entry_location_checks(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.is_entry_location("B1.Lobby")
        assert not hierarchy.is_entry_location("B1.Room1")
        assert hierarchy.entry_locations_of("B2") == {"B2.Lobby"}
        assert hierarchy.entry_locations == {"B1.Lobby"}

    def test_connectivity_and_degrees(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert hierarchy.connected()
        assert hierarchy.max_degree() >= 2
        assert hierarchy.edge_count() == 5  # 2 intra-graph edges per building + 1 bridge

    def test_ntu_campus_structure(self):
        hierarchy = LocationHierarchy(ntu_campus())
        # 7 SCE + 7 EEE + 2 each for the three stub schools.
        assert len(hierarchy) == 20
        assert hierarchy.is_part_of("CAIS", "SCE")
        assert hierarchy.is_part_of("CAIS", "NTU")
        # The complex-route bridge of the text: SCE.GO adjacent to EEE.GO.
        assert hierarchy.are_adjacent("SCE.GO", "EEE.GO")

    def test_duplicate_primitive_across_graphs_detected(self):
        left = LocationGraph("L", ["X", "Y"], [("X", "Y")], ["X"])
        right = LocationGraph("R", ["X"], [], ["X"])
        with pytest.raises(GraphStructureError):
            MultilevelLocationGraph("Top", [left, right], [("L", "R")])

    def test_repr(self):
        hierarchy = LocationHierarchy(two_building_campus())
        assert "Campus" in repr(hierarchy)
