"""Property-based tests over randomly generated buildings and routes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locations.multilevel import LocationHierarchy
from repro.locations.routes import classify_route, find_all_routes, find_route, is_route
from repro.locations.serialization import dumps, loads
from repro.simulation.buildings import campus, grid_building, random_building, tree_building


@st.composite
def random_hierarchies(draw):
    """Random connected buildings / small campuses wrapped in a hierarchy."""
    style = draw(st.sampled_from(["random", "tree", "grid", "campus"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if style == "grid":
        rows = draw(st.integers(min_value=1, max_value=4))
        cols = draw(st.integers(min_value=1, max_value=4))
        return LocationHierarchy(grid_building("G", rows, cols))
    if style == "tree":
        n = draw(st.integers(min_value=1, max_value=12))
        return LocationHierarchy(tree_building("T", n, seed=seed))
    if style == "random":
        n = draw(st.integers(min_value=1, max_value=12))
        extra = draw(st.integers(min_value=0, max_value=4))
        return LocationHierarchy(random_building("R", n, extra_edges=extra, seed=seed))
    buildings = draw(st.integers(min_value=1, max_value=3))
    return LocationHierarchy(campus("C", buildings, rooms_per_building=4, seed=seed))


class TestGeneratedGraphInvariants:
    @given(random_hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_flattened_graph_is_connected(self, hierarchy):
        assert hierarchy.connected()

    @given(random_hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_entry_locations_are_primitives(self, hierarchy):
        assert hierarchy.entry_locations <= hierarchy.primitive_names
        assert hierarchy.entry_locations  # never empty

    @given(random_hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_is_symmetric(self, hierarchy):
        for location in hierarchy.primitive_names:
            for neighbor in hierarchy.neighbors(location):
                assert location in hierarchy.neighbors(neighbor)

    @given(random_hierarchies())
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip_preserves_adjacency(self, hierarchy):
        restored = LocationHierarchy(loads(dumps(hierarchy.root)))
        assert restored.primitive_names == hierarchy.primitive_names
        for location in hierarchy.primitive_names:
            assert restored.neighbors(location) == hierarchy.neighbors(location)


class TestGeneratedRouteInvariants:
    @given(random_hierarchies(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_shortest_route_exists_and_is_valid(self, hierarchy, data):
        names = sorted(hierarchy.primitive_names)
        source = data.draw(st.sampled_from(names))
        destination = data.draw(st.sampled_from(names))
        route = find_route(hierarchy, source, destination)
        assert route is not None  # hierarchies are connected
        assert route.source == source
        assert route.destination == destination
        assert is_route(hierarchy, route)
        classify_route(hierarchy, route)  # must not raise

    @given(random_hierarchies(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_all_routes_are_simple_paths_no_longer_than_bound(self, hierarchy, data):
        names = sorted(hierarchy.primitive_names)
        source = data.draw(st.sampled_from(names))
        destination = data.draw(st.sampled_from(names))
        shortest = find_route(hierarchy, source, destination)
        routes = find_all_routes(hierarchy, source, destination, max_length=6, limit=25)
        for route in routes:
            assert is_route(hierarchy, route)
            assert len(set(route.locations)) == len(route.locations)
            assert route.length <= 6
        if shortest is not None and shortest.length <= 6:
            assert shortest in routes or len(routes) == 25
