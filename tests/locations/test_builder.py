"""Unit tests for the location-graph and multilevel-graph builders."""

import pytest

from repro.errors import GraphStructureError
from repro.locations.builder import LocationGraphBuilder, MultilevelGraphBuilder
from repro.locations.location import PrimitiveLocation
from repro.locations.multilevel import LocationHierarchy


class TestLocationGraphBuilder:
    def test_basic_build(self):
        graph = (
            LocationGraphBuilder("G")
            .add_locations("A", "B")
            .add_edge("A", "B")
            .mark_entry("A")
            .build()
        )
        assert graph.location_names == {"A", "B"}
        assert graph.entry_locations == {"A"}

    def test_add_location_with_metadata_and_entry_flag(self):
        graph = (
            LocationGraphBuilder("G")
            .add_location("Lobby", description="front desk", tags=("lobby",), entry=True)
            .add_location("Office")
            .add_edge("Lobby", "Office")
            .build()
        )
        assert graph.get("Lobby").has_tag("lobby")
        assert graph.is_entry("Lobby")

    def test_add_edge_implicitly_creates_endpoints(self):
        graph = LocationGraphBuilder("G").add_edge("A", "B").mark_entry("A").build()
        assert graph.location_names == {"A", "B"}

    def test_add_path_chains_edges(self):
        graph = (
            LocationGraphBuilder("G").add_path("A", "B", "C", "D").mark_entry("A").build()
        )
        assert graph.has_edge("A", "B")
        assert graph.has_edge("C", "D")
        assert not graph.has_edge("A", "C")

    def test_accepts_primitive_location_objects(self):
        graph = (
            LocationGraphBuilder("G")
            .add_location(PrimitiveLocation("X", tags={"lab"}), entry=True)
            .build()
        )
        assert graph.get("X").has_tag("lab")

    def test_missing_entry_fails_at_build_time(self):
        with pytest.raises(GraphStructureError):
            LocationGraphBuilder("G").add_locations("A").build()

    def test_disconnected_fails_at_build_time(self):
        builder = LocationGraphBuilder("G").add_locations("A", "B").mark_entry("A")
        with pytest.raises(GraphStructureError):
            builder.build()
        # but is accepted when connectivity validation is off
        graph = builder.build(validate_connectivity=False)
        assert graph.location_names == {"A", "B"}


class TestMultilevelGraphBuilder:
    def test_build_with_prebuilt_children(self):
        child_a = LocationGraphBuilder("A").add_edge("A.1", "A.2").mark_entry("A.1").build()
        child_b = LocationGraphBuilder("B").add_edge("B.1", "B.2").mark_entry("B.1").build()
        campus = (
            MultilevelGraphBuilder("Campus")
            .add_child(child_a, entry=True)
            .add_child(child_b)
            .connect("A", "B")
            .build()
        )
        assert campus.child_names == {"A", "B"}
        assert campus.entry_children == {"A"}

    def test_build_with_nested_builders(self):
        campus = (
            MultilevelGraphBuilder("Campus")
            .add_child(
                LocationGraphBuilder("A").add_edge("A.1", "A.2").mark_entry("A.1"), entry=True
            )
            .add_child(LocationGraphBuilder("B").add_edge("B.1", "B.2").mark_entry("B.1"))
            .connect("A", "B")
            .build()
        )
        assert campus.get_child("A").location_names == {"A.1", "A.2"}

    def test_duplicate_child_rejected(self):
        builder = MultilevelGraphBuilder("Campus").add_child(
            LocationGraphBuilder("A").add_edge("A.1", "A.2").mark_entry("A.1")
        )
        with pytest.raises(GraphStructureError):
            builder.add_child(LocationGraphBuilder("A").add_edge("A.3", "A.4").mark_entry("A.3"))

    def test_build_hierarchy_convenience(self):
        hierarchy = (
            MultilevelGraphBuilder("Campus")
            .add_child(
                LocationGraphBuilder("A").add_edge("A.1", "A.2").mark_entry("A.1"), entry=True
            )
            .build_hierarchy()
        )
        assert isinstance(hierarchy, LocationHierarchy)
        assert hierarchy.primitive_names == {"A.1", "A.2"}
