"""Unit tests for primitive and composite location objects."""

import pytest

from repro.errors import LocationError
from repro.locations.location import (
    CompositeLocation,
    PrimitiveLocation,
    location_name,
    validate_location_name,
)


class TestValidation:
    def test_valid_names(self):
        assert validate_location_name("CAIS") == "CAIS"
        assert validate_location_name("SCE.GO") == "SCE.GO"

    @pytest.mark.parametrize("bad", ["", "  padded  ", 42, None, "trailing "])
    def test_invalid_names(self, bad):
        with pytest.raises(LocationError):
            validate_location_name(bad)


class TestPrimitiveLocation:
    def test_basic_construction(self):
        location = PrimitiveLocation("CAIS", "research centre", {"lab"})
        assert location.name == "CAIS"
        assert location.description == "research centre"
        assert location.has_tag("lab")
        assert not location.has_tag("office")

    def test_tags_are_frozen(self):
        location = PrimitiveLocation("CAIS", tags=["lab", "lab"])
        assert location.tags == frozenset({"lab"})

    def test_equality_and_hash(self):
        assert PrimitiveLocation("CAIS") == PrimitiveLocation("CAIS")
        assert hash(PrimitiveLocation("CAIS")) == hash(PrimitiveLocation("CAIS"))
        assert PrimitiveLocation("CAIS") != PrimitiveLocation("CHIPES")

    def test_str(self):
        assert str(PrimitiveLocation("CAIS")) == "CAIS"

    def test_invalid_name_rejected(self):
        with pytest.raises(LocationError):
            PrimitiveLocation("")


class TestCompositeLocation:
    def test_members(self):
        composite = CompositeLocation("SCE", {"SCE.GO", "CAIS"})
        assert "CAIS" in composite
        assert PrimitiveLocation("CAIS") in composite
        assert "EEE.GO" not in composite

    def test_cannot_contain_itself(self):
        with pytest.raises(LocationError):
            CompositeLocation("SCE", {"SCE"})

    def test_member_names_validated(self):
        with pytest.raises(LocationError):
            CompositeLocation("SCE", {""})

    def test_str(self):
        assert str(CompositeLocation("NTU")) == "NTU"


class TestLocationName:
    def test_accepts_strings_and_objects(self):
        assert location_name("CAIS") == "CAIS"
        assert location_name(PrimitiveLocation("CAIS")) == "CAIS"
        assert location_name(CompositeLocation("SCE")) == "SCE"

    def test_rejects_invalid(self):
        with pytest.raises(LocationError):
            location_name("")
