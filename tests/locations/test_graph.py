"""Unit tests for LocationGraph (Definition 1)."""

import pytest

from repro.errors import (
    DuplicateLocationError,
    GraphStructureError,
    UnknownLocationError,
)
from repro.locations.graph import Edge, LocationGraph
from repro.locations.location import PrimitiveLocation


def simple_graph() -> LocationGraph:
    return LocationGraph(
        "G",
        ["A", "B", "C"],
        [("A", "B"), ("B", "C")],
        ["A"],
    )


class TestEdge:
    def test_key_is_order_independent(self):
        assert Edge("A", "B").key == Edge("B", "A").key

    def test_other_endpoint(self):
        edge = Edge("A", "B")
        assert edge.other("A") == "B"
        assert edge.other("B") == "A"
        with pytest.raises(UnknownLocationError):
            edge.other("C")

    def test_touches(self):
        assert Edge("A", "B").touches("A")
        assert not Edge("A", "B").touches("C")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphStructureError):
            Edge("A", "A")

    def test_iteration_and_str(self):
        assert list(Edge("A", "B")) == ["A", "B"]
        assert "A" in str(Edge("A", "B"))


class TestConstruction:
    def test_basic_graph(self):
        graph = simple_graph()
        assert len(graph) == 3
        assert graph.location_names == {"A", "B", "C"}
        assert graph.entry_locations == {"A"}

    def test_accepts_primitive_location_objects(self):
        graph = LocationGraph("G", [PrimitiveLocation("X", tags={"lab"})], [], ["X"])
        assert graph.get("X").has_tag("lab")

    def test_requires_at_least_one_location(self):
        with pytest.raises(GraphStructureError):
            LocationGraph("G", [], [], [])

    def test_requires_entry_location(self):
        with pytest.raises(GraphStructureError):
            LocationGraph("G", ["A"], [], [])

    def test_entry_must_be_member(self):
        with pytest.raises(UnknownLocationError):
            LocationGraph("G", ["A"], [], ["Z"])

    def test_duplicate_locations_rejected(self):
        with pytest.raises(DuplicateLocationError):
            LocationGraph("G", ["A", "A"], [], ["A"])

    def test_edge_with_unknown_endpoint_rejected(self):
        with pytest.raises(UnknownLocationError):
            LocationGraph("G", ["A", "B"], [("A", "Z")], ["A"])

    def test_disconnected_graph_rejected(self):
        # Definition 1 requires location graphs to be connected.
        with pytest.raises(GraphStructureError):
            LocationGraph("G", ["A", "B", "C"], [("A", "B")], ["A"])

    def test_disconnected_graph_allowed_when_validation_disabled(self):
        graph = LocationGraph(
            "G", ["A", "B", "C"], [("A", "B")], ["A"], validate_connectivity=False
        )
        assert not graph.is_connected()


class TestQueries:
    def test_membership(self):
        graph = simple_graph()
        assert "A" in graph
        assert "Z" not in graph
        assert 42 not in graph

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownLocationError):
            simple_graph().get("Z")

    def test_neighbors_and_edges(self):
        graph = simple_graph()
        assert graph.neighbors("B") == {"A", "C"}
        assert graph.has_edge("A", "B")
        assert graph.has_edge("B", "A")  # edges are bidirectional
        assert not graph.has_edge("A", "C")

    def test_neighbors_of_unknown_raises(self):
        with pytest.raises(UnknownLocationError):
            simple_graph().neighbors("Z")

    def test_degree_and_max_degree(self):
        graph = simple_graph()
        assert graph.degree("B") == 2
        assert graph.degree("A") == 1
        assert graph.max_degree() == 2

    def test_is_entry(self):
        graph = simple_graph()
        assert graph.is_entry("A")
        assert not graph.is_entry("B")

    def test_composite_view(self):
        composite = simple_graph().composite
        assert composite.name == "G"
        assert composite.members == {"A", "B", "C"}

    def test_iteration(self):
        assert set(simple_graph()) == {"A", "B", "C"}


class TestPathsAndCopy:
    def test_shortest_path(self):
        graph = simple_graph()
        assert graph.shortest_path("A", "C") == ["A", "B", "C"]
        assert graph.shortest_path("A", "A") == ["A"]

    def test_shortest_path_none_when_disconnected(self):
        graph = LocationGraph(
            "G", ["A", "B", "C"], [("A", "B")], ["A"], validate_connectivity=False
        )
        assert graph.shortest_path("A", "C") is None

    def test_copy_preserves_structure(self):
        graph = simple_graph()
        clone = graph.copy(name="G2")
        assert clone.name == "G2"
        assert clone.location_names == graph.location_names
        assert clone.entry_locations == graph.entry_locations
        assert {e.key for e in clone.edges} == {e.key for e in graph.edges}

    def test_repr_mentions_counts(self):
        assert "locations=3" in repr(simple_graph())
