"""Unit tests for the canonical paper layouts (Figures 1, 2 and 4)."""

import pytest

from repro.locations.layouts import (
    EEE_LOCATIONS,
    SCE_LOCATIONS,
    eee_school,
    figure4_graph,
    figure4_hierarchy,
    ntu_campus,
    ntu_campus_hierarchy,
    sce_school,
    stub_school,
)


class TestSceSchool:
    def test_locations_match_figure2(self):
        graph = sce_school()
        assert graph.location_names == set(SCE_LOCATIONS)

    def test_entry_locations(self):
        # Figure 2 draws SCE.GO and SCE.SectionC with double lines.
        assert sce_school().entry_locations == {"SCE.GO", "SCE.SectionC"}

    def test_explicit_edge_from_text(self):
        # "The edge between SCE.SectionB and CAIS shows one to go ... directly"
        assert sce_school().has_edge("SCE.SectionB", "CAIS")

    def test_connected(self):
        assert sce_school().is_connected()

    def test_tags(self):
        graph = sce_school()
        assert graph.get("CAIS").has_tag("lab")
        assert graph.get("SCE.GO").has_tag("office")


class TestEeeSchool:
    def test_locations_match_figure2(self):
        assert eee_school().location_names == set(EEE_LOCATIONS)

    def test_entry_locations(self):
        assert eee_school().entry_locations == {"EEE.GO", "EEE.SectionC"}

    def test_connected(self):
        assert eee_school().is_connected()


class TestStubSchool:
    def test_structure(self):
        graph = stub_school("SME")
        assert graph.location_names == {"SME.Lobby", "SME.GO"}
        assert graph.entry_locations == {"SME.Lobby"}
        assert graph.is_connected()


class TestNtuCampus:
    def test_children_are_the_five_schools(self):
        campus = ntu_campus()
        assert campus.child_names == {"SCE", "EEE", "CEE", "SME", "NBS"}

    def test_sce_eee_edge_required_by_complex_route(self):
        assert ntu_campus().has_edge("SCE", "EEE")

    def test_campus_is_connected(self):
        ntu_campus().validate()  # raises on failure

    def test_hierarchy_has_20_primitives(self):
        assert len(ntu_campus_hierarchy()) == 20

    def test_hierarchy_entry_locations_come_from_entry_children(self):
        hierarchy = ntu_campus_hierarchy()
        assert hierarchy.entry_locations == {"SCE.GO", "SCE.SectionC", "EEE.GO", "EEE.SectionC"}

    def test_hierarchy_is_connected(self):
        assert ntu_campus_hierarchy().connected()


class TestFigure4:
    def test_locations_and_entry(self):
        graph = figure4_graph()
        assert graph.location_names == {"A", "B", "C", "D"}
        assert graph.entry_locations == {"A"}

    def test_edges_inferred_from_table2_trace(self):
        graph = figure4_graph()
        # Updating A flags B and D; updating B and D flags C (and A).
        assert graph.neighbors("A") == {"B", "D"}
        assert graph.neighbors("C") == {"B", "D"}
        assert not graph.has_edge("B", "D")
        assert not graph.has_edge("A", "C")

    def test_hierarchy_wrapper(self):
        hierarchy = figure4_hierarchy()
        assert hierarchy.entry_locations == {"A"}
        assert hierarchy.connected()
