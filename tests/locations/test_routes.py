"""Unit tests for route objects, validation and search (Section 3.1)."""

import pytest

from repro.errors import RouteError
from repro.locations.layouts import ntu_campus_hierarchy
from repro.locations.routes import (
    Route,
    RouteKind,
    classify_route,
    find_all_routes,
    find_route,
    is_route,
    locations_on_routes,
    routes_from_entries,
)


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


class TestRouteObject:
    def test_source_destination_length(self):
        route = Route(("A", "B", "C"))
        assert route.source == "A"
        assert route.destination == "C"
        assert route.length == 2
        assert len(route) == 3

    def test_steps(self):
        assert list(Route(("A", "B", "C")).steps()) == [("A", "B"), ("B", "C")]

    def test_covers_and_indexing(self):
        route = Route(("A", "B"))
        assert route.covers("B")
        assert not route.covers("Z")
        assert route[0] == "A"

    def test_reversed(self):
        assert Route(("A", "B", "C")).reversed() == Route(("C", "B", "A"))

    def test_empty_route_rejected(self):
        with pytest.raises(RouteError):
            Route(())

    def test_str_uses_angle_brackets(self):
        assert str(Route(("A", "B"))) == "⟨A, B⟩"


class TestPaperRoutes:
    def test_simple_route_from_the_text(self, campus):
        # "⟨SCE.Dean's Office, SCE.SectionA, SCE.SectionB, CAIS⟩ is a simple route"
        route = ["SCE.DeanOffice", "SCE.SectionA", "SCE.SectionB", "CAIS"]
        assert is_route(campus, route)
        assert classify_route(campus, route) == RouteKind.SIMPLE

    def test_complex_route_from_the_text(self, campus):
        # "⟨EEE.Dean's Office, EEE.SectionA, EEE.GO, SCE.GO, SCE.SectionA, SCE.Dean's Office⟩"
        route = [
            "EEE.DeanOffice",
            "EEE.SectionA",
            "EEE.GO",
            "SCE.GO",
            "SCE.SectionA",
            "SCE.DeanOffice",
        ]
        assert is_route(campus, route)
        assert classify_route(campus, route) == RouteKind.COMPLEX

    def test_non_adjacent_sequence_is_not_a_route(self, campus):
        assert not is_route(campus, ["SCE.GO", "CAIS"])

    def test_sequence_with_unknown_location_is_not_a_route(self, campus):
        assert not is_route(campus, ["SCE.GO", "Narnia"])

    def test_classify_rejects_invalid_route(self, campus):
        with pytest.raises(RouteError):
            classify_route(campus, ["SCE.GO", "CAIS"])


class TestRouteSearch:
    def test_find_route_shortest(self, campus):
        route = find_route(campus, "SCE.GO", "CAIS")
        assert route is not None
        assert route.source == "SCE.GO"
        assert route.destination == "CAIS"
        assert route.length == 3  # GO -> SectionA -> SectionB -> CAIS

    def test_find_route_to_self(self, campus):
        assert find_route(campus, "CAIS", "CAIS") == Route(("CAIS",))

    def test_find_route_crosses_schools(self, campus):
        route = find_route(campus, "CAIS", "Lab1")
        assert route is not None
        assert classify_route(campus, route) == RouteKind.COMPLEX

    def test_find_all_routes_contains_shortest(self, campus):
        shortest = find_route(campus, "SCE.GO", "CAIS")
        all_routes = find_all_routes(campus, "SCE.GO", "CAIS")
        assert shortest in all_routes
        assert all(route.source == "SCE.GO" and route.destination == "CAIS" for route in all_routes)
        # Simple-path enumeration: no repeated locations within a route.
        for route in all_routes:
            assert len(set(route.locations)) == len(route.locations)

    def test_find_all_routes_respects_max_length(self, campus):
        bounded = find_all_routes(campus, "SCE.GO", "CAIS", max_length=3)
        assert all(route.length <= 3 for route in bounded)
        assert len(bounded) >= 1

    def test_find_all_routes_respects_limit(self, campus):
        limited = find_all_routes(campus, "SCE.GO", "CAIS", limit=1)
        assert len(limited) == 1

    def test_every_returned_route_is_valid(self, campus):
        for route in find_all_routes(campus, "EEE.GO", "CHIPES", max_length=8, limit=20):
            assert is_route(campus, route)

    def test_routes_from_entries(self, campus):
        per_entry = routes_from_entries(campus, "CAIS", max_length=6, limit_per_entry=5)
        assert set(per_entry) == set(campus.entry_locations)
        assert any(routes for routes in per_entry.values())

    def test_locations_on_routes_shortest(self, campus):
        covered = locations_on_routes(campus, "SCE.GO", "CAIS")
        assert covered == {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}

    def test_locations_on_routes_all(self, campus):
        covered = locations_on_routes(campus, "SCE.GO", "CAIS", shortest_only=False, max_length=5)
        assert {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"} <= covered
