"""Unit tests for JSON (de)serialization of location layouts."""

import json

import pytest

from repro.errors import GraphStructureError
from repro.locations.graph import LocationGraph
from repro.locations.layouts import figure4_graph, ntu_campus, sce_school
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph
from repro.locations.serialization import (
    dumps,
    graph_from_dict,
    graph_to_dict,
    hierarchy_roundtrip,
    load,
    loads,
    save,
)


def assert_same_structure(original, restored):
    """Structural equality check for (multilevel) location graphs."""
    assert type(original) is type(restored)
    assert original.name == restored.name
    if isinstance(original, LocationGraph):
        assert original.location_names == restored.location_names
        assert original.entry_locations == restored.entry_locations
        assert {e.key for e in original.edges} == {e.key for e in restored.edges}
        for name, location in original.locations.items():
            assert restored.get(name).tags == location.tags
            assert restored.get(name).description == location.description
    else:
        assert original.child_names == restored.child_names
        assert original.entry_children == restored.entry_children
        assert {e.key for e in original.edges} == {e.key for e in restored.edges}
        for name in original.child_names:
            assert_same_structure(original.get_child(name), restored.get_child(name))


class TestRoundTrips:
    def test_location_graph_roundtrip(self):
        original = sce_school()
        assert_same_structure(original, loads(dumps(original)))

    def test_figure4_roundtrip(self):
        original = figure4_graph()
        assert_same_structure(original, loads(dumps(original)))

    def test_multilevel_roundtrip(self):
        original = ntu_campus()
        assert_same_structure(original, loads(dumps(original)))

    def test_hierarchy_roundtrip_preserves_connectivity(self):
        hierarchy = LocationHierarchy(ntu_campus())
        restored = hierarchy_roundtrip(hierarchy)
        assert restored.primitive_names == hierarchy.primitive_names
        assert restored.entry_locations == hierarchy.entry_locations
        for primitive in hierarchy.primitive_names:
            assert restored.neighbors(primitive) == hierarchy.neighbors(primitive)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "campus.json"
        save(ntu_campus(), str(path))
        assert_same_structure(ntu_campus(), load(str(path)))


class TestDocumentFormat:
    def test_document_is_valid_json_with_kind(self):
        document = json.loads(dumps(sce_school()))
        assert document["kind"] == "location_graph"
        assert document["name"] == "SCE"
        assert {"locations", "edges", "entry_locations"} <= set(document)

    def test_multilevel_document_nests_children(self):
        document = json.loads(dumps(ntu_campus()))
        assert document["kind"] == "multilevel_location_graph"
        child_kinds = {child["kind"] for child in document["children"]}
        assert child_kinds == {"location_graph"}

    def test_dict_roundtrip(self):
        document = graph_to_dict(figure4_graph())
        assert_same_structure(figure4_graph(), graph_from_dict(document))

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphStructureError):
            graph_from_dict({"kind": "mystery", "name": "X"})

    def test_unserializable_object_rejected(self):
        with pytest.raises(GraphStructureError):
            graph_to_dict("not a graph")

    def test_output_is_deterministic(self):
        assert dumps(ntu_campus()) == dumps(ntu_campus())
