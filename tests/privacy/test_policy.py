"""Unit tests for location-privacy release policies."""

import pytest

from repro.errors import PrivacyError
from repro.locations.layouts import ntu_campus_hierarchy
from repro.privacy.policy import Granularity, ReleasePolicy


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


@pytest.fixture
def policy(campus):
    policy = ReleasePolicy(campus, default=Granularity.DENY)
    policy.allow_application("security-console", Granularity.EXACT)
    policy.allow_application("room-booking", Granularity.COMPOSITE)
    policy.allow_application("cafeteria-display", Granularity.PRESENCE)
    return policy


class TestGranularityResolution:
    def test_default_is_deny(self, policy):
        assert policy.granularity_for("unknown-app", "Alice") is Granularity.DENY

    def test_application_rules(self, policy):
        assert policy.granularity_for("security-console", "Alice") is Granularity.EXACT
        assert policy.granularity_for("room-booking", "Alice") is Granularity.COMPOSITE

    def test_subject_opt_out_is_stricter(self, policy):
        policy.restrict_subject("Alice", Granularity.PRESENCE)
        # Subject restriction wins over the more permissive application rule.
        assert policy.granularity_for("security-console", "Alice") is Granularity.PRESENCE
        assert policy.granularity_for("cafeteria-display", "Alice") is Granularity.PRESENCE

    def test_subject_restriction_does_not_loosen(self, policy):
        policy.restrict_subject("Bob", Granularity.EXACT)
        assert policy.granularity_for("room-booking", "Bob") is Granularity.COMPOSITE

    def test_invalid_application_name(self, policy):
        with pytest.raises(PrivacyError):
            policy.allow_application("", Granularity.EXACT)


class TestRelease:
    def test_exact_release(self, policy):
        decision = policy.release("security-console", "Alice", "CAIS")
        assert decision.released
        assert decision.granularity is Granularity.EXACT
        assert decision.released_value == "CAIS"

    def test_composite_generalization(self, policy):
        decision = policy.release("room-booking", "Alice", "CAIS")
        assert decision.released_value == "SCE"
        assert decision.granularity is Granularity.COMPOSITE

    def test_presence_only(self, policy):
        decision = policy.release("cafeteria-display", "Alice", "CAIS")
        assert decision.released_value == "present"

    def test_deny_releases_nothing(self, policy):
        decision = policy.release("unknown-app", "Alice", "CAIS")
        assert not decision.released
        assert decision.released_value is None

    def test_untracked_subject_reports_absent(self, policy):
        decision = policy.release("security-console", "Alice", None)
        assert decision.released_value == "absent"

    def test_generalize_unknown_location(self, policy):
        with pytest.raises(PrivacyError):
            policy.generalize("Narnia")

    def test_generalize_maps_to_containing_school(self, policy):
        assert policy.generalize("Lab1") == "EEE"
        assert policy.generalize("SCE.GO") == "SCE"
