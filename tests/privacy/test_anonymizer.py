"""Unit tests for movement-trace anonymization (pseudonyms, generalization, k-anonymity)."""

import pytest

from repro.errors import PrivacyError
from repro.locations.layouts import ntu_campus_hierarchy
from repro.privacy.anonymizer import TraceAnonymizer
from repro.storage.movement_db import MovementKind, MovementRecord


@pytest.fixture(scope="module")
def campus():
    return ntu_campus_hierarchy()


def trace():
    return [
        MovementRecord(10, "Alice", "CAIS", MovementKind.ENTER),
        MovementRecord(12, "Bob", "CHIPES", MovementKind.ENTER),
        MovementRecord(14, "Carol", "SCE.SectionA", MovementKind.ENTER),
        MovementRecord(18, "Alice", "CAIS", MovementKind.EXIT),
        MovementRecord(40, "Dave", "Lab1", MovementKind.ENTER),
    ]


class TestBuildingBlocks:
    def test_pseudonyms_are_stable_within_an_export(self, campus):
        anonymizer = TraceAnonymizer(campus)
        assert anonymizer.pseudonym_for("Alice") == anonymizer.pseudonym_for("Alice")
        assert anonymizer.pseudonym_for("Alice") != anonymizer.pseudonym_for("Bob")
        assert anonymizer.pseudonym_for("Alice").startswith("user-")

    def test_pseudonyms_differ_across_salts(self, campus):
        first = TraceAnonymizer(campus, salt="export-1").pseudonym_for("Alice")
        second = TraceAnonymizer(campus, salt="export-2").pseudonym_for("Alice")
        assert first != second

    def test_generalization(self, campus):
        anonymizer = TraceAnonymizer(campus)
        assert anonymizer.generalize_location("CAIS") == "SCE"
        assert anonymizer.generalize_location("Lab2") == "EEE"
        with pytest.raises(PrivacyError):
            anonymizer.generalize_location("Narnia")

    def test_time_buckets(self, campus):
        anonymizer = TraceAnonymizer(campus, time_bucket=10)
        assert anonymizer.bucket(0) == 0
        assert anonymizer.bucket(9) == 0
        assert anonymizer.bucket(10) == 10
        assert anonymizer.bucket(27) == 20

    def test_invalid_parameters(self, campus):
        with pytest.raises(PrivacyError):
            TraceAnonymizer(campus, k=0)
        with pytest.raises(PrivacyError):
            TraceAnonymizer(campus, time_bucket=0)


class TestAnonymization:
    def test_k2_suppresses_singleton_groups(self, campus):
        anonymizer = TraceAnonymizer(campus, k=2, time_bucket=10)
        released = anonymizer.anonymize(trace())
        # The (SCE, bucket 10) group has Alice, Bob and Carol (3 subjects);
        # Dave alone in EEE at bucket 40 is suppressed.
        composites = {record.composite for record in released}
        assert composites == {"SCE"}
        assert len(released) == 4

    def test_k1_releases_everything_generalized(self, campus):
        anonymizer = TraceAnonymizer(campus, k=1, time_bucket=10)
        released = anonymizer.anonymize(trace())
        assert len(released) == len(trace())
        assert all(record.composite in {"SCE", "EEE"} for record in released)
        assert all(record.pseudonym.startswith("user-") for record in released)

    def test_released_records_contain_no_raw_names(self, campus):
        anonymizer = TraceAnonymizer(campus, k=1)
        released = anonymizer.anonymize(trace())
        raw_subjects = {"Alice", "Bob", "Carol", "Dave"}
        raw_locations = {"CAIS", "CHIPES", "SCE.SectionA", "Lab1"}
        for record in released:
            assert record.pseudonym not in raw_subjects
            assert record.composite not in raw_locations

    def test_suppression_rate(self, campus):
        anonymizer = TraceAnonymizer(campus, k=2, time_bucket=10)
        rate = anonymizer.suppression_rate(trace())
        assert rate == pytest.approx(1 / 5)
        assert TraceAnonymizer(campus).suppression_rate([]) == 0.0

    def test_higher_k_suppresses_more(self, campus):
        low = TraceAnonymizer(campus, k=2, time_bucket=10).suppression_rate(trace())
        high = TraceAnonymizer(campus, k=4, time_bucket=10).suppression_rate(trace())
        assert high >= low
